#include "broker/broker.hpp"

#include "broker/topic.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "wire/msg_types.hpp"

namespace narada::broker {

Broker::Broker(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
               const Clock& local_clock, const timesvc::UtcSource& utc,
               config::BrokerConfig config, std::string name)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      utc_(utc),
      config_(std::move(config)),
      name_(name.empty() ? "broker@" + local.str() : std::move(name)),
      rng_(0x62726F6Bull ^ (std::uint64_t{local.host} << 16) ^ local.port),
      seen_events_(config_.dedup_cache_size),
      load_model_(std::make_shared<StaticLoadModel>()) {
    overlay_id_ = Uuid::random(rng_);
    transport_.bind(local_, this);
}

Broker::~Broker() {
    scheduler_.cancel_timer(peer_heartbeat_timer_);
    transport_.unbind(local_);
}

void Broker::start() {
    if (started_) return;
    started_ = true;
    for (BrokerPlugin* plugin : plugins_) plugin->on_start();
    if (config_.peer_heartbeat_interval > 0) {
        peer_heartbeat_timer_ = scheduler_.schedule(config_.peer_heartbeat_interval,
                                                    [this] { peer_heartbeat_tick(); });
    }
}

void Broker::connect_to_peer(const Endpoint& peer) {
    if (peer == local_ || peers_.contains(peer)) return;
    peers_.emplace(peer, PeerState{/*established=*/false});
    wire::ByteWriter writer;
    writer.u8(wire::kMsgLinkHello);
    transport_.send_reliable(local_, peer, writer.take());
}

void Broker::publish(Event event) {
    if (event.id.is_nil()) event.id = Uuid::random(rng_);
    if (event.ttl == 0) event.ttl = config_.propagation_ttl;
    ingest(std::move(event), Endpoint{});
}

void Broker::add_plugin(BrokerPlugin* plugin) {
    plugins_.push_back(plugin);
    plugin->on_attach(*this);
    if (started_) plugin->on_start();
}

void Broker::add_plugin_interest(const std::string& filter) { add_local_interest(filter); }

void Broker::add_local_interest(const std::string& filter) {
    if (!is_valid_filter(filter)) return;
    if (++local_interest_refcount_[filter] == 1) {
        known_interests_.emplace(overlay_id_, filter);
        announce_interest(Uuid::random(rng_), overlay_id_, filter, /*add=*/true, Endpoint{});
    }
}

void Broker::remove_local_interest(const std::string& filter) {
    const auto it = local_interest_refcount_.find(filter);
    if (it == local_interest_refcount_.end()) return;
    if (--it->second <= 0) {
        local_interest_refcount_.erase(it);
        known_interests_.erase({overlay_id_, filter});
        announce_interest(Uuid::random(rng_), overlay_id_, filter, /*add=*/false, Endpoint{});
    }
}

void Broker::announce_interest(const Uuid& announce_id, const Uuid& origin,
                               const std::string& filter, bool add, const Endpoint& except) {
    // The announcement id travels unchanged as the flood propagates; the
    // per-broker dedup cache makes the flood self-limiting even on cyclic
    // overlays. Locally originated announcements mark their id as seen so
    // echoes coming back are dropped.
    seen_announcements_.insert(announce_id);
    wire::ByteWriter writer;
    writer.u8(wire::kMsgInterest);
    writer.uuid(announce_id);
    writer.uuid(origin);
    writer.str(filter);
    writer.boolean(add);
    const Bytes encoded = writer.take();
    for (const auto& [peer, state] : peers_) {
        if (!state.established || peer == except) continue;
        transport_.send_reliable(local_, peer, encoded);
    }
}

void Broker::handle_interest(const Endpoint& from, wire::ByteReader& reader) {
    const Uuid announce_id = reader.uuid();
    const Uuid origin = reader.uuid();
    const std::string filter = reader.str();
    const bool add = reader.boolean();
    if (!seen_announcements_.insert(announce_id)) return;
    if (origin == overlay_id_) return;  // our own interest echoed back

    const SubscriberToken token = origin_token(origin);
    if (add) {
        // The link the announcement arrived on leads toward the origin.
        link_interests_[from].subscribe(filter, token);
        known_interests_.emplace(origin, filter);
    } else {
        // The origin lost interest: purge it from every link (it may have
        // been learned over multiple paths).
        for (auto& [link, table] : link_interests_) table.unsubscribe(filter, token);
        known_interests_.erase({origin, filter});
    }
    // Propagate so the whole overlay learns; the unchanged announce id
    // bounds the flood.
    announce_interest(announce_id, origin, filter, add, from);
}

void Broker::send_interest_summary(const Endpoint& peer) {
    // Everything we know — our own interests and everything learned —
    // travels to the new neighbor as ordinary announcements; its own
    // dedup + re-flooding spreads whatever is news to its side.
    for (const auto& [origin, filter] : known_interests_) {
        wire::ByteWriter writer;
        writer.u8(wire::kMsgInterest);
        writer.uuid(Uuid::random(rng_));
        writer.uuid(origin);
        writer.str(filter);
        writer.boolean(true);
        transport_.send_reliable(local_, peer, writer.take());
    }
}

std::size_t Broker::established_peer_count() const {
    std::size_t count = 0;
    for (const auto& [ep, state] : peers_) {
        if (state.established) ++count;
    }
    return count;
}

void Broker::notify_peer_observer(const Endpoint& peer, bool up) {
    if (peer_observer_) peer_observer_(peer, up, established_peer_count());
}

std::vector<Endpoint> Broker::peers() const {
    std::vector<Endpoint> out;
    out.reserve(peers_.size());
    for (const auto& [ep, state] : peers_) {
        if (state.established) out.push_back(ep);
    }
    return out;
}

std::vector<Endpoint> Broker::clients() const {
    std::vector<Endpoint> out;
    out.reserve(clients_.size());
    for (const auto& [ep, _] : clients_) out.push_back(ep);
    return out;
}

UsageMetrics Broker::metrics() const {
    UsageMetrics m;
    m.connections = static_cast<std::uint32_t>(clients_.size() + peers_.size());
    m.broker_links = static_cast<std::uint32_t>(peers_.size());
    m.cpu_load = load_model_->cpu_load();
    m.total_memory = load_model_->total_memory();
    m.free_memory = load_model_->free_memory();
    return m;
}

void Broker::set_load_model(std::shared_ptr<const LoadModel> model) {
    if (model) load_model_ = std::move(model);
}

void Broker::on_datagram(const Endpoint& from, const Bytes& data) {
    dispatch(from, data, /*reliable=*/false);
}

void Broker::on_reliable(const Endpoint& from, const Bytes& data) {
    dispatch(from, data, /*reliable=*/true);
}

void Broker::dispatch(const Endpoint& from, const Bytes& data, bool reliable) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgClientHello: handle_client_hello(from, reader); return;
            case wire::kMsgClientBye: handle_client_bye(from); return;
            case wire::kMsgSubscribe: handle_subscribe(from, reader, /*add=*/true); return;
            case wire::kMsgUnsubscribe: handle_subscribe(from, reader, /*add=*/false); return;
            case wire::kMsgPublish: handle_publish(from, reader); return;
            case wire::kMsgLinkHello: handle_link_hello(from); return;
            case wire::kMsgLinkAccept: handle_link_accept(from); return;
            case wire::kMsgEventFlood: handle_event_flood(from, reader); return;
            case wire::kMsgInterest: handle_interest(from, reader); return;
            case wire::kMsgPing: handle_ping(from, reader); return;
            case wire::kMsgPong: handle_pong(from); return;
            default: break;
        }
        for (BrokerPlugin* plugin : plugins_) {
            // Each plugin gets a fresh reader positioned after the type
            // octet so one plugin's parsing cannot corrupt another's.
            wire::ByteReader plugin_reader(data);
            (void)plugin_reader.u8();
            if (plugin->on_message(from, type, plugin_reader, reliable)) return;
        }
        NARADA_DEBUG("broker", "{}: unhandled message type {} from {}", name_, static_cast<int>(type),
                     from.str());
    } catch (const wire::WireError& e) {
        ++stats_.malformed_dropped;
        if (inst_.malformed) inst_.malformed->inc();
        NARADA_DEBUG("broker", "{}: malformed message from {}: {}", name_, from.str(), e.what());
    }
}

void Broker::handle_client_hello(const Endpoint& from, wire::ByteReader& reader) {
    const std::string credential = reader.str();
    if (!clients_.contains(from)) {
        const SubscriberToken token = next_token_++;
        clients_.emplace(from, ClientState{token, credential});
        token_to_client_.emplace(token, from);
    }
    wire::ByteWriter writer;
    writer.u8(wire::kMsgClientWelcome);
    writer.str(name_);
    transport_.send_reliable(local_, from, writer.take());
}

void Broker::handle_client_bye(const Endpoint& from) {
    const auto it = clients_.find(from);
    if (it == clients_.end()) return;
    subscriptions_.remove_subscriber(it->second.token);
    if (const auto fit = token_filters_.find(it->second.token); fit != token_filters_.end()) {
        for (const std::string& filter : fit->second) remove_local_interest(filter);
        token_filters_.erase(fit);
    }
    token_to_client_.erase(it->second.token);
    clients_.erase(it);
}

void Broker::handle_subscribe(const Endpoint& from, wire::ByteReader& reader, bool add) {
    const auto it = clients_.find(from);
    if (it == clients_.end()) {
        NARADA_DEBUG("broker", "{}: subscribe from unknown client {}", name_, from.str());
        return;
    }
    const std::string filter = reader.str();
    if (add) {
        if (subscriptions_.subscribe(filter, it->second.token) &&
            token_filters_[it->second.token].insert(filter).second) {
            add_local_interest(filter);
        }
    } else {
        if (subscriptions_.unsubscribe(filter, it->second.token)) {
            token_filters_[it->second.token].erase(filter);
            remove_local_interest(filter);
        }
    }
}

void Broker::handle_publish(const Endpoint& from, wire::ByteReader& reader) {
    if (!clients_.contains(from)) {
        NARADA_DEBUG("broker", "{}: publish from unknown client {}", name_, from.str());
        return;
    }
    Event event = Event::decode(reader);
    if (event.id.is_nil()) event.id = Uuid::random(rng_);
    if (event.ttl == 0 || event.ttl > config_.propagation_ttl) {
        event.ttl = config_.propagation_ttl;
    }
    ingest(std::move(event), Endpoint{});
}

void Broker::handle_link_hello(const Endpoint& from) {
    PeerState& state = peers_[from];
    const bool was_established = state.established;
    state.established = true;
    wire::ByteWriter writer;
    writer.u8(wire::kMsgLinkAccept);
    transport_.send_reliable(local_, from, writer.take());
    send_interest_summary(from);
    if (!was_established) notify_peer_observer(from, /*up=*/true);
}

void Broker::handle_link_accept(const Endpoint& from) {
    const auto it = peers_.find(from);
    const bool was_established = it != peers_.end() && it->second.established;
    if (it != peers_.end()) it->second.established = true;
    send_interest_summary(from);
    if (it != peers_.end() && !was_established) notify_peer_observer(from, /*up=*/true);
}

void Broker::handle_event_flood(const Endpoint& from, wire::ByteReader& reader) {
    Event event = Event::decode(reader);
    ingest(std::move(event), from);
}

void Broker::handle_ping(const Endpoint& from, wire::ByteReader& reader) {
    // Ping payload: opaque requester timestamp, echoed verbatim, plus our
    // UTC estimate so the pinger can also refresh one-way estimates (§6).
    const TimeUs echo = reader.i64();
    ++stats_.pings_answered;
    if (inst_.pings) inst_.pings->inc();
    wire::ByteWriter writer;
    writer.u8(wire::kMsgPong);
    writer.i64(echo);
    writer.i64(utc_.utc_now());
    transport_.send_datagram(local_, from, writer.take());
}

void Broker::handle_pong(const Endpoint& from) {
    const auto it = peers_.find(from);
    if (it == peers_.end()) return;
    it->second.pong_pending = false;
    it->second.missed_heartbeats = 0;
}

void Broker::peer_heartbeat_tick() {
    // Collect the victims first: drop_peer mutates peers_.
    std::vector<Endpoint> dead;
    for (auto& [peer, state] : peers_) {
        if (!state.established) continue;
        if (state.pong_pending) {
            if (++state.missed_heartbeats >= config_.peer_max_missed) {
                dead.push_back(peer);
                continue;
            }
        }
        state.pong_pending = true;
        wire::ByteWriter writer;
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, peer, writer.take());
    }
    for (const Endpoint& peer : dead) drop_peer(peer);
    peer_heartbeat_timer_ = scheduler_.schedule(config_.peer_heartbeat_interval,
                                                [this] { peer_heartbeat_tick(); });
}

void Broker::drop_peer(const Endpoint& peer) {
    const auto it = peers_.find(peer);
    if (it == peers_.end()) return;
    const bool was_established = it->second.established;
    peers_.erase(it);
    ++stats_.peers_dropped;
    if (inst_.peers_dropped) inst_.peers_dropped->inc();
    // Routing state learned over this link is stale; interests still held
    // by live origins will be re-learned through their periodic paths (or
    // immediately via summaries when links re-form).
    link_interests_.erase(peer);
    NARADA_INFO("broker", "{}: dropped unresponsive peer {}", name_, peer.str());
    if (was_established) notify_peer_observer(peer, /*up=*/false);
}

void Broker::ingest(Event event, const Endpoint& source) {
    if (!seen_events_.insert(event.id)) {
        ++stats_.duplicates_suppressed;
        if (inst_.duplicates) inst_.duplicates->inc();
        return;
    }
    ++stats_.events_ingested;
    if (inst_.ingested) inst_.ingested->inc();
    // Model per-event processing cost: plugin work, delivery and fan-out
    // all happen after the broker's CPU has handled the event.
    const DurationUs delay = config_.processing_delay;
    auto process = [this, event = std::move(event), source] {
        for (BrokerPlugin* plugin : plugins_) plugin->on_event(event);
        deliver_to_clients(event);
        if (event.ttl > 1) {
            Event onward = event;
            onward.ttl = event.ttl - 1;
            forward_to_peers(onward, source);
        }
    };
    if (delay > 0) {
        scheduler_.schedule(delay, std::move(process));
    } else {
        process();
    }
}

void Broker::forward_to_peers(const Event& event, const Endpoint& except) {
    wire::ByteWriter writer;
    writer.u8(wire::kMsgEventFlood);
    event.encode(writer);
    const Bytes encoded = writer.take();
    for (const auto& [peer, state] : peers_) {
        if (!state.established || peer == except) continue;
        if (config_.routing_mode == config::RoutingMode::kRouted) {
            // Forward only toward links that announced matching interest.
            const auto it = link_interests_.find(peer);
            if (it == link_interests_.end() || it->second.match(event.topic).empty()) {
                continue;
            }
        }
        ++stats_.events_forwarded;
        if (inst_.forwarded) inst_.forwarded->inc();
        transport_.send_reliable(local_, peer, encoded);
    }
}

void Broker::deliver_to_clients(const Event& event) {
    wire::ByteWriter writer;
    writer.u8(wire::kMsgEventDeliver);
    event.encode(writer);
    const Bytes encoded = writer.take();
    for (SubscriberToken token : subscriptions_.match(event.topic)) {
        const auto it = token_to_client_.find(token);
        if (it == token_to_client_.end()) continue;
        ++stats_.events_delivered;
        if (inst_.delivered) inst_.delivered->inc();
        transport_.send_reliable(local_, it->second, encoded);
    }
}

void Broker::set_observability(obs::MetricsRegistry* metrics) {
    inst_ = {};
    if (metrics == nullptr) {
        seen_events_.set_instruments(nullptr, nullptr);
        seen_announcements_.set_instruments(nullptr, nullptr);
        return;
    }
    inst_.ingested = &metrics->counter("broker_events_ingested", name_);
    inst_.forwarded = &metrics->counter("broker_events_forwarded", name_);
    inst_.delivered = &metrics->counter("broker_events_delivered", name_);
    inst_.duplicates = &metrics->counter("broker_duplicates_suppressed", name_);
    inst_.pings = &metrics->counter("broker_pings_answered", name_);
    inst_.malformed = &metrics->counter("broker_malformed_dropped", name_);
    inst_.peers_dropped = &metrics->counter("broker_peers_dropped", name_);
    seen_events_.set_instruments(&metrics->counter("broker_dedup_evictions", name_),
                                 &metrics->gauge("broker_dedup_occupancy", name_));
    seen_announcements_.set_instruments(
        &metrics->counter("broker_announce_dedup_evictions", name_),
        &metrics->gauge("broker_announce_dedup_occupancy", name_));
}

std::string Broker::debug_snapshot() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "broker")
        .field("name", name_)
        .field("started", started_)
        .field("established_peers", static_cast<std::uint64_t>(established_peer_count()))
        .field("clients", static_cast<std::uint64_t>(clients_.size()))
        .field("dedup_occupancy", static_cast<std::uint64_t>(seen_events_.size()))
        .field("dedup_evictions", seen_events_.evictions());
    w.key("stats").begin_object()
        .field("events_ingested", stats_.events_ingested)
        .field("events_forwarded", stats_.events_forwarded)
        .field("events_delivered", stats_.events_delivered)
        .field("duplicates_suppressed", stats_.duplicates_suppressed)
        .field("pings_answered", stats_.pings_answered)
        .field("malformed_dropped", stats_.malformed_dropped)
        .field("peers_dropped", stats_.peers_dropped)
        .end_object();
    w.end_object();
    return w.take();
}

}  // namespace narada::broker
