// Pub/sub client — an entity connected to a broker.
//
// "Once connected to a broker an entity has access to a wide variety of
// services" (paper §1.1). PubSubClient is that entity-side endpoint: it
// performs the hello handshake, manages subscriptions, publishes events and
// surfaces deliveries through a callback. BDNs embed one to listen on the
// public advertisement topic, and the examples use it as the application
// API after discovery selects a broker.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "broker/event.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "transport/transport.hpp"

namespace narada::broker {

class PubSubClient final : public transport::MessageHandler {
public:
    PubSubClient(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
                 std::string credential = {});
    ~PubSubClient() override;

    PubSubClient(const PubSubClient&) = delete;
    PubSubClient& operator=(const PubSubClient&) = delete;

    /// Connect to `broker` (ClientHello). Subscriptions made earlier (or
    /// while disconnected) are replayed upon welcome, so a client can be
    /// re-pointed at a newly discovered broker transparently.
    void connect(const Endpoint& broker);

    /// Politely leave the current broker.
    void disconnect();

    [[nodiscard]] bool connected() const { return connected_; }
    [[nodiscard]] const Endpoint& broker() const { return broker_; }
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }

    void subscribe(const std::string& filter);
    void unsubscribe(const std::string& filter);
    void publish(const std::string& topic, Bytes payload,
                 std::map<std::string, std::string> headers = {});

    /// Register a delivery callback. Callbacks accumulate: services (e.g.
    /// reliable delivery) can attach their own listeners without stealing
    /// the application's; every callback sees every delivered event.
    void on_event(std::function<void(const Event&)> callback) {
        event_handlers_.push_back(std::move(callback));
    }
    void on_connected(std::function<void()> callback) { on_connected_ = std::move(callback); }

    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    void send_subscribe(const std::string& filter, bool add);

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    Endpoint broker_;
    std::string credential_;
    Rng rng_;
    bool connected_ = false;
    std::set<std::string> filters_;
    std::vector<std::function<void(const Event&)>> event_handlers_;
    std::function<void()> on_connected_;
};

}  // namespace narada::broker
