// Trie-based subscription table.
//
// Maps topic filters to opaque subscriber tokens and answers "which
// subscribers match this topic" in O(segments) rather than O(filters).
// The trie has, per node, exact-match children plus the two wildcard
// children ('*' one segment, '#' rest-of-topic).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace narada::broker {

using SubscriberToken = std::uint64_t;

class SubscriptionTable {
public:
    /// Register `token` under `filter`. Returns false (and does nothing)
    /// if the filter is invalid. Idempotent per (filter, token).
    bool subscribe(std::string_view filter, SubscriberToken token);

    /// Remove one (filter, token) registration. Returns true if removed.
    bool unsubscribe(std::string_view filter, SubscriberToken token);

    /// Remove every registration of `token` (client disconnect).
    void remove_subscriber(SubscriberToken token);

    /// All distinct tokens whose filters match `topic`.
    [[nodiscard]] std::vector<SubscriberToken> match(std::string_view topic) const;

    /// True if at least one filter of `token` matches `topic`.
    [[nodiscard]] bool matches_subscriber(std::string_view topic, SubscriberToken token) const;

    [[nodiscard]] std::size_t filter_count() const { return filter_count_; }
    [[nodiscard]] bool empty() const { return filter_count_ == 0; }

private:
    struct Node {
        std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
        std::unique_ptr<Node> single;  ///< '*' branch
        std::set<SubscriberToken> multi_subscribers;  ///< '#' terminators here
        std::set<SubscriberToken> subscribers;        ///< exact terminators
        [[nodiscard]] bool prunable() const {
            return children.empty() && !single && multi_subscribers.empty() &&
                   subscribers.empty();
        }
    };

    static void collect(const Node& node, const std::vector<std::string>& segments,
                        std::size_t index, std::set<SubscriberToken>& out);

    Node root_;
    std::size_t filter_count_ = 0;
};

}  // namespace narada::broker
