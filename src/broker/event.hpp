// Events — the unit of information flow in the messaging substrate.
//
// "Events encapsulate expressive power at multiple levels (transport,
// protocol, service and application)" (paper §1). Our event carries a
// unique id (used for duplicate suppression while flooding the overlay),
// the topic, an opaque payload, optional string headers, and a TTL bounding
// propagation depth.
#pragma once

#include <map>
#include <string>

#include "common/types.hpp"
#include "common/uuid.hpp"
#include "wire/codec.hpp"

namespace narada::broker {

struct Event {
    Uuid id;
    std::string topic;
    Bytes payload;
    std::map<std::string, std::string> headers;
    std::uint32_t ttl = 32;

    void encode(wire::ByteWriter& writer) const;
    static Event decode(wire::ByteReader& reader);

    friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace narada::broker
