// Usage-metric sources.
//
// A discovery response carries "the load currently at the broker ... the
// total number of active concurrent connections, the CPU and memory
// utilizations" (paper §5.1), and the client weighs free/total memory,
// total memory, link count and CPU load when shortlisting (§9). Connection
// counts come from the broker itself; CPU and memory figures come from a
// LoadModel so experiments can impose any load profile on any broker.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"

namespace narada::broker {

/// Snapshot of a broker's resource usage, embedded in discovery responses.
struct UsageMetrics {
    std::uint32_t connections = 0;   ///< active concurrent connections
    std::uint32_t broker_links = 0;  ///< links to peer brokers
    double cpu_load = 0.0;           ///< 0..1
    std::uint64_t total_memory = 0;  ///< bytes
    std::uint64_t free_memory = 0;   ///< bytes

    friend bool operator==(const UsageMetrics&, const UsageMetrics&) = default;
};

/// Supplies the CPU / memory part of the metrics.
class LoadModel {
public:
    virtual ~LoadModel() = default;
    [[nodiscard]] virtual double cpu_load() const = 0;
    [[nodiscard]] virtual std::uint64_t total_memory() const = 0;
    [[nodiscard]] virtual std::uint64_t free_memory() const = 0;
};

/// Fixed load; the default for brokers with no imposed profile.
class StaticLoadModel final : public LoadModel {
public:
    StaticLoadModel(double cpu, std::uint64_t total, std::uint64_t free_bytes)
        : cpu_(cpu), total_(total), free_(free_bytes) {}

    /// An idle 512 MB machine (the paper's security-test box had 512 MB).
    StaticLoadModel() : StaticLoadModel(0.05, 512ull << 20, 400ull << 20) {}

    [[nodiscard]] double cpu_load() const override { return cpu_; }
    [[nodiscard]] std::uint64_t total_memory() const override { return total_; }
    [[nodiscard]] std::uint64_t free_memory() const override { return free_; }

    void set_cpu_load(double cpu) { cpu_ = cpu; }
    void set_free_memory(std::uint64_t free_bytes) { free_ = free_bytes; }

private:
    double cpu_;
    std::uint64_t total_;
    std::uint64_t free_;
};

/// Load that grows with the number of connections the broker reports —
/// used by the load-balancing ablation (paper §8 claim 3: "a newly added
/// broker within a cluster would be preferentially utilized").
class ConnectionDrivenLoadModel final : public LoadModel {
public:
    ConnectionDrivenLoadModel(double base_cpu, double cpu_per_connection,
                              std::uint64_t total, std::uint64_t bytes_per_connection)
        : base_cpu_(base_cpu),
          cpu_per_connection_(cpu_per_connection),
          total_(total),
          bytes_per_connection_(bytes_per_connection) {}

    void set_connections(std::uint32_t n) { connections_ = n; }

    [[nodiscard]] double cpu_load() const override {
        return std::min(1.0, base_cpu_ + cpu_per_connection_ * connections_);
    }
    [[nodiscard]] std::uint64_t total_memory() const override { return total_; }
    [[nodiscard]] std::uint64_t free_memory() const override {
        const std::uint64_t used = bytes_per_connection_ * connections_;
        return used >= total_ ? 0 : total_ - used;
    }

private:
    double base_cpu_;
    double cpu_per_connection_;
    std::uint64_t total_;
    std::uint64_t bytes_per_connection_;
    std::uint32_t connections_ = 0;
};

}  // namespace narada::broker
