// The broker node — NaradaBrokering's message-oriented middleware unit.
//
// A broker accepts client connections, maintains reliable links to peer
// brokers, matches published events against its subscription table, and
// floods events across the overlay with per-event duplicate suppression.
// Broker-network-specific services (advertisement, discovery response) are
// BrokerPlugins layered on this core so the MoM stays independent of the
// discovery protocol.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "broker/dedup_cache.hpp"
#include "broker/event.hpp"
#include "broker/load_model.hpp"
#include "broker/subscription_table.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "config/node_config.hpp"
#include "obs/metrics.hpp"
#include "timesvc/ntp.hpp"
#include "transport/transport.hpp"

namespace narada::broker {

class Broker;

/// Extension point for services hosted on a broker (advertiser, discovery
/// responder, ...). Plugins are non-owning observers: the caller keeps
/// them alive for the broker's lifetime.
class BrokerPlugin {
public:
    virtual ~BrokerPlugin() = default;

    /// Called once when the plugin is added. `broker` outlives the plugin's
    /// registration.
    virtual void on_attach(Broker& broker) = 0;

    /// Called when Broker::start() runs (after transport bind).
    virtual void on_start() {}

    /// Offered every message whose type the broker core does not handle.
    /// Return true to consume it.
    virtual bool on_message(const Endpoint& from, std::uint8_t type, wire::ByteReader& reader,
                            bool reliable) {
        (void)from;
        (void)type;
        (void)reader;
        (void)reliable;
        return false;
    }

    /// Called for every distinct event this broker sees (local publish or
    /// overlay flood), before client delivery.
    virtual void on_event(const Event& event) { (void)event; }
};

class Broker final : public transport::MessageHandler {
public:
    struct Stats {
        std::uint64_t events_ingested = 0;      ///< distinct events seen
        std::uint64_t events_forwarded = 0;     ///< flood sends to peers
        std::uint64_t events_delivered = 0;     ///< deliveries to clients
        std::uint64_t duplicates_suppressed = 0;
        std::uint64_t pings_answered = 0;
        std::uint64_t malformed_dropped = 0;
        std::uint64_t peers_dropped = 0;        ///< links shed by liveness
    };

    Broker(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
           const Clock& local_clock, const timesvc::UtcSource& utc,
           config::BrokerConfig config, std::string name = {});
    ~Broker() override;

    Broker(const Broker&) = delete;
    Broker& operator=(const Broker&) = delete;

    /// Bind-time setup already happened in the constructor; start() runs
    /// plugin startup work (e.g. sending advertisements).
    void start();

    /// Initiate a reliable peer link (LinkHello / LinkAccept handshake).
    void connect_to_peer(const Endpoint& peer);

    /// Publish an event originating at this broker.
    void publish(Event event);

    /// Subscribe/unsubscribe a plugin-local consumer: matching events are
    /// passed to BrokerPlugin::on_event of every plugin (plugins filter by
    /// topic themselves); this registration only affects routing interest.
    void add_plugin(BrokerPlugin* plugin);

    /// Declare that a plugin on this broker consumes events matching
    /// `filter`. Irrelevant under flood routing; under subscription
    /// routing it keeps matching events flowing to this broker.
    void add_plugin_interest(const std::string& filter);

    /// Observer of peer-link transitions (the paper's "very dynamic and
    /// fluid" overlay, §1.2): fired after a link becomes established
    /// (`up == true`) or is dropped/lost (`up == false`), with the
    /// resulting established-peer count. One observer per broker; the
    /// RejoinSupervisor uses it to notice when the broker falls below its
    /// configured peer floor. The observer may call back into the broker
    /// (e.g. connect_to_peer).
    using PeerLinkObserver =
        std::function<void(const Endpoint& peer, bool up, std::size_t established_peers)>;
    void set_peer_observer(PeerLinkObserver observer) {
        peer_observer_ = std::move(observer);
    }
    [[nodiscard]] std::size_t established_peer_count() const;

    /// This broker's identity on the overlay (interest announcements).
    [[nodiscard]] const Uuid& overlay_id() const { return overlay_id_; }

    // --- introspection -------------------------------------------------------
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const config::BrokerConfig& config() const { return config_; }
    [[nodiscard]] std::vector<Endpoint> peers() const;
    [[nodiscard]] std::vector<Endpoint> clients() const;
    [[nodiscard]] UsageMetrics metrics() const;
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Mirror the broker core's counters into a metrics registry (null =
    /// off). The instruments are labelled with the broker's name; the hot
    /// path stays atomics-only.
    void set_observability(obs::MetricsRegistry* metrics);
    /// JSON introspection dump: overlay shape and lifetime counters.
    [[nodiscard]] std::string debug_snapshot() const;

    // --- services for plugins -------------------------------------------------
    [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
    [[nodiscard]] transport::Transport& transport() { return transport_; }
    [[nodiscard]] const Clock& local_clock() const { return local_clock_; }
    [[nodiscard]] const timesvc::UtcSource& utc() const { return utc_; }
    [[nodiscard]] Rng& rng() { return rng_; }

    void set_load_model(std::shared_ptr<const LoadModel> model);
    [[nodiscard]] const LoadModel& load_model() const { return *load_model_; }

    // --- MessageHandler --------------------------------------------------------
    void on_datagram(const Endpoint& from, const Bytes& data) override;
    void on_reliable(const Endpoint& from, const Bytes& data) override;

private:
    struct ClientState {
        SubscriberToken token;
        std::string credential;
    };
    struct PeerState {
        bool established = false;
        std::uint32_t missed_heartbeats = 0;
        bool pong_pending = false;
    };

    void dispatch(const Endpoint& from, const Bytes& data, bool reliable);
    void handle_client_hello(const Endpoint& from, wire::ByteReader& reader);
    void handle_client_bye(const Endpoint& from);
    void handle_subscribe(const Endpoint& from, wire::ByteReader& reader, bool add);
    void handle_publish(const Endpoint& from, wire::ByteReader& reader);
    void handle_link_hello(const Endpoint& from);
    void handle_link_accept(const Endpoint& from);
    void handle_event_flood(const Endpoint& from, wire::ByteReader& reader);
    void handle_ping(const Endpoint& from, wire::ByteReader& reader);
    void handle_interest(const Endpoint& from, wire::ByteReader& reader);
    void handle_pong(const Endpoint& from);

    /// Periodic peer-link liveness sweep: ping every established peer and
    /// shed links whose pongs stopped coming.
    void peer_heartbeat_tick();
    /// Remove a peer link and its routing state.
    void drop_peer(const Endpoint& peer);
    /// Tell the registered observer about a link transition.
    void notify_peer_observer(const Endpoint& peer, bool up);

    // --- subscription routing (RoutingMode::kRouted) --------------------------
    /// Bump/drop the local-interest refcount; edge transitions announce.
    void add_local_interest(const std::string& filter);
    void remove_local_interest(const std::string& filter);
    /// Flood one (origin, filter, add) announcement, skipping `except`.
    /// The announce id identifies the flood instance for dedup; relays
    /// MUST pass the received id through unchanged.
    void announce_interest(const Uuid& announce_id, const Uuid& origin,
                           const std::string& filter, bool add, const Endpoint& except);
    /// Bring a fresh peer up to date with everything we know.
    void send_interest_summary(const Endpoint& peer);
    [[nodiscard]] static SubscriberToken origin_token(const Uuid& origin) {
        return origin.hi() ^ (origin.lo() * 0x9E3779B97F4A7C15ull);
    }

    /// Process a distinct event: plugins, local delivery, overlay fan-out.
    /// `source` is the peer we received it from (invalid endpoint if local).
    void ingest(Event event, const Endpoint& source);
    void forward_to_peers(const Event& event, const Endpoint& except);
    void deliver_to_clients(const Event& event);

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    const timesvc::UtcSource& utc_;
    config::BrokerConfig config_;
    std::string name_;
    Rng rng_;

    std::map<Endpoint, PeerState> peers_;
    std::map<Endpoint, ClientState> clients_;
    std::map<SubscriberToken, Endpoint> token_to_client_;
    std::map<SubscriberToken, std::set<std::string>> token_filters_;
    SubscriberToken next_token_ = 1;
    SubscriptionTable subscriptions_;
    DedupCache seen_events_;

    // Subscription-routing state.
    Uuid overlay_id_;
    std::map<std::string, int> local_interest_refcount_;
    std::map<Endpoint, SubscriptionTable> link_interests_;  ///< per peer link
    std::set<std::pair<Uuid, std::string>> known_interests_;
    DedupCache seen_announcements_{4096};
    std::shared_ptr<const LoadModel> load_model_;
    std::vector<BrokerPlugin*> plugins_;
    PeerLinkObserver peer_observer_;
    TimerHandle peer_heartbeat_timer_ = kInvalidTimerHandle;
    Stats stats_;
    bool started_ = false;

    // Observability (optional; null = off).
    struct Instruments {
        obs::Counter* ingested = nullptr;
        obs::Counter* forwarded = nullptr;
        obs::Counter* delivered = nullptr;
        obs::Counter* duplicates = nullptr;
        obs::Counter* pings = nullptr;
        obs::Counter* malformed = nullptr;
        obs::Counter* peers_dropped = nullptr;
    } inst_;
};

}  // namespace narada::broker
