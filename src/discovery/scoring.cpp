#include "discovery/scoring.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace narada::discovery {

double score_response(const DiscoveryResponse& response, DurationUs estimated_delay,
                      const config::MetricWeights& weights) {
    const broker::UsageMetrics& m = response.metrics;
    double weight = 0.0;
    // Higher the better.
    if (m.total_memory > 0) {
        weight += (static_cast<double>(m.free_memory) / static_cast<double>(m.total_memory)) *
                  weights.free_to_total_memory;
    }
    weight += (static_cast<double>(m.total_memory) / (1024.0 * 1024.0)) * weights.total_memory_mb;
    // Lower the better.
    weight -= static_cast<double>(m.connections) * weights.num_links;
    weight -= m.cpu_load * weights.cpu_load;
    weight -= to_ms(estimated_delay) * weights.delay_ms;
    if (response.overloaded) weight -= weights.overload_penalty;
    return weight;
}

std::vector<std::size_t> shortlist(std::vector<Candidate>& candidates,
                                   const config::MetricWeights& weights,
                                   std::size_t target_set_size) {
    for (Candidate& c : candidates) {
        c.score = score_response(c.response, c.estimated_delay, weights);
    }
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&candidates](std::size_t a, std::size_t b) {
        return candidates[a].score > candidates[b].score;
    });
    if (order.size() > target_set_size) order.resize(target_set_size);
    return order;
}

std::vector<Endpoint> select_injection_targets(std::vector<InjectionCandidate> candidates,
                                               config::InjectionStrategy strategy, Rng& rng) {
    if (candidates.empty()) return {};

    // Order by measured RTT; unmeasured brokers sort last in arrival order
    // (stable), so the strategy still works before the first pongs.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const InjectionCandidate& a, const InjectionCandidate& b) {
                         const DurationUs ra =
                             a.rtt < 0 ? std::numeric_limits<DurationUs>::max() : a.rtt;
                         const DurationUs rb =
                             b.rtt < 0 ? std::numeric_limits<DurationUs>::max() : b.rtt;
                         return ra < rb;
                     });

    std::vector<Endpoint> targets;
    switch (strategy) {
        case config::InjectionStrategy::kClosestAndFarthest:
            // "the broker discovery request would be issued simultaneously
            // to the brokers that are closest and farthest from the BDN"
            // (§4).
            targets.push_back(candidates.front().endpoint);
            if (candidates.size() > 1) targets.push_back(candidates.back().endpoint);
            break;
        case config::InjectionStrategy::kClosestOnly:
            targets.push_back(candidates.front().endpoint);
            break;
        case config::InjectionStrategy::kRandom:
            targets.push_back(candidates[rng.bounded(candidates.size())].endpoint);
            break;
        case config::InjectionStrategy::kAll:
            // The unconnected topology's O(N) distribution (§9, Figure 2).
            for (const InjectionCandidate& c : candidates) targets.push_back(c.endpoint);
            break;
    }
    return targets;
}

}  // namespace narada::discovery
