#include "discovery/bdn.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "broker/topic.hpp"
#include "common/log.hpp"
#include "discovery/security.hpp"
#include "obs/json.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {

Bdn::Bdn(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
         const Clock& local_clock, config::BdnConfig config, std::string name)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      config_(std::move(config)),
      name_(name.empty() ? "bdn@" + local.str() : std::move(name)),
      rng_(0x62646Eull ^ (std::uint64_t{local.host} << 16) ^ local.port),
      node_id_(mix64((std::uint64_t{local.host} << 16) | local.port)) {
    rebuild_ring(config_.peer_group);
    transport_.bind(local_, this);
}

Bdn::~Bdn() {
    scheduler_.cancel_timer(refresh_timer_);
    scheduler_.cancel_timer(drain_timer_);
    scheduler_.cancel_timer(sync_timer_);
    scheduler_.cancel_timer(anti_entropy_timer_);
    for (auto& [id, gather] : gathers_) scheduler_.cancel_timer(gather.timer);
    transport_.unbind(local_);
}

void Bdn::start() {
    if (started_) return;
    started_ = true;
    refresh_distances();
    if (config_.registry_sync_interval > 0 && !config_.sync_peers.empty()) {
        arm_sync_timer();
    }
    if (federated() && config_.anti_entropy_interval > 0) {
        arm_anti_entropy_timer();
    }
}

void Bdn::rebuild_ring(const std::vector<Endpoint>& members) {
    std::vector<Endpoint> group = members;
    // A config that lists peers but forgot this node still forms a correct
    // group: ownership decisions must agree with what peers compute.
    if (!group.empty() && std::find(group.begin(), group.end(), local_) == group.end()) {
        group.push_back(local_);
    }
    ring_ = ShardRing(std::move(group),
                      ShardRing::Options{config_.ring_vnodes, config_.replication_factor});
    // Order-independent member-list fingerprint: digests carry it so two
    // nodes mid-rebalance (different epochs) never compare shard ranges.
    std::uint64_t hash = mix64(0x72696E67ull ^ ring_.members().size());
    for (const Endpoint& m : ring_.members()) {
        hash ^= mix64((std::uint64_t{m.host} << 16) | m.port);
    }
    ring_hash_ = hash;
}

void Bdn::arm_sync_timer() {
    sync_timer_ = scheduler_.schedule(config_.registry_sync_interval, [this] {
        sync_registry();
        arm_sync_timer();
    });
}

void Bdn::attach_to_broker(const Endpoint& broker, const Endpoint& client_endpoint) {
    attachment_ = std::make_unique<broker::PubSubClient>(scheduler_, transport_,
                                                         client_endpoint, /*credential=*/"");
    attachment_->on_event([this](const broker::Event& event) {
        if (event.topic != broker::kBrokerAdvertisementTopic) return;
        try {
            wire::ByteReader reader(event.payload);
            handle_advertisement(BrokerAdvertisement::decode(reader));
        } catch (const wire::WireError& e) {
            NARADA_DEBUG("bdn", "{}: bad advertisement event: {}", name_, e.what());
        }
    });
    attachment_->subscribe(std::string(broker::kBrokerAdvertisementTopic));
    attachment_->connect(broker);
}

void Bdn::announce_to(const Endpoint& broker) {
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + 4 + 2);
    writer.u8(wire::kMsgBdnAdvertisement);
    writer.u32(local_.host);
    writer.u16(local_.port);
    transport_.send_datagram(local_, broker, writer.take());
}

void Bdn::register_broker(BrokerAdvertisement ad) { handle_advertisement(ad); }

transport::RudpChannel& Bdn::rudp_channel(const Endpoint& peer) {
    auto it = rudp_channels_.find(peer);
    if (it == rudp_channels_.end()) {
        auto channel = std::make_unique<transport::RudpChannel>(
            scheduler_, transport_, local_clock_, local_, peer, transport::RudpOptions{},
            name_.empty() ? "bdn-sync" : name_ + "-sync");
        channel->on_deliver(
            [this, peer](Bytes payload) { handle_bulk_payload(peer, payload); });
        if (metrics_ != nullptr) {
            channel->set_observability(metrics_, name_ + "->" + peer.str());
        }
        it = rudp_channels_.emplace(peer, std::move(channel)).first;
    }
    return *it->second;
}

const transport::RudpChannel* Bdn::sync_channel(const Endpoint& peer) const {
    const auto it = rudp_channels_.find(peer);
    return it != rudp_channels_.end() ? it->second.get() : nullptr;
}

void Bdn::sync_registry() {
    if (registry_.empty() || config_.sync_peers.empty()) return;
    // Digest over (id, origin, version) of the unexpired registry, with the
    // entry count folded in so n entries xoring to zero differ from zero
    // entries. Leases are excluded on purpose: a renewal mints a fresh
    // version (digest changes, push happens), but mere clock progress must
    // not defeat the skip.
    const auto [fold, unexpired] = registry_digest(nullptr);
    const std::uint64_t snapshot_digest = mix64(fold ^ unexpired);

    // One snapshot, encoded lazily (every peer may be up to date) and only
    // once; each peer's lane gets its own copy (the channel references the
    // payload in place until fully acked).
    Bytes snapshot;
    bool encoded = false;

    for (const Endpoint& peer : config_.sync_peers) {
        if (peer == local_) continue;
        transport::RudpChannel& channel = rudp_channel(peer);
        if (channel.state() == transport::RudpChannel::State::kAbandoned) {
            // The lane gave up on this peer (dead long enough to abandon);
            // a periodic push is exactly the moment to try a fresh start.
            // The peer may have restarted empty — forget what it held so
            // the next push is unconditional.
            channel.reset();
            last_push_digest_.erase(peer);
        }
        const auto digest_it = last_push_digest_.find(peer);
        if (digest_it != last_push_digest_.end() && digest_it->second == snapshot_digest) {
            ++stats_.sync_skipped_unchanged;
            if (inst_.sync_skipped) inst_.sync_skipped->inc();
            continue;
        }
        if (!encoded) {
            encoded = true;
            const TimeUs now = local_clock_.now();
            std::vector<RegistrySyncEntry> entries;
            entries.reserve(registry_.size());
            for (const auto& [id, rb] : registry_) {
                // An expired entry awaiting the sweep must not travel: the
                // receiver's merge would drop it anyway (<= 0 remaining).
                if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) continue;
                entries.push_back(make_sync_entry(rb));
            }
            std::size_t body = 1 + 4;
            for (const RegistrySyncEntry& e : entries) body += e.measured_size();
            wire::ByteWriter writer;
            writer.reserve(body);
            writer.u8(wire::kMsgBdnRegistrySync2);
            writer.u32(static_cast<std::uint32_t>(entries.size()));
            for (const RegistrySyncEntry& e : entries) e.encode(writer);
            snapshot = writer.take();
        }
        if (channel.send_bulk(snapshot)) {
            ++stats_.sync_pushes;
            last_push_digest_[peer] = snapshot_digest;
        } else {
            ++stats_.sync_push_failures;
        }
    }
}

RegistrySyncEntry Bdn::make_sync_entry(const RegisteredBroker& rb) const {
    RegistrySyncEntry e;
    e.ad = rb.ad;
    e.lease_remaining =
        rb.lease_expires_at > 0 ? rb.lease_expires_at - local_clock_.now() : -1;
    e.origin = rb.origin;
    e.version = rb.version;
    return e;
}

std::pair<std::uint64_t, std::uint32_t> Bdn::registry_digest(const Endpoint* peer) const {
    const TimeUs now = local_clock_.now();
    std::uint64_t fold = 0;
    std::uint32_t count = 0;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) continue;
        if (peer != nullptr && (!ring_.owns(local_, id) || !ring_.owns(*peer, id))) continue;
        fold ^= mix64(id.hi() ^ mix64(id.lo() ^ mix64(rb.origin ^ mix64(rb.version))));
        ++count;
    }
    return {fold, count};
}

bool Bdn::push_entries(const Endpoint& peer, const std::vector<RegistrySyncEntry>& entries) {
    std::size_t body = 1 + 4;
    for (const RegistrySyncEntry& e : entries) body += e.measured_size();
    wire::ByteWriter writer;
    writer.reserve(body);
    writer.u8(wire::kMsgBdnRegistrySync2);
    writer.u32(static_cast<std::uint32_t>(entries.size()));
    for (const RegistrySyncEntry& e : entries) e.encode(writer);
    transport::RudpChannel& channel = rudp_channel(peer);
    if (channel.state() == transport::RudpChannel::State::kAbandoned) {
        channel.reset();
        last_push_digest_.erase(peer);
    }
    if (channel.send_bulk(writer.take())) {
        ++stats_.sync_pushes;
        return true;
    }
    ++stats_.sync_push_failures;
    return false;
}

void Bdn::handle_bulk_payload(const Endpoint& peer, const Bytes& payload) {
    try {
        wire::ByteReader reader(payload);
        const std::uint8_t type = reader.u8();
        if (type == wire::kMsgBdnRegistrySync2) {
            const std::uint32_t count = reader.u32();
            ++stats_.sync_received;
            for (std::uint32_t i = 0; i < count; ++i) {
                merge_entry(RegistrySyncEntry::decode(reader));
            }
            NARADA_DEBUG("bdn", "{}: registry sync v2 from {}: {} entries", name_,
                         peer.str(), count);
            return;
        }
        if (type != wire::kMsgBdnRegistrySync) {
            NARADA_DEBUG("bdn", "{}: unexpected bulk payload type {} from {}", name_,
                         static_cast<int>(type), peer.str());
            return;
        }
        // v1 (legacy peers): bare advertisements, no lease or version
        // context — treated exactly like direct advertisements.
        const std::uint32_t count = reader.u32();
        ++stats_.sync_received;
        for (std::uint32_t i = 0; i < count; ++i) {
            const BrokerAdvertisement ad = BrokerAdvertisement::decode(reader);
            const bool fresh = !registry_.contains(ad.broker_id);
            // Same path as a direct advertisement: realm filter, lease
            // renewal, newcomer ping.
            handle_advertisement(ad);
            if (fresh && registry_.contains(ad.broker_id)) ++stats_.sync_brokers_learned;
        }
        NARADA_DEBUG("bdn", "{}: registry sync from {}: {} brokers", name_, peer.str(), count);
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: bad registry sync from {}: {}", name_, peer.str(), e.what());
    }
}

void Bdn::merge_entry(const RegistrySyncEntry& entry) {
    if (!realm_accepted(entry.ad.realm)) {
        ++stats_.ads_filtered;
        return;
    }
    // Never resurrect an expired lease: the sender encoded what was left of
    // the grant, and nothing was left.
    if (entry.lease_remaining != -1 && entry.lease_remaining <= 0) {
        ++stats_.sync_expired_dropped;
        return;
    }
    const TimeUs now = local_clock_.now();
    // The merged lease is the sender's *remaining* time clamped to our own
    // policy — a sync may shorten what a fresh local ad would get, never
    // extend it. -1 = the sender doesn't lease; fall back to local policy
    // as if the broker had advertised here directly.
    TimeUs merged_lease = 0;
    if (entry.lease_remaining == -1) {
        merged_lease = config_.ad_lease > 0 ? now + config_.ad_lease : 0;
    } else {
        DurationUs remaining = entry.lease_remaining;
        if (config_.ad_lease > 0) remaining = std::min(remaining, config_.ad_lease);
        merged_lease = now + remaining;
    }
    // Lamport advance: local writes after this merge must outrank it.
    version_counter_ = std::max(version_counter_, entry.version);

    const auto it = registry_.find(entry.ad.broker_id);
    if (it == registry_.end()) {
        RegisteredBroker& rb = registry_[entry.ad.broker_id];
        rb.ad = entry.ad;
        rb.registered_at = now;
        rb.lease_expires_at = merged_lease;
        rb.origin = entry.origin;
        rb.version = entry.version;
        endpoint_to_broker_[entry.ad.endpoint] = entry.ad.broker_id;
        ++stats_.sync_brokers_learned;
        // Measure the newcomer immediately, as with a direct ad.
        if (started_) {
            ++stats_.pings_sent;
            if (inst_.pings) inst_.pings->inc();
            wire::ByteWriter writer(transport_.acquire_buffer());
            writer.reserve(1 + 8);
            writer.u8(wire::kMsgPing);
            writer.i64(local_clock_.now());
            transport_.send_datagram(local_, entry.ad.endpoint, writer.take());
        }
        return;
    }
    RegisteredBroker& rb = it->second;
    // (version, origin) totally orders concurrent writes of one broker id;
    // only a strictly newer write replaces the ad payload. RTT and pong
    // history are local measurements and always survive the merge.
    if (std::pair(entry.version, entry.origin) > std::pair(rb.version, rb.origin)) {
        rb.ad = entry.ad;
        rb.origin = entry.origin;
        rb.version = entry.version;
        endpoint_to_broker_[entry.ad.endpoint] = entry.ad.broker_id;
    }
    // Leases only grow from a merge (up to the clamped remaining time): a
    // replica with a staler view must not shorten what the broker already
    // earned here. An entry held without a lease (0 = never expires under
    // local policy) keeps that status, and a sender that doesn't track
    // leases (-1) cannot renew one — only the broker's own re-ad can.
    if (entry.lease_remaining != -1 && merged_lease > 0 && rb.lease_expires_at > 0) {
        rb.lease_expires_at = std::max(rb.lease_expires_at, merged_lease);
    }
}

void Bdn::set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                            const timesvc::UtcSource* utc) {
    metrics_ = metrics;
    spans_ = spans;
    utc_ = utc;
    inst_ = {};
    for (auto& [peer, channel] : rudp_channels_) {
        channel->set_observability(metrics, name_ + "->" + peer.str());
    }
    if (metrics == nullptr) return;
    inst_.requests = &metrics->counter("bdn_requests_received", name_);
    inst_.duplicates = &metrics->counter("bdn_duplicate_requests", name_);
    inst_.acks = &metrics->counter("bdn_acks_sent", name_);
    inst_.injections = &metrics->counter("bdn_injections", name_);
    inst_.shed_quota = &metrics->counter("bdn_requests_shed_quota", name_);
    inst_.shed_overflow = &metrics->counter("bdn_requests_shed_overflow", name_);
    inst_.serviced = &metrics->counter("bdn_requests_serviced", name_);
    inst_.ads = &metrics->counter("bdn_ads_received", name_);
    inst_.pings = &metrics->counter("bdn_pings_sent", name_);
    inst_.pongs = &metrics->counter("bdn_pongs_received", name_);
    inst_.leases_expired = &metrics->counter("bdn_leases_expired", name_);
    inst_.ads_forwarded = &metrics->counter("bdn_ads_forwarded", name_);
    inst_.gathers_partial = &metrics->counter("bdn_gathers_partial", name_);
    inst_.sync_skipped = &metrics->counter("bdn_sync_skipped", name_);
    inst_.rejected_ads = &metrics->counter("crypto_rejected_ads", name_);
    if (security_ != nullptr) security_->set_observability(metrics, name_);
    inst_.queue_depth = &metrics->gauge("bdn_queue_depth", name_);
    inst_.fanout =
        &metrics->histogram("bdn_injection_fanout", name_, {1, 2, 4, 8, 16, 32, 64});
    seen_requests_.set_instruments(&metrics->counter("bdn_dedup_evictions", name_),
                                   &metrics->gauge("bdn_dedup_occupancy", name_));
}

std::string Bdn::debug_snapshot() const {
    const TimeUs now = local_clock_.now();
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "bdn")
        .field("name", name_)
        .field("started", started_)
        .field("queue_depth", static_cast<std::uint64_t>(ingest_queue_.size()))
        .field("dedup_occupancy", static_cast<std::uint64_t>(seen_requests_.size()))
        .field("dedup_evictions", seen_requests_.evictions());
    w.key("stats").begin_object()
        .field("ads_received", stats_.ads_received)
        .field("ads_filtered", stats_.ads_filtered)
        .field("requests_received", stats_.requests_received)
        .field("duplicate_requests", stats_.duplicate_requests)
        .field("acks_sent", stats_.acks_sent)
        .field("injections", stats_.injections)
        .field("credential_rejections", stats_.credential_rejections)
        .field("requests_shed_quota", stats_.requests_shed_quota)
        .field("requests_shed_overflow", stats_.requests_shed_overflow)
        .field("requests_serviced", stats_.requests_serviced)
        .field("queue_depth_peak", stats_.queue_depth_peak)
        .field("leases_renewed", stats_.leases_renewed)
        .field("leases_expired", stats_.leases_expired)
        .field("registrations_expired", stats_.registrations_expired)
        .field("sync_pushes", stats_.sync_pushes)
        .field("sync_push_failures", stats_.sync_push_failures)
        .field("sync_received", stats_.sync_received)
        .field("sync_brokers_learned", stats_.sync_brokers_learned)
        .field("sync_skipped_unchanged", stats_.sync_skipped_unchanged)
        .field("sync_expired_dropped", stats_.sync_expired_dropped)
        .field("ads_forwarded", stats_.ads_forwarded)
        .field("forwards_received", stats_.forwards_received)
        .field("forwards_dropped", stats_.forwards_dropped)
        .field("gathers", stats_.gathers)
        .field("gathers_partial", stats_.gathers_partial)
        .field("anti_entropy_rounds", stats_.anti_entropy_rounds)
        .field("digests_matched", stats_.digests_matched)
        .field("digest_mismatch_pushes", stats_.digest_mismatch_pushes)
        .field("rebalance_handoffs", stats_.rebalance_handoffs)
        .field("secured_received", stats_.secured_received)
        .field("secure_open_failures", stats_.secure_open_failures)
        .field("ads_rejected_unauthenticated", stats_.ads_rejected_unauthenticated)
        .end_object();
    if (federated()) {
        w.key("ring").begin_object()
            .field("members", static_cast<std::uint64_t>(ring_.size()))
            .field("replication", static_cast<std::uint64_t>(ring_.replication()))
            .field("pending_gathers", static_cast<std::uint64_t>(gathers_.size()))
            .end_object();
    }
    if (!rudp_channels_.empty()) {
        w.key("sync_channels").begin_array();
        for (const auto& [peer, channel] : rudp_channels_) {
            w.begin_object()
                .field("peer", peer.str())
                .field("state", transport::to_string(channel->state()))
                .field("in_flight", static_cast<std::uint64_t>(channel->in_flight()))
                .field("srtt_ms", to_ms(channel->srtt()), 3)
                .end_object();
        }
        w.end_array();
    }
    w.key("registry").begin_array();
    for (const auto& [id, rb] : registry_) {
        w.begin_object()
            .field("broker", rb.ad.broker_name)
            .field("rtt_ms", rb.rtt < 0 ? -1.0 : to_ms(rb.rtt), 3)
            .field("age_ms", to_ms(now - rb.registered_at), 3)
            .field("last_pong_age_ms",
                   rb.last_pong > 0 ? to_ms(now - rb.last_pong) : -1.0, 3)
            .field("lease_remaining_ms",
                   rb.lease_expires_at > 0 ? to_ms(rb.lease_expires_at - now) : -1.0, 3)
            .end_object();
    }
    w.end_array().end_object();
    return w.take();
}

std::vector<Bdn::RegisteredBroker> Bdn::registry() const {
    std::vector<RegisteredBroker> out;
    out.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) out.push_back(rb);
    return out;
}

std::size_t Bdn::stale_count() const {
    const TimeUs now = local_clock_.now();
    std::size_t stale = 0;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) ++stale;
    }
    return stale;
}

void Bdn::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgBrokerAdvertisement:
                // authenticate_ads: a plain advertisement is rejected, not
                // registered — only envelope-verified ads count (§9.1).
                if (security_ != nullptr && security_->config().authenticate_ads) {
                    ++stats_.ads_rejected_unauthenticated;
                    if (inst_.rejected_ads) inst_.rejected_ads->inc();
                    return;
                }
                handle_advertisement(BrokerAdvertisementView::peek(reader));
                return;
            case wire::kMsgDiscoveryRequest:
                handle_request(from, DiscoveryRequestView::peek(reader));
                return;
            case wire::kMsgSecureEnvelope: {
                if (security_ == nullptr) {
                    NARADA_DEBUG("bdn", "{}: secure envelope from {} but security is off",
                                 name_, from.str());
                    return;
                }
                const SecureOpenResult opened = security_->open_datagram(reader);
                if (!opened.ok()) {
                    ++stats_.secure_open_failures;
                    NARADA_DEBUG("bdn", "{}: rejected envelope from {}: {}", name_,
                                 from.str(), crypto::to_string(opened.error));
                    return;
                }
                ++stats_.secured_received;
                handle_secured(from, opened);
                return;
            }
            case wire::kMsgPong:
                handle_pong(from, reader);
                return;
            case wire::kMsgAdForward: {
                // A peer relayed an advertisement it doesn't own. Never
                // re-forwarded (the sender already resolved ownership), so
                // relays cannot loop even across ring epochs.
                const BrokerAdvertisementView view = BrokerAdvertisementView::peek(reader);
                if (!realm_accepted(view.realm)) {
                    ++stats_.ads_filtered;
                    return;
                }
                if (federated() && !ring_.owns(local_, view.broker_id)) {
                    ++stats_.forwards_dropped;  // sender held a stale ring
                    return;
                }
                ++stats_.forwards_received;
                register_advertisement(view.materialize());
                return;
            }
            case wire::kMsgShardQuery:
                handle_shard_query(from, ShardQuery::decode(reader));
                return;
            case wire::kMsgShardReply:
                handle_shard_reply(from, ShardReply::decode(reader));
                return;
            case wire::kMsgRegistryDigest:
                handle_registry_digest(from, RegistryDigest::decode(reader));
                return;
            case wire::kMsgRudpData:
            case wire::kMsgRudpAck:
                // Bulk-lane frames (registry sync). Unknown senders only get
                // a channel while the map has room, so spoofed frames cannot
                // grow BDN memory without bound.
                if (!rudp_channels_.contains(from) &&
                    rudp_channels_.size() >= kMaxSyncChannels) {
                    NARADA_DEBUG("bdn", "{}: dropping RUDP frame from {} (channel cap)",
                                 name_, from.str());
                    return;
                }
                rudp_channel(from).handle_frame(type, reader);
                return;
            default:
                NARADA_DEBUG("bdn", "{}: unhandled message type {}", name_, static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: malformed message from {}: {}", name_, from.str(), e.what());
    }
}

void Bdn::handle_secured(const Endpoint& from, const SecureOpenResult& opened) {
    // The decrypted payload is a complete plain datagram (type octet +
    // body). Only perimeter types are admitted from inside an envelope:
    // intra-plane traffic (forwards, shard queries, digests, RUDP) never
    // travels sealed, and a nested envelope is rejected outright.
    try {
        wire::ByteReader reader(opened.payload);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgBrokerAdvertisement: {
                const BrokerAdvertisementView view = BrokerAdvertisementView::peek(reader);
                // Authenticated ads bind the envelope signer to the
                // advertised name: a verified peer still cannot register
                // an advertisement for somebody else's broker.
                if (security_->config().authenticate_ads &&
                    view.broker_name != opened.signer) {
                    ++stats_.ads_rejected_unauthenticated;
                    if (inst_.rejected_ads) inst_.rejected_ads->inc();
                    NARADA_DEBUG("bdn", "{}: ad for '{}' signed by '{}' rejected", name_,
                                 view.broker_name, opened.signer);
                    return;
                }
                handle_advertisement(view);
                return;
            }
            case wire::kMsgDiscoveryRequest:
                handle_request(from, DiscoveryRequestView::peek(reader));
                return;
            default:
                NARADA_DEBUG("bdn", "{}: type {} not accepted inside an envelope", name_,
                             static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: malformed secured payload from {}: {}", name_, from.str(),
                     e.what());
    }
}

void Bdn::set_security(SecurityContext* security) {
    security_ = security;
    if (security_ != nullptr && metrics_ != nullptr) {
        security_->set_observability(metrics_, name_);
    }
}

bool Bdn::realm_accepted(std::string_view realm) const {
    // "this BDN may choose to store the advertisement or ignore it if the
    // BDN is interested in specific advertisements" (§2.3).
    return config_.accepted_realms.empty() ||
           std::find(config_.accepted_realms.begin(), config_.accepted_realms.end(), realm) !=
               config_.accepted_realms.end();
}

void Bdn::handle_advertisement(const BrokerAdvertisement& ad) {
    ++stats_.ads_received;
    if (inst_.ads) inst_.ads->inc();
    if (!realm_accepted(ad.realm)) {
        ++stats_.ads_filtered;
        return;
    }
    if (federated() && !ring_.owns(local_, ad.broker_id)) {
        // Owned entry point (pub/sub attachment, register_broker): encode
        // once, then relay to the owning shards.
        wire::ByteWriter writer;
        writer.reserve(ad.measured_size());
        ad.encode(writer);
        const Bytes raw = writer.take();
        forward_ad(ad.broker_id, std::span<const std::uint8_t>(raw.data(), raw.size()));
        return;
    }
    register_advertisement(ad);
}

void Bdn::handle_advertisement(const BrokerAdvertisementView& view) {
    ++stats_.ads_received;
    if (inst_.ads) inst_.ads->inc();
    // Realm filter on the borrowed view: a filtered advertisement is
    // rejected without materializing its strings.
    if (!realm_accepted(view.realm)) {
        ++stats_.ads_filtered;
        return;
    }
    if (federated() && !ring_.owns(local_, view.broker_id)) {
        // Not ours under the ring: relay the borrowed message region
        // verbatim to the owning shards, no materialization.
        forward_ad(view.broker_id, view.raw);
        return;
    }
    register_advertisement(view.materialize());
}

void Bdn::forward_ad(const Uuid& broker_id, std::span<const std::uint8_t> raw) {
    ++stats_.ads_forwarded;
    if (inst_.ads_forwarded) inst_.ads_forwarded->inc();
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + raw.size());
    writer.u8(wire::kMsgAdForward);
    writer.raw(raw.data(), raw.size());
    const Bytes framed = writer.take();
    for (const Endpoint& owner : ring_.owners(broker_id)) {
        if (owner == local_) continue;
        transport_.send_datagram(local_, owner, framed);
    }
}

void Bdn::register_advertisement(const BrokerAdvertisement& ad) {
    const bool known = registry_.contains(ad.broker_id);
    RegisteredBroker& rb = registry_[ad.broker_id];
    const DurationUs previous_rtt = known ? rb.rtt : -1;
    rb.ad = ad;
    rb.registered_at = local_clock_.now();
    rb.rtt = previous_rtt;
    // Every accepted fresh advertisement mints a new version at this node:
    // renewals change the registry digest (so peers hear about them), and
    // (version, origin) resolves concurrent writes during merges.
    rb.origin = node_id_;
    rb.version = mint_version();
    // Renewable lease: the advertisement itself is the renewal message.
    // A broker that stops re-advertising (crashed, partitioned away) ages
    // out; a rejoining broker re-asserts itself with a fresh ad.
    if (config_.ad_lease > 0) {
        rb.lease_expires_at = local_clock_.now() + config_.ad_lease;
        if (known) ++stats_.leases_renewed;
    }
    endpoint_to_broker_[ad.endpoint] = ad.broker_id;
    // Measure the newcomer immediately so the injection strategy can use it.
    if (!known && started_) {
        ++stats_.pings_sent;
        if (inst_.pings) inst_.pings->inc();
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + 8);
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, ad.endpoint, writer.take());
    }
}

void Bdn::handle_request(const Endpoint& from, const DiscoveryRequestView& view) {
    ++stats_.requests_received;
    if (inst_.requests) inst_.requests->inc();

    // Sampled requests take the owned slow path: the span rewrite mutates
    // the trace parent, which forces a re-encode anyway.
    if (tracing() && view.trace.sampled()) {
        handle_request(from, view.materialize());
        return;
    }

    // Credential policy on the borrowed view — a rejected, shed or
    // duplicate request never touches the heap.
    if (!config_.required_credential.empty() &&
        view.credential != config_.required_credential) {
        ++stats_.credential_rejections;
        return;
    }

    if (config_.ingest_queue_limit > 0) {
        admit_request(from, view);
        return;
    }

    // Legacy inline path: unbounded, serviced as fast as they arrive.
    send_ack(view.request_id, view.reply_to);
    if (!seen_requests_.insert(view.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        return;
    }
    if (federated()) {
        // Frame the borrowed region once; the gather owns it from here
        // (candidate collection outlives the receive buffer).
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + view.raw.size());
        writer.u8(wire::kMsgDiscoveryRequest);
        writer.raw(view.raw.data(), view.raw.size());
        start_gather(view.request_id, std::make_shared<const Bytes>(writer.take()));
        return;
    }
    inject_raw(view.raw, injection_targets());
}

void Bdn::handle_request(const Endpoint& from, DiscoveryRequest request) {
    // A sampled request opens the BDN's span immediately — receipt is the
    // moment the client's span hands over — and the trace parent is
    // rewritten so everything downstream (queue wait, injection) nests
    // under it. (Receipt was already counted by the view entry point.)
    std::uint64_t request_span = 0;
    if (tracing() && request.trace.sampled()) {
        request_span = spans_->begin(request.trace.trace_id, request.trace.parent_span,
                                     "bdn.request", name_, span_now());
        if (request_span != 0) request.trace.parent_span = request_span;
    }

    // Private BDNs "must also require the presentation of appropriate
    // credentials before [deciding] whether [to] disseminate the broker
    // discovery request" (§2.4).
    if (!config_.required_credential.empty() &&
        request.credential != config_.required_credential) {
        ++stats_.credential_rejections;
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    if (config_.ingest_queue_limit > 0) {
        admit_request(from, std::move(request), request_span);
        return;
    }

    // Legacy inline path: unbounded, serviced as fast as they arrive.
    send_ack(request.request_id, request.reply_to);

    // "Multiple requests forwarded to the same BDN would be idempotent"
    // (§3): only the first copy is disseminated.
    if (!seen_requests_.insert(request.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }
    if (federated()) {
        start_gather(request.request_id, frame_request(request));
    } else {
        inject(request, injection_targets());
    }
    if (request_span != 0) spans_->end(request_span, span_now());
}

std::shared_ptr<const Bytes> Bdn::frame_request(const DiscoveryRequest& request) {
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + request.measured_size());
    writer.u8(wire::kMsgDiscoveryRequest);
    request.encode(writer);
    return std::make_shared<const Bytes>(writer.take());
}

void Bdn::admit_request(const Endpoint& from, const DiscoveryRequestView& view) {
    // View twin of the owned admission path below: every shed decision
    // (duplicate, over-quota, overflow) runs on borrowed data; only an
    // actually-admitted request is materialized into the queue.
    if (seen_requests_.contains(view.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        send_ack(view.request_id, view.reply_to);
        return;
    }

    if (config_.per_source_rate > 0.0) {
        if (source_buckets_.size() >= kMaxTrackedSources &&
            !source_buckets_.contains(from.host)) {
            source_buckets_.clear();
        }
        auto [it, inserted] = source_buckets_.try_emplace(
            from.host, config_.per_source_rate, config_.per_source_burst);
        if (!it->second.try_consume(local_clock_.now())) {
            ++stats_.requests_shed_quota;
            if (inst_.shed_quota) inst_.shed_quota->inc();
            NARADA_DEBUG("bdn", "{}: shed request {} from host {} (over quota)", name_,
                         view.request_id.str(), from.host);
            return;
        }
    }

    if (ingest_queue_.size() >= config_.ingest_queue_limit) {
        ++stats_.requests_shed_overflow;
        if (inst_.shed_overflow) inst_.shed_overflow->inc();
        NARADA_DEBUG("bdn", "{}: shed request {} from host {} (queue full at {})", name_,
                     view.request_id.str(), from.host, ingest_queue_.size());
        return;
    }

    send_ack(view.request_id, view.reply_to);
    seen_requests_.insert(view.request_id);
    ingest_queue_.push_back({view.materialize(), 0});
    stats_.queue_depth_peak = std::max<std::uint64_t>(stats_.queue_depth_peak,
                                                      ingest_queue_.size());
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    if (drain_timer_ == kInvalidTimerHandle) {
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::admit_request(const Endpoint& from, DiscoveryRequest request,
                        std::uint64_t request_span) {
    // Shed order per policy: duplicates first (they cost nothing and are
    // still acked so a requester whose ack was lost learns we are alive),
    // then over-quota sources, then queue overflow. Advertisement renewals
    // never pass through here — handle_advertisement stays inline — so
    // leases cannot expire because of a request storm.
    if (seen_requests_.contains(request.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        send_ack(request.request_id, request.reply_to);
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    if (config_.per_source_rate > 0.0) {
        if (source_buckets_.size() >= kMaxTrackedSources &&
            !source_buckets_.contains(from.host)) {
            // Bounded memory under spoofed floods: forget everyone and
            // start over rather than growing without limit.
            source_buckets_.clear();
        }
        auto [it, inserted] = source_buckets_.try_emplace(
            from.host, config_.per_source_rate, config_.per_source_burst);
        if (!it->second.try_consume(local_clock_.now())) {
            ++stats_.requests_shed_quota;
            if (inst_.shed_quota) inst_.shed_quota->inc();
            NARADA_DEBUG("bdn", "{}: shed request {} from host {} (over quota)", name_,
                         request.request_id.str(), from.host);
            // No ack: the requester should fail over, not wait on us.
            if (request_span != 0) spans_->end(request_span, span_now());
            return;
        }
    }

    if (ingest_queue_.size() >= config_.ingest_queue_limit) {
        ++stats_.requests_shed_overflow;
        if (inst_.shed_overflow) inst_.shed_overflow->inc();
        NARADA_DEBUG("bdn", "{}: shed request {} from host {} (queue full at {})", name_,
                     request.request_id.str(), from.host, ingest_queue_.size());
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    send_ack(request.request_id, request.reply_to);
    seen_requests_.insert(request.request_id);
    ingest_queue_.push_back({std::move(request), request_span});
    stats_.queue_depth_peak = std::max<std::uint64_t>(stats_.queue_depth_peak,
                                                      ingest_queue_.size());
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    if (drain_timer_ == kInvalidTimerHandle) {
        // First element: service it after one service interval, modeling
        // the BDN's per-request processing cost.
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::drain_queue() {
    drain_timer_ = kInvalidTimerHandle;
    if (ingest_queue_.empty()) return;
    const QueuedRequest entry = ingest_queue_.front();
    ingest_queue_.pop_front();
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    ++stats_.requests_serviced;
    if (inst_.serviced) inst_.serviced->inc();
    if (federated()) {
        start_gather(entry.request.request_id, frame_request(entry.request));
    } else {
        inject(entry.request, injection_targets());
    }
    // The request span covers receipt through queue wait to injection start.
    if (entry.span != 0 && spans_ != nullptr) spans_->end(entry.span, span_now());
    if (!ingest_queue_.empty()) {
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::send_ack(const Uuid& request_id, const Endpoint& reply_to) {
    // "A BDN is expected to acknowledge the receipt of a discovery request
    // in a timely manner" (§3). Acks are re-sent even for duplicates so a
    // requester whose ack was lost learns the BDN is alive.
    wire::ByteWriter ack(transport_.acquire_buffer());
    ack.reserve(1 + 16);
    ack.u8(wire::kMsgDiscoveryAck);
    ack.uuid(request_id);
    transport_.send_datagram(local_, reply_to, ack.take());
    ++stats_.acks_sent;
    if (inst_.acks) inst_.acks->inc();
}

void Bdn::handle_pong(const Endpoint& from, wire::ByteReader& reader) {
    const TimeUs echoed = reader.i64();
    ++stats_.pongs_received;
    const auto it = endpoint_to_broker_.find(from);
    if (it == endpoint_to_broker_.end()) return;
    if (inst_.pongs) inst_.pongs->inc();
    const auto rit = registry_.find(it->second);
    if (rit == registry_.end()) return;
    rit->second.rtt = local_clock_.now() - echoed;
    rit->second.last_pong = local_clock_.now();
}

std::vector<InjectionCandidate> Bdn::local_candidates() const {
    const TimeUs now = local_clock_.now();
    std::vector<InjectionCandidate> out;
    out.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) {
        // Unswept expired entries never become injection points.
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) continue;
        out.push_back({id, rb.ad.endpoint, rb.rtt});
    }
    return out;
}

std::vector<Endpoint> Bdn::injection_targets() {
    return select_injection_targets(local_candidates(), config_.injection, rng_);
}

void Bdn::start_gather(const Uuid& request_id, std::shared_ptr<const Bytes> framed) {
    // Degradation first: a full gather table (request flood) or a colliding
    // id falls back to local-only injection — worse selection quality, but
    // the request still propagates.
    if (gathers_.size() >= kMaxGathers || gathers_.contains(request_id)) {
        inject_shared(std::move(framed),
                      select_injection_targets(local_candidates(), config_.injection, rng_));
        return;
    }
    ++stats_.gathers;
    GatherState& gather = gathers_[request_id];
    gather.framed = std::move(framed);
    gather.candidates = local_candidates();
    for (const Endpoint& member : ring_.members()) {
        if (member != local_) gather.pending.insert(member);
    }
    if (gather.pending.empty()) {
        finalize_gather(request_id, /*partial=*/false);
        return;
    }
    ShardQuery query{request_id, local_, config_.shard_reply_limit};
    for (const Endpoint& member : gather.pending) {
        ++stats_.shard_queries_sent;
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + query.measured_size());
        writer.u8(wire::kMsgShardQuery);
        query.encode(writer);
        transport_.send_datagram(local_, member, writer.take());
    }
    // Per-shard deadline: a dead or partitioned shard delays the request by
    // at most this long, then the gather finalizes with what arrived.
    gather.timer = scheduler_.schedule(config_.shard_deadline, [this, request_id] {
        ++stats_.gathers_partial;
        if (inst_.gathers_partial) inst_.gathers_partial->inc();
        finalize_gather(request_id, /*partial=*/true);
    });
}

void Bdn::finalize_gather(const Uuid& request_id, bool partial) {
    const auto it = gathers_.find(request_id);
    if (it == gathers_.end()) return;
    GatherState gather = std::move(it->second);
    gathers_.erase(it);
    if (!partial) scheduler_.cancel_timer(gather.timer);
    inject_shared(std::move(gather.framed),
                  select_injection_targets(std::move(gather.candidates), config_.injection,
                                           rng_));
}

void Bdn::handle_shard_query(const Endpoint& from, const ShardQuery& query) {
    ++stats_.shard_queries_received;
    std::vector<InjectionCandidate> mine = local_candidates();
    if (federated()) {
        // Only entries this shard owns: rebalance residue stays local so a
        // coordinator never hears about one broker from a shard that merely
        // used to own it (the current owners answer for it).
        std::erase_if(mine, [this](const InjectionCandidate& c) {
            return !ring_.owns(local_, c.broker_id);
        });
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const InjectionCandidate& a, const InjectionCandidate& b) {
                         const DurationUs ra =
                             a.rtt < 0 ? std::numeric_limits<DurationUs>::max() : a.rtt;
                         const DurationUs rb =
                             b.rtt < 0 ? std::numeric_limits<DurationUs>::max() : b.rtt;
                         return ra < rb;
                     });
    ShardReply reply;
    reply.query_id = query.query_id;
    // 64 = the codec's list-length bound; a larger ask still fits one reply.
    const std::size_t limit = std::min<std::size_t>({mine.size(), query.limit, 64});
    reply.entries.reserve(limit);
    for (std::size_t i = 0; i < limit; ++i) {
        reply.entries.push_back({mine[i].broker_id, mine[i].endpoint, mine[i].rtt});
    }
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + reply.measured_size());
    writer.u8(wire::kMsgShardReply);
    reply.encode(writer);
    transport_.send_datagram(local_, query.reply_to, writer.take());
    (void)from;
}

void Bdn::handle_shard_reply(const Endpoint& from, const ShardReply& reply) {
    const auto it = gathers_.find(reply.query_id);
    if (it == gathers_.end()) return;  // deadline already fired, or spoofed
    GatherState& gather = it->second;
    if (gather.pending.erase(from) == 0) return;  // unexpected or duplicate
    ++stats_.shard_replies_received;
    for (const ShardReply::Entry& e : reply.entries) {
        const bool known = std::any_of(
            gather.candidates.begin(), gather.candidates.end(),
            [&e](const InjectionCandidate& c) { return c.broker_id == e.broker_id; });
        if (!known) gather.candidates.push_back({e.broker_id, e.endpoint, e.rtt});
    }
    if (gather.pending.empty()) finalize_gather(reply.query_id, /*partial=*/false);
}

void Bdn::inject_shared(std::shared_ptr<const Bytes> framed,
                        const std::vector<Endpoint>& targets) {
    if (inst_.fanout) inst_.fanout->observe(static_cast<double>(targets.size()));
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        if (inst_.injections) inst_.injections->inc();
        scheduler_.schedule(at, [this, target, framed] {
            transport_.send_reliable(local_, target, *framed);
        });
        at += config_.injection_spacing;
    }
}

void Bdn::inject(const DiscoveryRequest& request, const std::vector<Endpoint>& targets) {
    if (inst_.fanout) inst_.fanout->observe(static_cast<double>(targets.size()));

    // A sampled request gets a `bdn.inject` span covering the whole spaced
    // fan-out; the forwarded copies carry it as their trace parent so
    // broker-side spans nest under the injection.
    const DiscoveryRequest* outgoing = &request;
    DiscoveryRequest forwarded;
    std::uint64_t inject_span = 0;
    if (tracing() && request.trace.sampled() && !targets.empty()) {
        inject_span = spans_->begin(request.trace.trace_id, request.trace.parent_span,
                                    "bdn.inject", name_, span_now());
        if (inject_span != 0) {
            forwarded = request;
            forwarded.trace.parent_span = inject_span;
            outgoing = &forwarded;
        }
    }

    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + outgoing->measured_size());
    writer.u8(wire::kMsgDiscoveryRequest);
    outgoing->encode(writer);
    // One shared encode for the whole fan-out; each spaced send copies it
    // into a fresh (pooled) payload at send time.
    const auto encoded = std::make_shared<const Bytes>(writer.take());
    // Injections are issued sequentially: each send costs the BDN its
    // per-injection processing time, so fanning out to N brokers takes
    // O(N * spacing) — the effect Figure 2 measures.
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        if (inst_.injections) inst_.injections->inc();
        scheduler_.schedule(at, [this, target, encoded] {
            transport_.send_reliable(local_, target, *encoded);
        });
        at += config_.injection_spacing;
    }
    if (inject_span != 0) {
        const DurationUs last_send = at > 0 ? at - config_.injection_spacing : 0;
        scheduler_.schedule(last_send,
                            [this, inject_span] { spans_->end(inject_span, span_now()); });
    }
}

void Bdn::inject_raw(std::span<const std::uint8_t> raw, const std::vector<Endpoint>& targets) {
    if (inst_.fanout) inst_.fanout->observe(static_cast<double>(targets.size()));
    // Unsampled fast path: nothing in the request was rewritten, so the
    // borrowed message region is re-framed verbatim (type octet + bytes)
    // into one pooled buffer shared by every spaced send — the decode ->
    // mutate -> re-encode round trip disappears.
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + raw.size());
    writer.u8(wire::kMsgDiscoveryRequest);
    writer.raw(raw.data(), raw.size());
    const auto encoded = std::make_shared<const Bytes>(writer.take());
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        if (inst_.injections) inst_.injections->inc();
        scheduler_.schedule(at, [this, target, encoded] {
            transport_.send_reliable(local_, target, *encoded);
        });
        at += config_.injection_spacing;
    }
}

void Bdn::set_peer_group(std::vector<Endpoint> members) {
    config_.peer_group = members;
    rebuild_ring(members);
    if (!federated()) return;
    // Rebalance: hand every live local entry to its owners under the new
    // ring. Entries this node no longer owns are NOT deleted — they keep
    // serving requests already in flight and age out when their leases
    // lapse, so a rebalance can only add coverage, never subtract it.
    const TimeUs now = local_clock_.now();
    std::map<Endpoint, std::vector<RegistrySyncEntry>> batches;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) continue;
        for (const Endpoint& owner : ring_.owners(id)) {
            if (owner != local_) batches[owner].push_back(make_sync_entry(rb));
        }
    }
    for (const auto& [peer, entries] : batches) {
        stats_.rebalance_handoffs += entries.size();
        push_entries(peer, entries);
    }
}

void Bdn::arm_anti_entropy_timer() {
    anti_entropy_timer_ = scheduler_.schedule(config_.anti_entropy_interval, [this] {
        run_anti_entropy();
        arm_anti_entropy_timer();
    });
}

void Bdn::run_anti_entropy() {
    if (!federated()) return;
    ++stats_.anti_entropy_rounds;
    // One digest per peer over the range both nodes own under the ring; a
    // fixed-size datagram regardless of registry size. Repairs only flow on
    // mismatch, so a converged group gossips O(peers) bytes per round.
    for (const Endpoint& peer : ring_.members()) {
        if (peer == local_) continue;
        const auto [fold, count] = registry_digest(&peer);
        const RegistryDigest msg{ring_hash_, fold, count};
        ++stats_.digests_sent;
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + RegistryDigest::wire_size());
        writer.u8(wire::kMsgRegistryDigest);
        msg.encode(writer);
        transport_.send_datagram(local_, peer, writer.take());
    }
}

void Bdn::handle_registry_digest(const Endpoint& from, const RegistryDigest& digest) {
    if (!federated()) return;
    if (digest.ring_hash != ring_hash_) {
        // Another ring epoch (the sender hasn't seen the membership change
        // yet, or we haven't): comparing ranges would always mismatch and
        // push-storm, so wait for the epochs to agree.
        ++stats_.digest_ring_mismatches;
        return;
    }
    const auto [fold, count] = registry_digest(&from);
    if (fold == digest.digest && count == digest.count) {
        ++stats_.digests_matched;
        return;
    }
    ++stats_.digest_mismatch_pushes;
    // Repair: push our unexpired half of the shared range; the peer's merge
    // clamps leases and resolves versions, and its own next digest round
    // pushes back whatever we were missing. Convergent in two rounds.
    const TimeUs now = local_clock_.now();
    std::vector<RegistrySyncEntry> entries;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) continue;
        if (!ring_.owns(local_, id) || !ring_.owns(from, id)) continue;
        entries.push_back(make_sync_entry(rb));
    }
    if (!entries.empty()) push_entries(from, entries);
}

void Bdn::refresh_distances() {
    // Soft-state registry: shed brokers that stopped answering pings, and
    // evict registrations whose advertisement lease lapsed unrenewed. The
    // lease sweep is NOT gated on this node's own ad_lease policy: merged
    // entries carry the lease the sender granted, and must lapse here even
    // if this node doesn't lease its direct registrations.
    const TimeUs now = local_clock_.now();
    for (auto it = registry_.begin(); it != registry_.end();) {
        bool evict = false;
        if (config_.registration_expiry > 0) {
            const TimeUs last_seen = std::max(it->second.last_pong, it->second.registered_at);
            if (now - last_seen > config_.registration_expiry) {
                ++stats_.registrations_expired;
                evict = true;
            }
        }
        if (!evict && it->second.lease_expires_at > 0 &&
            now >= it->second.lease_expires_at) {
            ++stats_.leases_expired;
            if (inst_.leases_expired) inst_.leases_expired->inc();
            NARADA_DEBUG("bdn", "{}: advertisement lease of {} lapsed", name_,
                         it->second.ad.broker_name);
            evict = true;
        }
        if (evict) {
            endpoint_to_broker_.erase(it->second.ad.endpoint);
            it = registry_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [id, rb] : registry_) {
        ++stats_.pings_sent;
        if (inst_.pings) inst_.pings->inc();
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + 8);
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, rb.ad.endpoint, writer.take());
    }
    refresh_timer_ =
        scheduler_.schedule(config_.ping_refresh_interval, [this] { refresh_distances(); });
}

}  // namespace narada::discovery
