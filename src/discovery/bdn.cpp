#include "discovery/bdn.hpp"

#include <algorithm>
#include <limits>

#include "broker/topic.hpp"
#include "common/log.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {

Bdn::Bdn(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
         const Clock& local_clock, config::BdnConfig config, std::string name)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      config_(std::move(config)),
      name_(name.empty() ? "bdn@" + local.str() : std::move(name)),
      rng_(0x62646Eull ^ (std::uint64_t{local.host} << 16) ^ local.port) {
    transport_.bind(local_, this);
}

Bdn::~Bdn() {
    scheduler_.cancel_timer(refresh_timer_);
    scheduler_.cancel_timer(drain_timer_);
    transport_.unbind(local_);
}

void Bdn::start() {
    if (started_) return;
    started_ = true;
    refresh_distances();
}

void Bdn::attach_to_broker(const Endpoint& broker, const Endpoint& client_endpoint) {
    attachment_ = std::make_unique<broker::PubSubClient>(scheduler_, transport_,
                                                         client_endpoint, /*credential=*/"");
    attachment_->on_event([this](const broker::Event& event) {
        if (event.topic != broker::kBrokerAdvertisementTopic) return;
        try {
            wire::ByteReader reader(event.payload);
            handle_advertisement(BrokerAdvertisement::decode(reader));
        } catch (const wire::WireError& e) {
            NARADA_DEBUG("bdn", "{}: bad advertisement event: {}", name_, e.what());
        }
    });
    attachment_->subscribe(std::string(broker::kBrokerAdvertisementTopic));
    attachment_->connect(broker);
}

void Bdn::announce_to(const Endpoint& broker) {
    wire::ByteWriter writer;
    writer.u8(wire::kMsgBdnAdvertisement);
    writer.u32(local_.host);
    writer.u16(local_.port);
    transport_.send_datagram(local_, broker, writer.take());
}

void Bdn::register_broker(BrokerAdvertisement ad) { handle_advertisement(ad); }

std::vector<Bdn::RegisteredBroker> Bdn::registry() const {
    std::vector<RegisteredBroker> out;
    out.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) out.push_back(rb);
    return out;
}

std::size_t Bdn::stale_count() const {
    if (config_.ad_lease <= 0) return 0;
    const TimeUs now = local_clock_.now();
    std::size_t stale = 0;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) ++stale;
    }
    return stale;
}

void Bdn::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgBrokerAdvertisement:
                handle_advertisement(BrokerAdvertisement::decode(reader));
                return;
            case wire::kMsgDiscoveryRequest:
                handle_request(from, DiscoveryRequest::decode(reader));
                return;
            case wire::kMsgPong:
                handle_pong(from, reader);
                return;
            default:
                NARADA_DEBUG("bdn", "{}: unhandled message type {}", name_, static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: malformed message from {}: {}", name_, from.str(), e.what());
    }
}

void Bdn::handle_advertisement(const BrokerAdvertisement& ad) {
    ++stats_.ads_received;
    // "this BDN may choose to store the advertisement or ignore it if the
    // BDN is interested in specific advertisements" (§2.3).
    if (!config_.accepted_realms.empty() &&
        std::find(config_.accepted_realms.begin(), config_.accepted_realms.end(), ad.realm) ==
            config_.accepted_realms.end()) {
        ++stats_.ads_filtered;
        return;
    }
    const bool known = registry_.contains(ad.broker_id);
    RegisteredBroker& rb = registry_[ad.broker_id];
    const DurationUs previous_rtt = known ? rb.rtt : -1;
    rb.ad = ad;
    rb.registered_at = local_clock_.now();
    rb.rtt = previous_rtt;
    // Renewable lease: the advertisement itself is the renewal message.
    // A broker that stops re-advertising (crashed, partitioned away) ages
    // out; a rejoining broker re-asserts itself with a fresh ad.
    if (config_.ad_lease > 0) {
        rb.lease_expires_at = local_clock_.now() + config_.ad_lease;
        if (known) ++stats_.leases_renewed;
    }
    endpoint_to_broker_[ad.endpoint] = ad.broker_id;
    // Measure the newcomer immediately so the injection strategy can use it.
    if (!known && started_) {
        ++stats_.pings_sent;
        wire::ByteWriter writer;
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, ad.endpoint, writer.take());
    }
}

void Bdn::handle_request(const Endpoint& from, const DiscoveryRequest& request) {
    ++stats_.requests_received;

    // Private BDNs "must also require the presentation of appropriate
    // credentials before [deciding] whether [to] disseminate the broker
    // discovery request" (§2.4).
    if (!config_.required_credential.empty() &&
        request.credential != config_.required_credential) {
        ++stats_.credential_rejections;
        return;
    }

    if (config_.ingest_queue_limit > 0) {
        admit_request(from, request);
        return;
    }

    // Legacy inline path: unbounded, serviced as fast as they arrive.
    send_ack(request);

    // "Multiple requests forwarded to the same BDN would be idempotent"
    // (§3): only the first copy is disseminated.
    if (!seen_requests_.insert(request.request_id)) {
        ++stats_.duplicate_requests;
        return;
    }
    inject(request, injection_targets());
}

void Bdn::admit_request(const Endpoint& from, const DiscoveryRequest& request) {
    // Shed order per policy: duplicates first (they cost nothing and are
    // still acked so a requester whose ack was lost learns we are alive),
    // then over-quota sources, then queue overflow. Advertisement renewals
    // never pass through here — handle_advertisement stays inline — so
    // leases cannot expire because of a request storm.
    if (seen_requests_.contains(request.request_id)) {
        ++stats_.duplicate_requests;
        send_ack(request);
        return;
    }

    if (config_.per_source_rate > 0.0) {
        if (source_buckets_.size() >= kMaxTrackedSources &&
            !source_buckets_.contains(from.host)) {
            // Bounded memory under spoofed floods: forget everyone and
            // start over rather than growing without limit.
            source_buckets_.clear();
        }
        auto [it, inserted] = source_buckets_.try_emplace(
            from.host, config_.per_source_rate, config_.per_source_burst);
        if (!it->second.try_consume(local_clock_.now())) {
            ++stats_.requests_shed_quota;
            NARADA_DEBUG("bdn", "{}: shed request {} from host {} (over quota)", name_,
                         request.request_id.str(), from.host);
            // No ack: the requester should fail over, not wait on us.
            return;
        }
    }

    if (ingest_queue_.size() >= config_.ingest_queue_limit) {
        ++stats_.requests_shed_overflow;
        NARADA_DEBUG("bdn", "{}: shed request {} from host {} (queue full at {})", name_,
                     request.request_id.str(), from.host, ingest_queue_.size());
        return;
    }

    send_ack(request);
    seen_requests_.insert(request.request_id);
    ingest_queue_.push_back(request);
    stats_.queue_depth_peak = std::max<std::uint64_t>(stats_.queue_depth_peak,
                                                      ingest_queue_.size());
    if (drain_timer_ == kInvalidTimerHandle) {
        // First element: service it after one service interval, modeling
        // the BDN's per-request processing cost.
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::drain_queue() {
    drain_timer_ = kInvalidTimerHandle;
    if (ingest_queue_.empty()) return;
    const DiscoveryRequest request = ingest_queue_.front();
    ingest_queue_.pop_front();
    ++stats_.requests_serviced;
    inject(request, injection_targets());
    if (!ingest_queue_.empty()) {
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::send_ack(const DiscoveryRequest& request) {
    // "A BDN is expected to acknowledge the receipt of a discovery request
    // in a timely manner" (§3). Acks are re-sent even for duplicates so a
    // requester whose ack was lost learns the BDN is alive.
    wire::ByteWriter ack;
    ack.u8(wire::kMsgDiscoveryAck);
    ack.uuid(request.request_id);
    transport_.send_datagram(local_, request.reply_to, ack.take());
    ++stats_.acks_sent;
}

void Bdn::handle_pong(const Endpoint& from, wire::ByteReader& reader) {
    const TimeUs echoed = reader.i64();
    ++stats_.pongs_received;
    const auto it = endpoint_to_broker_.find(from);
    if (it == endpoint_to_broker_.end()) return;
    const auto rit = registry_.find(it->second);
    if (rit == registry_.end()) return;
    rit->second.rtt = local_clock_.now() - echoed;
    rit->second.last_pong = local_clock_.now();
}

std::vector<Endpoint> Bdn::injection_targets() {
    std::vector<const RegisteredBroker*> brokers;
    brokers.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) brokers.push_back(&rb);
    if (brokers.empty()) return {};

    // Order by measured RTT; unmeasured brokers sort last in registration
    // order (stable), so the strategy still works before the first pongs.
    std::stable_sort(brokers.begin(), brokers.end(),
                     [](const RegisteredBroker* a, const RegisteredBroker* b) {
                         const DurationUs ra =
                             a->rtt < 0 ? std::numeric_limits<DurationUs>::max() : a->rtt;
                         const DurationUs rb =
                             b->rtt < 0 ? std::numeric_limits<DurationUs>::max() : b->rtt;
                         return ra < rb;
                     });

    std::vector<Endpoint> targets;
    switch (config_.injection) {
        case config::InjectionStrategy::kClosestAndFarthest:
            // "the broker discovery request would be issued simultaneously
            // to the brokers that are closest and farthest from the BDN"
            // (§4).
            targets.push_back(brokers.front()->ad.endpoint);
            if (brokers.size() > 1) targets.push_back(brokers.back()->ad.endpoint);
            break;
        case config::InjectionStrategy::kClosestOnly:
            targets.push_back(brokers.front()->ad.endpoint);
            break;
        case config::InjectionStrategy::kRandom:
            targets.push_back(
                brokers[rng_.bounded(brokers.size())]->ad.endpoint);
            break;
        case config::InjectionStrategy::kAll:
            // The unconnected topology's O(N) distribution (§9, Figure 2).
            for (const RegisteredBroker* rb : brokers) targets.push_back(rb->ad.endpoint);
            break;
    }
    return targets;
}

void Bdn::inject(const DiscoveryRequest& request, const std::vector<Endpoint>& targets) {
    wire::ByteWriter writer;
    writer.u8(wire::kMsgDiscoveryRequest);
    request.encode(writer);
    const Bytes encoded = writer.take();
    // Injections are issued sequentially: each send costs the BDN its
    // per-injection processing time, so fanning out to N brokers takes
    // O(N * spacing) — the effect Figure 2 measures.
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        scheduler_.schedule(at, [this, target, encoded] {
            transport_.send_reliable(local_, target, encoded);
        });
        at += config_.injection_spacing;
    }
}

void Bdn::refresh_distances() {
    // Soft-state registry: shed brokers that stopped answering pings, and
    // evict registrations whose advertisement lease lapsed unrenewed.
    const TimeUs now = local_clock_.now();
    for (auto it = registry_.begin(); it != registry_.end();) {
        bool evict = false;
        if (config_.registration_expiry > 0) {
            const TimeUs last_seen = std::max(it->second.last_pong, it->second.registered_at);
            if (now - last_seen > config_.registration_expiry) {
                ++stats_.registrations_expired;
                evict = true;
            }
        }
        if (!evict && config_.ad_lease > 0 && it->second.lease_expires_at > 0 &&
            now >= it->second.lease_expires_at) {
            ++stats_.leases_expired;
            NARADA_DEBUG("bdn", "{}: advertisement lease of {} lapsed", name_,
                         it->second.ad.broker_name);
            evict = true;
        }
        if (evict) {
            endpoint_to_broker_.erase(it->second.ad.endpoint);
            it = registry_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [id, rb] : registry_) {
        ++stats_.pings_sent;
        wire::ByteWriter writer;
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, rb.ad.endpoint, writer.take());
    }
    refresh_timer_ =
        scheduler_.schedule(config_.ping_refresh_interval, [this] { refresh_distances(); });
}

}  // namespace narada::discovery
