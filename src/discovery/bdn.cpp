#include "discovery/bdn.hpp"

#include <algorithm>
#include <limits>

#include "broker/topic.hpp"
#include "common/log.hpp"
#include "obs/json.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {

Bdn::Bdn(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
         const Clock& local_clock, config::BdnConfig config, std::string name)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      config_(std::move(config)),
      name_(name.empty() ? "bdn@" + local.str() : std::move(name)),
      rng_(0x62646Eull ^ (std::uint64_t{local.host} << 16) ^ local.port) {
    transport_.bind(local_, this);
}

Bdn::~Bdn() {
    scheduler_.cancel_timer(refresh_timer_);
    scheduler_.cancel_timer(drain_timer_);
    scheduler_.cancel_timer(sync_timer_);
    transport_.unbind(local_);
}

void Bdn::start() {
    if (started_) return;
    started_ = true;
    refresh_distances();
    if (config_.registry_sync_interval > 0 && !config_.sync_peers.empty()) {
        arm_sync_timer();
    }
}

void Bdn::arm_sync_timer() {
    sync_timer_ = scheduler_.schedule(config_.registry_sync_interval, [this] {
        sync_registry();
        arm_sync_timer();
    });
}

void Bdn::attach_to_broker(const Endpoint& broker, const Endpoint& client_endpoint) {
    attachment_ = std::make_unique<broker::PubSubClient>(scheduler_, transport_,
                                                         client_endpoint, /*credential=*/"");
    attachment_->on_event([this](const broker::Event& event) {
        if (event.topic != broker::kBrokerAdvertisementTopic) return;
        try {
            wire::ByteReader reader(event.payload);
            handle_advertisement(BrokerAdvertisement::decode(reader));
        } catch (const wire::WireError& e) {
            NARADA_DEBUG("bdn", "{}: bad advertisement event: {}", name_, e.what());
        }
    });
    attachment_->subscribe(std::string(broker::kBrokerAdvertisementTopic));
    attachment_->connect(broker);
}

void Bdn::announce_to(const Endpoint& broker) {
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + 4 + 2);
    writer.u8(wire::kMsgBdnAdvertisement);
    writer.u32(local_.host);
    writer.u16(local_.port);
    transport_.send_datagram(local_, broker, writer.take());
}

void Bdn::register_broker(BrokerAdvertisement ad) { handle_advertisement(ad); }

transport::RudpChannel& Bdn::rudp_channel(const Endpoint& peer) {
    auto it = rudp_channels_.find(peer);
    if (it == rudp_channels_.end()) {
        auto channel = std::make_unique<transport::RudpChannel>(
            scheduler_, transport_, local_clock_, local_, peer, transport::RudpOptions{},
            name_.empty() ? "bdn-sync" : name_ + "-sync");
        channel->on_deliver(
            [this, peer](Bytes payload) { handle_bulk_payload(peer, payload); });
        if (metrics_ != nullptr) {
            channel->set_observability(metrics_, name_ + "->" + peer.str());
        }
        it = rudp_channels_.emplace(peer, std::move(channel)).first;
    }
    return *it->second;
}

const transport::RudpChannel* Bdn::sync_channel(const Endpoint& peer) const {
    const auto it = rudp_channels_.find(peer);
    return it != rudp_channels_.end() ? it->second.get() : nullptr;
}

void Bdn::sync_registry() {
    if (registry_.empty() || config_.sync_peers.empty()) return;
    // One snapshot, encoded once; each peer's lane gets its own copy (the
    // channel references the payload in place until fully acked).
    std::size_t body = 1 + 4;
    for (const auto& [id, rb] : registry_) body += rb.ad.measured_size();
    wire::ByteWriter writer;
    writer.reserve(body);
    writer.u8(wire::kMsgBdnRegistrySync);
    writer.u32(static_cast<std::uint32_t>(registry_.size()));
    for (const auto& [id, rb] : registry_) rb.ad.encode(writer);
    const Bytes snapshot = writer.take();

    for (const Endpoint& peer : config_.sync_peers) {
        if (peer == local_) continue;
        transport::RudpChannel& channel = rudp_channel(peer);
        if (channel.state() == transport::RudpChannel::State::kAbandoned) {
            // The lane gave up on this peer (dead long enough to abandon);
            // a periodic push is exactly the moment to try a fresh start.
            channel.reset();
        }
        if (channel.send_bulk(snapshot)) {
            ++stats_.sync_pushes;
        } else {
            ++stats_.sync_push_failures;
        }
    }
}

void Bdn::handle_bulk_payload(const Endpoint& peer, const Bytes& payload) {
    try {
        wire::ByteReader reader(payload);
        const std::uint8_t type = reader.u8();
        if (type != wire::kMsgBdnRegistrySync) {
            NARADA_DEBUG("bdn", "{}: unexpected bulk payload type {} from {}", name_,
                         static_cast<int>(type), peer.str());
            return;
        }
        const std::uint32_t count = reader.u32();
        ++stats_.sync_received;
        for (std::uint32_t i = 0; i < count; ++i) {
            const BrokerAdvertisement ad = BrokerAdvertisement::decode(reader);
            const bool fresh = !registry_.contains(ad.broker_id);
            // Same path as a direct advertisement: realm filter, lease
            // renewal, newcomer ping.
            handle_advertisement(ad);
            if (fresh && registry_.contains(ad.broker_id)) ++stats_.sync_brokers_learned;
        }
        NARADA_DEBUG("bdn", "{}: registry sync from {}: {} brokers", name_, peer.str(), count);
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: bad registry sync from {}: {}", name_, peer.str(), e.what());
    }
}

void Bdn::set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                            const timesvc::UtcSource* utc) {
    metrics_ = metrics;
    spans_ = spans;
    utc_ = utc;
    inst_ = {};
    for (auto& [peer, channel] : rudp_channels_) {
        channel->set_observability(metrics, name_ + "->" + peer.str());
    }
    if (metrics == nullptr) return;
    inst_.requests = &metrics->counter("bdn_requests_received", name_);
    inst_.duplicates = &metrics->counter("bdn_duplicate_requests", name_);
    inst_.acks = &metrics->counter("bdn_acks_sent", name_);
    inst_.injections = &metrics->counter("bdn_injections", name_);
    inst_.shed_quota = &metrics->counter("bdn_requests_shed_quota", name_);
    inst_.shed_overflow = &metrics->counter("bdn_requests_shed_overflow", name_);
    inst_.serviced = &metrics->counter("bdn_requests_serviced", name_);
    inst_.ads = &metrics->counter("bdn_ads_received", name_);
    inst_.pings = &metrics->counter("bdn_pings_sent", name_);
    inst_.pongs = &metrics->counter("bdn_pongs_received", name_);
    inst_.leases_expired = &metrics->counter("bdn_leases_expired", name_);
    inst_.queue_depth = &metrics->gauge("bdn_queue_depth", name_);
    inst_.fanout =
        &metrics->histogram("bdn_injection_fanout", name_, {1, 2, 4, 8, 16, 32, 64});
}

std::string Bdn::debug_snapshot() const {
    const TimeUs now = local_clock_.now();
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "bdn")
        .field("name", name_)
        .field("started", started_)
        .field("queue_depth", static_cast<std::uint64_t>(ingest_queue_.size()));
    w.key("stats").begin_object()
        .field("ads_received", stats_.ads_received)
        .field("ads_filtered", stats_.ads_filtered)
        .field("requests_received", stats_.requests_received)
        .field("duplicate_requests", stats_.duplicate_requests)
        .field("acks_sent", stats_.acks_sent)
        .field("injections", stats_.injections)
        .field("credential_rejections", stats_.credential_rejections)
        .field("requests_shed_quota", stats_.requests_shed_quota)
        .field("requests_shed_overflow", stats_.requests_shed_overflow)
        .field("requests_serviced", stats_.requests_serviced)
        .field("queue_depth_peak", stats_.queue_depth_peak)
        .field("leases_renewed", stats_.leases_renewed)
        .field("leases_expired", stats_.leases_expired)
        .field("registrations_expired", stats_.registrations_expired)
        .field("sync_pushes", stats_.sync_pushes)
        .field("sync_push_failures", stats_.sync_push_failures)
        .field("sync_received", stats_.sync_received)
        .field("sync_brokers_learned", stats_.sync_brokers_learned)
        .end_object();
    if (!rudp_channels_.empty()) {
        w.key("sync_channels").begin_array();
        for (const auto& [peer, channel] : rudp_channels_) {
            w.begin_object()
                .field("peer", peer.str())
                .field("state", transport::to_string(channel->state()))
                .field("in_flight", static_cast<std::uint64_t>(channel->in_flight()))
                .field("srtt_ms", to_ms(channel->srtt()), 3)
                .end_object();
        }
        w.end_array();
    }
    w.key("registry").begin_array();
    for (const auto& [id, rb] : registry_) {
        w.begin_object()
            .field("broker", rb.ad.broker_name)
            .field("rtt_ms", rb.rtt < 0 ? -1.0 : to_ms(rb.rtt), 3)
            .field("age_ms", to_ms(now - rb.registered_at), 3)
            .field("last_pong_age_ms",
                   rb.last_pong > 0 ? to_ms(now - rb.last_pong) : -1.0, 3)
            .field("lease_remaining_ms",
                   rb.lease_expires_at > 0 ? to_ms(rb.lease_expires_at - now) : -1.0, 3)
            .end_object();
    }
    w.end_array().end_object();
    return w.take();
}

std::vector<Bdn::RegisteredBroker> Bdn::registry() const {
    std::vector<RegisteredBroker> out;
    out.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) out.push_back(rb);
    return out;
}

std::size_t Bdn::stale_count() const {
    if (config_.ad_lease <= 0) return 0;
    const TimeUs now = local_clock_.now();
    std::size_t stale = 0;
    for (const auto& [id, rb] : registry_) {
        if (rb.lease_expires_at > 0 && now >= rb.lease_expires_at) ++stale;
    }
    return stale;
}

void Bdn::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgBrokerAdvertisement:
                handle_advertisement(BrokerAdvertisementView::peek(reader));
                return;
            case wire::kMsgDiscoveryRequest:
                handle_request(from, DiscoveryRequestView::peek(reader));
                return;
            case wire::kMsgPong:
                handle_pong(from, reader);
                return;
            case wire::kMsgRudpData:
            case wire::kMsgRudpAck:
                // Bulk-lane frames (registry sync). Unknown senders only get
                // a channel while the map has room, so spoofed frames cannot
                // grow BDN memory without bound.
                if (!rudp_channels_.contains(from) &&
                    rudp_channels_.size() >= kMaxSyncChannels) {
                    NARADA_DEBUG("bdn", "{}: dropping RUDP frame from {} (channel cap)",
                                 name_, from.str());
                    return;
                }
                rudp_channel(from).handle_frame(type, reader);
                return;
            default:
                NARADA_DEBUG("bdn", "{}: unhandled message type {}", name_, static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("bdn", "{}: malformed message from {}: {}", name_, from.str(), e.what());
    }
}

bool Bdn::realm_accepted(std::string_view realm) const {
    // "this BDN may choose to store the advertisement or ignore it if the
    // BDN is interested in specific advertisements" (§2.3).
    return config_.accepted_realms.empty() ||
           std::find(config_.accepted_realms.begin(), config_.accepted_realms.end(), realm) !=
               config_.accepted_realms.end();
}

void Bdn::handle_advertisement(const BrokerAdvertisement& ad) {
    ++stats_.ads_received;
    if (inst_.ads) inst_.ads->inc();
    if (!realm_accepted(ad.realm)) {
        ++stats_.ads_filtered;
        return;
    }
    register_advertisement(ad);
}

void Bdn::handle_advertisement(const BrokerAdvertisementView& view) {
    ++stats_.ads_received;
    if (inst_.ads) inst_.ads->inc();
    // Realm filter on the borrowed view: a filtered advertisement is
    // rejected without materializing its strings.
    if (!realm_accepted(view.realm)) {
        ++stats_.ads_filtered;
        return;
    }
    register_advertisement(view.materialize());
}

void Bdn::register_advertisement(const BrokerAdvertisement& ad) {
    const bool known = registry_.contains(ad.broker_id);
    RegisteredBroker& rb = registry_[ad.broker_id];
    const DurationUs previous_rtt = known ? rb.rtt : -1;
    rb.ad = ad;
    rb.registered_at = local_clock_.now();
    rb.rtt = previous_rtt;
    // Renewable lease: the advertisement itself is the renewal message.
    // A broker that stops re-advertising (crashed, partitioned away) ages
    // out; a rejoining broker re-asserts itself with a fresh ad.
    if (config_.ad_lease > 0) {
        rb.lease_expires_at = local_clock_.now() + config_.ad_lease;
        if (known) ++stats_.leases_renewed;
    }
    endpoint_to_broker_[ad.endpoint] = ad.broker_id;
    // Measure the newcomer immediately so the injection strategy can use it.
    if (!known && started_) {
        ++stats_.pings_sent;
        if (inst_.pings) inst_.pings->inc();
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + 8);
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, ad.endpoint, writer.take());
    }
}

void Bdn::handle_request(const Endpoint& from, const DiscoveryRequestView& view) {
    ++stats_.requests_received;
    if (inst_.requests) inst_.requests->inc();

    // Sampled requests take the owned slow path: the span rewrite mutates
    // the trace parent, which forces a re-encode anyway.
    if (tracing() && view.trace.sampled()) {
        handle_request(from, view.materialize());
        return;
    }

    // Credential policy on the borrowed view — a rejected, shed or
    // duplicate request never touches the heap.
    if (!config_.required_credential.empty() &&
        view.credential != config_.required_credential) {
        ++stats_.credential_rejections;
        return;
    }

    if (config_.ingest_queue_limit > 0) {
        admit_request(from, view);
        return;
    }

    // Legacy inline path: unbounded, serviced as fast as they arrive.
    send_ack(view.request_id, view.reply_to);
    if (!seen_requests_.insert(view.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        return;
    }
    inject_raw(view.raw, injection_targets());
}

void Bdn::handle_request(const Endpoint& from, DiscoveryRequest request) {
    // A sampled request opens the BDN's span immediately — receipt is the
    // moment the client's span hands over — and the trace parent is
    // rewritten so everything downstream (queue wait, injection) nests
    // under it. (Receipt was already counted by the view entry point.)
    std::uint64_t request_span = 0;
    if (tracing() && request.trace.sampled()) {
        request_span = spans_->begin(request.trace.trace_id, request.trace.parent_span,
                                     "bdn.request", name_, span_now());
        if (request_span != 0) request.trace.parent_span = request_span;
    }

    // Private BDNs "must also require the presentation of appropriate
    // credentials before [deciding] whether [to] disseminate the broker
    // discovery request" (§2.4).
    if (!config_.required_credential.empty() &&
        request.credential != config_.required_credential) {
        ++stats_.credential_rejections;
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    if (config_.ingest_queue_limit > 0) {
        admit_request(from, std::move(request), request_span);
        return;
    }

    // Legacy inline path: unbounded, serviced as fast as they arrive.
    send_ack(request.request_id, request.reply_to);

    // "Multiple requests forwarded to the same BDN would be idempotent"
    // (§3): only the first copy is disseminated.
    if (!seen_requests_.insert(request.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }
    inject(request, injection_targets());
    if (request_span != 0) spans_->end(request_span, span_now());
}

void Bdn::admit_request(const Endpoint& from, const DiscoveryRequestView& view) {
    // View twin of the owned admission path below: every shed decision
    // (duplicate, over-quota, overflow) runs on borrowed data; only an
    // actually-admitted request is materialized into the queue.
    if (seen_requests_.contains(view.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        send_ack(view.request_id, view.reply_to);
        return;
    }

    if (config_.per_source_rate > 0.0) {
        if (source_buckets_.size() >= kMaxTrackedSources &&
            !source_buckets_.contains(from.host)) {
            source_buckets_.clear();
        }
        auto [it, inserted] = source_buckets_.try_emplace(
            from.host, config_.per_source_rate, config_.per_source_burst);
        if (!it->second.try_consume(local_clock_.now())) {
            ++stats_.requests_shed_quota;
            if (inst_.shed_quota) inst_.shed_quota->inc();
            NARADA_DEBUG("bdn", "{}: shed request {} from host {} (over quota)", name_,
                         view.request_id.str(), from.host);
            return;
        }
    }

    if (ingest_queue_.size() >= config_.ingest_queue_limit) {
        ++stats_.requests_shed_overflow;
        if (inst_.shed_overflow) inst_.shed_overflow->inc();
        NARADA_DEBUG("bdn", "{}: shed request {} from host {} (queue full at {})", name_,
                     view.request_id.str(), from.host, ingest_queue_.size());
        return;
    }

    send_ack(view.request_id, view.reply_to);
    seen_requests_.insert(view.request_id);
    ingest_queue_.push_back({view.materialize(), 0});
    stats_.queue_depth_peak = std::max<std::uint64_t>(stats_.queue_depth_peak,
                                                      ingest_queue_.size());
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    if (drain_timer_ == kInvalidTimerHandle) {
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::admit_request(const Endpoint& from, DiscoveryRequest request,
                        std::uint64_t request_span) {
    // Shed order per policy: duplicates first (they cost nothing and are
    // still acked so a requester whose ack was lost learns we are alive),
    // then over-quota sources, then queue overflow. Advertisement renewals
    // never pass through here — handle_advertisement stays inline — so
    // leases cannot expire because of a request storm.
    if (seen_requests_.contains(request.request_id)) {
        ++stats_.duplicate_requests;
        if (inst_.duplicates) inst_.duplicates->inc();
        send_ack(request.request_id, request.reply_to);
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    if (config_.per_source_rate > 0.0) {
        if (source_buckets_.size() >= kMaxTrackedSources &&
            !source_buckets_.contains(from.host)) {
            // Bounded memory under spoofed floods: forget everyone and
            // start over rather than growing without limit.
            source_buckets_.clear();
        }
        auto [it, inserted] = source_buckets_.try_emplace(
            from.host, config_.per_source_rate, config_.per_source_burst);
        if (!it->second.try_consume(local_clock_.now())) {
            ++stats_.requests_shed_quota;
            if (inst_.shed_quota) inst_.shed_quota->inc();
            NARADA_DEBUG("bdn", "{}: shed request {} from host {} (over quota)", name_,
                         request.request_id.str(), from.host);
            // No ack: the requester should fail over, not wait on us.
            if (request_span != 0) spans_->end(request_span, span_now());
            return;
        }
    }

    if (ingest_queue_.size() >= config_.ingest_queue_limit) {
        ++stats_.requests_shed_overflow;
        if (inst_.shed_overflow) inst_.shed_overflow->inc();
        NARADA_DEBUG("bdn", "{}: shed request {} from host {} (queue full at {})", name_,
                     request.request_id.str(), from.host, ingest_queue_.size());
        if (request_span != 0) spans_->end(request_span, span_now());
        return;
    }

    send_ack(request.request_id, request.reply_to);
    seen_requests_.insert(request.request_id);
    ingest_queue_.push_back({std::move(request), request_span});
    stats_.queue_depth_peak = std::max<std::uint64_t>(stats_.queue_depth_peak,
                                                      ingest_queue_.size());
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    if (drain_timer_ == kInvalidTimerHandle) {
        // First element: service it after one service interval, modeling
        // the BDN's per-request processing cost.
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::drain_queue() {
    drain_timer_ = kInvalidTimerHandle;
    if (ingest_queue_.empty()) return;
    const QueuedRequest entry = ingest_queue_.front();
    ingest_queue_.pop_front();
    if (inst_.queue_depth) inst_.queue_depth->set(static_cast<double>(ingest_queue_.size()));
    ++stats_.requests_serviced;
    if (inst_.serviced) inst_.serviced->inc();
    inject(entry.request, injection_targets());
    // The request span covers receipt through queue wait to injection start.
    if (entry.span != 0 && spans_ != nullptr) spans_->end(entry.span, span_now());
    if (!ingest_queue_.empty()) {
        drain_timer_ =
            scheduler_.schedule(config_.request_service_cost, [this] { drain_queue(); });
    }
}

void Bdn::send_ack(const Uuid& request_id, const Endpoint& reply_to) {
    // "A BDN is expected to acknowledge the receipt of a discovery request
    // in a timely manner" (§3). Acks are re-sent even for duplicates so a
    // requester whose ack was lost learns the BDN is alive.
    wire::ByteWriter ack(transport_.acquire_buffer());
    ack.reserve(1 + 16);
    ack.u8(wire::kMsgDiscoveryAck);
    ack.uuid(request_id);
    transport_.send_datagram(local_, reply_to, ack.take());
    ++stats_.acks_sent;
    if (inst_.acks) inst_.acks->inc();
}

void Bdn::handle_pong(const Endpoint& from, wire::ByteReader& reader) {
    const TimeUs echoed = reader.i64();
    ++stats_.pongs_received;
    const auto it = endpoint_to_broker_.find(from);
    if (it == endpoint_to_broker_.end()) return;
    if (inst_.pongs) inst_.pongs->inc();
    const auto rit = registry_.find(it->second);
    if (rit == registry_.end()) return;
    rit->second.rtt = local_clock_.now() - echoed;
    rit->second.last_pong = local_clock_.now();
}

std::vector<Endpoint> Bdn::injection_targets() {
    std::vector<const RegisteredBroker*> brokers;
    brokers.reserve(registry_.size());
    for (const auto& [id, rb] : registry_) brokers.push_back(&rb);
    if (brokers.empty()) return {};

    // Order by measured RTT; unmeasured brokers sort last in registration
    // order (stable), so the strategy still works before the first pongs.
    std::stable_sort(brokers.begin(), brokers.end(),
                     [](const RegisteredBroker* a, const RegisteredBroker* b) {
                         const DurationUs ra =
                             a->rtt < 0 ? std::numeric_limits<DurationUs>::max() : a->rtt;
                         const DurationUs rb =
                             b->rtt < 0 ? std::numeric_limits<DurationUs>::max() : b->rtt;
                         return ra < rb;
                     });

    std::vector<Endpoint> targets;
    switch (config_.injection) {
        case config::InjectionStrategy::kClosestAndFarthest:
            // "the broker discovery request would be issued simultaneously
            // to the brokers that are closest and farthest from the BDN"
            // (§4).
            targets.push_back(brokers.front()->ad.endpoint);
            if (brokers.size() > 1) targets.push_back(brokers.back()->ad.endpoint);
            break;
        case config::InjectionStrategy::kClosestOnly:
            targets.push_back(brokers.front()->ad.endpoint);
            break;
        case config::InjectionStrategy::kRandom:
            targets.push_back(
                brokers[rng_.bounded(brokers.size())]->ad.endpoint);
            break;
        case config::InjectionStrategy::kAll:
            // The unconnected topology's O(N) distribution (§9, Figure 2).
            for (const RegisteredBroker* rb : brokers) targets.push_back(rb->ad.endpoint);
            break;
    }
    return targets;
}

void Bdn::inject(const DiscoveryRequest& request, const std::vector<Endpoint>& targets) {
    if (inst_.fanout) inst_.fanout->observe(static_cast<double>(targets.size()));

    // A sampled request gets a `bdn.inject` span covering the whole spaced
    // fan-out; the forwarded copies carry it as their trace parent so
    // broker-side spans nest under the injection.
    const DiscoveryRequest* outgoing = &request;
    DiscoveryRequest forwarded;
    std::uint64_t inject_span = 0;
    if (tracing() && request.trace.sampled() && !targets.empty()) {
        inject_span = spans_->begin(request.trace.trace_id, request.trace.parent_span,
                                    "bdn.inject", name_, span_now());
        if (inject_span != 0) {
            forwarded = request;
            forwarded.trace.parent_span = inject_span;
            outgoing = &forwarded;
        }
    }

    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + outgoing->measured_size());
    writer.u8(wire::kMsgDiscoveryRequest);
    outgoing->encode(writer);
    // One shared encode for the whole fan-out; each spaced send copies it
    // into a fresh (pooled) payload at send time.
    const auto encoded = std::make_shared<const Bytes>(writer.take());
    // Injections are issued sequentially: each send costs the BDN its
    // per-injection processing time, so fanning out to N brokers takes
    // O(N * spacing) — the effect Figure 2 measures.
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        if (inst_.injections) inst_.injections->inc();
        scheduler_.schedule(at, [this, target, encoded] {
            transport_.send_reliable(local_, target, *encoded);
        });
        at += config_.injection_spacing;
    }
    if (inject_span != 0) {
        const DurationUs last_send = at > 0 ? at - config_.injection_spacing : 0;
        scheduler_.schedule(last_send,
                            [this, inject_span] { spans_->end(inject_span, span_now()); });
    }
}

void Bdn::inject_raw(std::span<const std::uint8_t> raw, const std::vector<Endpoint>& targets) {
    if (inst_.fanout) inst_.fanout->observe(static_cast<double>(targets.size()));
    // Unsampled fast path: nothing in the request was rewritten, so the
    // borrowed message region is re-framed verbatim (type octet + bytes)
    // into one pooled buffer shared by every spaced send — the decode ->
    // mutate -> re-encode round trip disappears.
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + raw.size());
    writer.u8(wire::kMsgDiscoveryRequest);
    writer.raw(raw.data(), raw.size());
    const auto encoded = std::make_shared<const Bytes>(writer.take());
    DurationUs at = 0;
    for (const Endpoint& target : targets) {
        ++stats_.injections;
        if (inst_.injections) inst_.injections->inc();
        scheduler_.schedule(at, [this, target, encoded] {
            transport_.send_reliable(local_, target, *encoded);
        });
        at += config_.injection_spacing;
    }
}

void Bdn::refresh_distances() {
    // Soft-state registry: shed brokers that stopped answering pings, and
    // evict registrations whose advertisement lease lapsed unrenewed.
    const TimeUs now = local_clock_.now();
    for (auto it = registry_.begin(); it != registry_.end();) {
        bool evict = false;
        if (config_.registration_expiry > 0) {
            const TimeUs last_seen = std::max(it->second.last_pong, it->second.registered_at);
            if (now - last_seen > config_.registration_expiry) {
                ++stats_.registrations_expired;
                evict = true;
            }
        }
        if (!evict && config_.ad_lease > 0 && it->second.lease_expires_at > 0 &&
            now >= it->second.lease_expires_at) {
            ++stats_.leases_expired;
            if (inst_.leases_expired) inst_.leases_expired->inc();
            NARADA_DEBUG("bdn", "{}: advertisement lease of {} lapsed", name_,
                         it->second.ad.broker_name);
            evict = true;
        }
        if (evict) {
            endpoint_to_broker_.erase(it->second.ad.endpoint);
            it = registry_.erase(it);
        } else {
            ++it;
        }
    }
    for (const auto& [id, rb] : registry_) {
        ++stats_.pings_sent;
        if (inst_.pings) inst_.pings->inc();
        wire::ByteWriter writer(transport_.acquire_buffer());
        writer.reserve(1 + 8);
        writer.u8(wire::kMsgPing);
        writer.i64(local_clock_.now());
        transport_.send_datagram(local_, rb.ad.endpoint, writer.take());
    }
    refresh_timer_ =
        scheduler_.schedule(config_.ping_refresh_interval, [this] { refresh_distances(); });
}

}  // namespace narada::discovery
