// Consistent-hash ring partitioning the BDN advertisement registry.
//
// The paper's BDNs each hold a complete, independent registry — workable
// for 2005's handful of brokers, not for millions of advertising brokers.
// A ShardRing partitions advertisements across a BDN peer group by
// consistent hashing on the broker id: every group member projects
// `vnodes` virtual points onto a 64-bit ring, and an advertisement is
// owned by the first `replication` distinct members encountered walking
// clockwise from the id's own point. Properties the federation layer
// relies on:
//
//   * deterministic — two BDNs given the same member list (in any order)
//     build bit-identical rings, so ownership never needs negotiation;
//   * minimal movement — adding or removing one member only remaps the
//     ranges adjacent to its virtual points (~1/N of the keyspace), which
//     bounds rebalance traffic;
//   * replication-aware — `owners()` returns R distinct members, so each
//     advertisement survives R-1 simultaneous BDN crashes.
//
// The ring is a value type: rebuilding on peer-group change is cheap
// (N * vnodes sort) and the old ring stays valid for requests in flight.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "common/uuid.hpp"

namespace narada::discovery {

/// Deterministic 64-bit finalizer (splitmix64). Shared by the ring's point
/// placement and the registry digest so replicas agree byte-for-byte.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

class ShardRing {
public:
    struct Options {
        /// Virtual points per member; more points = smoother distribution
        /// at the cost of a larger (still tiny) sorted table.
        std::uint32_t vnodes = 64;
        /// Desired owners per advertisement. Clamped to the member count:
        /// R > |group| degrades to "every member owns everything".
        std::uint32_t replication = 1;
    };

    ShardRing() = default;
    ShardRing(std::vector<Endpoint> members, Options options);

    [[nodiscard]] const std::vector<Endpoint>& members() const { return members_; }
    [[nodiscard]] std::size_t size() const { return members_.size(); }
    [[nodiscard]] bool empty() const { return members_.empty(); }
    /// Effective replication factor (requested, clamped to the group size).
    [[nodiscard]] std::uint32_t replication() const { return effective_replication_; }

    /// The ring position of a broker id.
    [[nodiscard]] static std::uint64_t point(const Uuid& broker_id) {
        return mix64(broker_id.hi() ^ mix64(broker_id.lo()));
    }

    /// The `replication()` distinct members owning `broker_id`, in ring
    /// order starting from the id's successor point. Empty ring => empty.
    [[nodiscard]] std::vector<Endpoint> owners(const Uuid& broker_id) const;

    /// True when `member` is among owners(broker_id). O(R log vnodes),
    /// allocation-free.
    [[nodiscard]] bool owns(const Endpoint& member, const Uuid& broker_id) const;

private:
    struct VirtualNode {
        std::uint64_t point = 0;
        std::uint32_t member = 0;  ///< index into members_
    };

    /// Walk clockwise from `start`, invoking `visit(member_index)` for each
    /// distinct member until `visit` returns false or R members were seen.
    template <typename Visit>
    void walk_owners(std::uint64_t start, Visit&& visit) const;

    std::vector<Endpoint> members_;       ///< sorted, deduplicated
    std::vector<VirtualNode> ring_;       ///< sorted by point
    std::uint32_t effective_replication_ = 0;
};

}  // namespace narada::discovery
