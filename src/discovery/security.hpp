// Secured discovery datapath: session-key establishment and the
// kMsgSecureEnvelope wire format.
//
// The paper's security model (§9.1) signs and encrypts every discovery
// message with RSA — Figure 14 shows why that cannot run at line rate.
// SecurityContext makes secured discovery a fast path instead: the first
// datagram to a peer carries an RSA handshake (certificate chain, an
// RSA-wrapped AES-128 session key, and an RSA signature binding the key to
// both identities), and every later datagram rides the cached session —
// AES-CBC for confidentiality, AES-CMAC for integrity — at symmetric-cipher
// cost. Sessions live in bounded LRU caches (crypto/session_key_cache.hpp);
// eviction or a rekey interval simply forces the next datagram to carry a
// fresh handshake.
//
// Wire format (after the kMsgSecureEnvelope type octet):
//
//   u8 subtype
//   subtype 1 — handshake (establishes the session AND carries a payload):
//     str signer            sender identity
//     str recipient         intended recipient identity
//     u16 chain_len         signer certificate chain, leaf first
//       chain_len x Certificate   (0 = receiver must already know the key)
//     blob wrapped_key      RSA(recipient_pub, 16-byte session key)
//     blob key_sig          RSA-sign(signer_priv, key || signer || recipient)
//     u8 sealed             1 = sealed part follows, 0 = signed part
//     <part>                under the fresh session
//   subtype 2 — session-sealed:
//     str signer, u64 key_id, <sealed part>
//   subtype 3 — session-signed:
//     str signer, u64 key_id, <signed part>
//
//   sealed part: iv[16] raw, blob ciphertext, tag[16] raw
//   signed part: blob payload (cleartext), tag[16] raw
//
// The CMAC tag covers every header byte after the type octet plus the
// ciphertext/payload, so the subtype, signer, key id and IV are all
// authenticated — a valid tag replayed under a different signer name fails.
// Replay of an *unmodified* datagram is not prevented here: the discovery
// layer's request dedup window (request_id LRU) is the replay bound, the
// same way it bounds transport-level retransmits.
//
// Threat-model boundary (DESIGN.md "Secured datapath"): the secured edges
// are the untrusted perimeter — client->BDN requests, broker->BDN
// advertisements, client->broker direct requests. Responses and intra-plane
// traffic (BDN->broker injection, BDN<->BDN gossip) stay plain; they flow
// between provisioned infrastructure nodes inside the deployment's own
// network, which the paper's model already trusts.
//
// Single-threaded like the components that own it (home-shard delivery
// contract); the steady-state seal/open paths are allocation-free — scratch
// buffers and session schedules are reused, and the per-drain memo lets a
// burst of datagrams from one peer skip even the LRU lookup.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "config/node_config.hpp"
#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"
#include "crypto/rsa.hpp"
#include "crypto/session_key_cache.hpp"
#include "obs/metrics.hpp"
#include "wire/codec.hpp"

namespace narada::discovery {

/// Result of open_datagram(). `payload` and `signer` are borrowed views —
/// valid until the next open/seal call or until the input buffer is
/// recycled, whichever comes first; handlers that keep them must copy.
struct SecureOpenResult {
    std::span<const std::uint8_t> payload{};
    std::string_view signer{};
    crypto::EnvelopeError error = crypto::EnvelopeError::kOk;
    bool handshake = false;  ///< a new session was established by this datagram

    [[nodiscard]] bool ok() const { return error == crypto::EnvelopeError::kOk; }
};

class SecurityContext {
public:
    /// `chain` is this node's own certificate chain (leaf first), sent in
    /// handshakes so peers can authenticate us; `roots` anchors peer chain
    /// verification. The clock must be the component's injected clock so
    /// certificate expiry and rekey behave deterministically in sim runs.
    SecurityContext(std::string identity, crypto::RsaKeyPair keys,
                    std::vector<crypto::Certificate> chain,
                    std::vector<crypto::Certificate> roots,
                    const config::SecurityConfig& config, const Clock& clock, Rng& rng);

    [[nodiscard]] const std::string& identity() const { return identity_; }
    [[nodiscard]] const config::SecurityConfig& config() const { return config_; }

    // --- peer directory --------------------------------------------------
    // Sealing to a peer needs its public key up front (the handshake wraps
    // the session key under it). Keys arrive either pre-provisioned or via
    // a verified certificate chain.

    /// Verify `chain` (leaf first) against the trusted roots at the current
    /// clock and, on success, remember subject -> public key. Returns the
    /// verification status; anything but kOk registers nothing.
    crypto::CertStatus add_peer_chain(const std::vector<crypto::Certificate>& chain);
    /// Trust `key` for `peer` without a certificate (static provisioning).
    void add_peer_key(std::string_view peer, const crypto::RsaPublicKey& key);
    [[nodiscard]] const crypto::RsaPublicKey* peer_key(std::string_view peer) const;

    /// Remember which identity answers at `endpoint`, so senders that
    /// address by endpoint (the discovery client) can find the seal target.
    void map_endpoint(const Endpoint& endpoint, std::string_view peer);
    [[nodiscard]] std::string_view identity_at(const Endpoint& endpoint) const;

    // --- datapath --------------------------------------------------------

    /// Wrap `payload` for `peer` into `out` (type octet included): a
    /// handshake datagram when no live session exists (or `force_handshake`
    /// — used on retransmit so a lost handshake never wedges the sender), a
    /// session datagram otherwise. Returns false — writing nothing — when
    /// security is off or the peer's public key is unknown; the caller
    /// falls back to a plain datagram.
    bool seal_datagram(std::span<const std::uint8_t> payload, std::string_view peer,
                       wire::ByteWriter& out, bool force_handshake = false);

    /// Inverse of seal_datagram. `reader` must be positioned just after the
    /// kMsgSecureEnvelope type octet. Never throws; malformed, forged or
    /// sessionless input comes back as a typed EnvelopeError and a counter.
    SecureOpenResult open_datagram(wire::ByteReader& reader);

    // --- introspection ---------------------------------------------------

    struct Stats {
        std::uint64_t seals = 0;             ///< datagrams sealed (any subtype)
        std::uint64_t opens = 0;             ///< datagrams opened successfully
        std::uint64_t handshakes_sent = 0;
        std::uint64_t handshakes_accepted = 0;
        std::uint64_t session_hits = 0;      ///< seal/open rode a cached session
        std::uint64_t session_misses = 0;    ///< no usable session (handshake/kNoSession)
        std::uint64_t memo_hits = 0;         ///< drain-batch memo short-circuits
        std::uint64_t verify_failures = 0;   ///< bad tag / bad chain / bad key sig
        std::uint64_t open_errors = 0;       ///< any open_datagram error
        std::uint64_t seal_refusals = 0;     ///< seal_datagram returned false
        std::uint64_t rekeys = 0;            ///< handshakes forced by session age
    };

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] crypto::SessionKeyCache& tx_sessions() { return tx_sessions_; }
    [[nodiscard]] crypto::SessionKeyCache& rx_sessions() { return rx_sessions_; }

    void set_observability(obs::MetricsRegistry* metrics, const std::string& node);

private:
    struct SealedPart {
        std::span<const std::uint8_t> header;  ///< subtype octet .. end of IV
    };

    /// Write the sealed/signed part for `payload` under `session`;
    /// `header_start` is the writer offset of the subtype octet (the MAC
    /// covers header bytes from there through the IV).
    void write_part(const crypto::SessionKeyCache::Session& session,
                    std::span<const std::uint8_t> payload, wire::ByteWriter& out,
                    std::size_t header_start, bool sealed);
    /// Parse + authenticate a part. `header_start` is the reader position
    /// of the subtype octet. Fills result payload or error.
    void read_part(const crypto::SessionKeyCache::Session& session, wire::ByteReader& reader,
                   std::size_t header_start, bool sealed, SecureOpenResult& result);

    [[nodiscard]] bool session_expired_tx(const crypto::SessionKeyCache::Session& s) const;
    [[nodiscard]] bool session_expired_rx(const crypto::SessionKeyCache::Session& s) const;

    void count_open_error(crypto::EnvelopeError error);

    std::string identity_;
    crypto::RsaKeyPair keys_;
    std::vector<crypto::Certificate> chain_;
    std::vector<crypto::Certificate> roots_;
    config::SecurityConfig config_;
    const Clock& clock_;
    Rng& rng_;

    std::unordered_map<std::string, crypto::RsaPublicKey> peer_keys_;
    std::unordered_map<Endpoint, std::string> endpoint_identities_;

    crypto::SessionKeyCache tx_sessions_;
    crypto::SessionKeyCache rx_sessions_;

    // Drain-batch memo: consecutive datagrams from the same session (the
    // common shape inside one recvmmsg drain) skip the LRU lookup. The
    // pointer is only trusted when the stored key id matches, and is
    // dropped on any rx-cache mutation.
    crypto::SessionKeyCache::Session* memo_rx_session_ = nullptr;
    std::uint64_t memo_rx_key_id_ = 0;

    // Reused scratch (capacity-stable after warmup; steady state allocates
    // nothing).
    Bytes scratch_cipher_;  ///< seal-side ciphertext staging
    Bytes scratch_plain_;   ///< open-side plaintext output

    Stats stats_;

    struct Instruments {
        obs::Counter* seals = nullptr;
        obs::Counter* opens = nullptr;
        obs::Counter* handshakes = nullptr;
        obs::Counter* cache_hits = nullptr;
        obs::Counter* cache_misses = nullptr;
        obs::Counter* verify_failures = nullptr;
        obs::Counter* open_errors = nullptr;
    } inst_;
};

}  // namespace narada::discovery
