#include "discovery/managed_connection.hpp"

#include "common/log.hpp"
#include "obs/json.hpp"
#include "wire/codec.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

BackoffOptions resolve_backoff(const ManagedConnectionOptions& options) {
    BackoffOptions b = options.rediscovery_backoff;
    if (b.initial == 0) b.initial = options.heartbeat_interval;
    return b;
}

}  // namespace

ManagedConnection::ManagedConnection(Scheduler& scheduler, transport::Transport& transport,
                                     const Endpoint& heartbeat_endpoint,
                                     const Clock& local_clock, broker::PubSubClient& pubsub,
                                     DiscoveryClient& discovery, Options options)
    : scheduler_(scheduler),
      transport_(transport),
      local_(heartbeat_endpoint),
      local_clock_(local_clock),
      pubsub_(pubsub),
      discovery_(discovery),
      options_(options),
      rng_(0x6D676364ull ^ (std::uint64_t{heartbeat_endpoint.host} << 16) ^
           heartbeat_endpoint.port),
      backoff_(resolve_backoff(options)) {
    transport_.bind(local_, this);
}

ManagedConnection::~ManagedConnection() {
    scheduler_.cancel_timer(heartbeat_timer_);
    scheduler_.cancel_timer(retry_timer_);
    transport_.unbind(local_);
}

void ManagedConnection::start() { run_discovery(); }

void ManagedConnection::run_discovery() {
    if (discovering_) return;
    if (discovery_.busy()) {
        // The discovery client may be shared (another ManagedConnection, a
        // RejoinSupervisor, or the application itself) and has a run in
        // flight; discover() would throw std::logic_error from inside our
        // failover path. Defer and retry with backoff instead.
        ++stats_.busy_deferrals;
        if (inst_.busy_deferrals) inst_.busy_deferrals->inc();
        NARADA_DEBUG("managed", "{}: discovery client busy, deferring rediscovery",
                     local_.str());
        schedule_retry();
        return;
    }
    discovering_ = true;
    discovery_.discover([this](const DiscoveryReport& report) {
        discovering_ = false;
        if (!report.success) {
            ++stats_.failed_discoveries;
            if (inst_.failed_discoveries) inst_.failed_discoveries->inc();
            NARADA_WARN("managed", "{}: discovery failed, retrying", local_.str());
            schedule_retry();
            return;
        }
        backoff_.reset();
        attach(report.selected_candidate()->response.endpoint);
    });
}

void ManagedConnection::schedule_retry() {
    if (retry_timer_ != kInvalidTimerHandle) return;
    const DurationUs delay = backoff_.next(rng_);
    retry_timer_ = scheduler_.schedule(delay, [this] {
        retry_timer_ = kInvalidTimerHandle;
        run_discovery();
    });
}

void ManagedConnection::attach(const Endpoint& broker) {
    current_broker_ = broker;
    missed_ = 0;
    pong_pending_ = false;
    // PubSubClient replays its standing subscriptions on welcome, so the
    // application's filters survive the migration transparently.
    pubsub_.connect(broker);
    if (on_attached_) on_attached_(broker);
    scheduler_.cancel_timer(heartbeat_timer_);
    heartbeat_timer_ =
        scheduler_.schedule(options_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void ManagedConnection::heartbeat_tick() {
    if (!current_broker_) return;
    if (pong_pending_) {
        // The previous heartbeat went unanswered.
        ++missed_;
        if (missed_ >= options_.max_missed) {
            declare_dead();
            return;
        }
    }
    pong_pending_ = true;
    ++stats_.heartbeats_sent;
    if (inst_.heartbeats_sent) inst_.heartbeats_sent->inc();
    wire::ByteWriter writer;
    writer.u8(wire::kMsgPing);
    writer.i64(local_clock_.now());
    transport_.send_datagram(local_, *current_broker_, writer.take());
    heartbeat_timer_ =
        scheduler_.schedule(options_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void ManagedConnection::declare_dead() {
    const Endpoint dead = *current_broker_;
    NARADA_INFO("managed", "{}: broker {} unresponsive, rediscovering", local_.str(),
                dead.str());
    current_broker_.reset();
    pong_pending_ = false;
    missed_ = 0;
    if (on_broker_lost_) on_broker_lost_(dead);
    ++stats_.failovers;
    if (inst_.failovers) inst_.failovers->inc();
    run_discovery();
}

void ManagedConnection::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        if (reader.u8() != wire::kMsgPong) return;
        if (!current_broker_ || from != *current_broker_) return;
        ++stats_.heartbeats_answered;
        if (inst_.heartbeats_answered) inst_.heartbeats_answered->inc();
        pong_pending_ = false;
        missed_ = 0;
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("managed", "{}: malformed pong from {}: {}", local_.str(), from.str(),
                     e.what());
    }
}

void ManagedConnection::set_observability(obs::MetricsRegistry* metrics) {
    inst_ = {};
    if (metrics == nullptr) return;
    const std::string node = local_.str();
    inst_.heartbeats_sent = &metrics->counter("conn_heartbeats_sent", node);
    inst_.heartbeats_answered = &metrics->counter("conn_heartbeats_answered", node);
    inst_.failovers = &metrics->counter("conn_failovers", node);
    inst_.failed_discoveries = &metrics->counter("conn_failed_discoveries", node);
    inst_.busy_deferrals = &metrics->counter("conn_busy_deferrals", node);
}

std::string ManagedConnection::debug_snapshot() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "managed_connection")
        .field("endpoint", local_.str())
        .field("attached", attached());
    if (current_broker_) {
        w.field("current_broker", current_broker_->str());
    } else {
        w.key("current_broker").value_null();
    }
    w.field("missed_heartbeats", static_cast<std::uint64_t>(missed_))
        .field("discovering", discovering_)
        .field("backoff_us", static_cast<std::int64_t>(backoff_.current()));
    w.key("stats").begin_object()
        .field("heartbeats_sent", stats_.heartbeats_sent)
        .field("heartbeats_answered", stats_.heartbeats_answered)
        .field("failovers", stats_.failovers)
        .field("failed_discoveries", stats_.failed_discoveries)
        .field("busy_deferrals", stats_.busy_deferrals)
        .end_object();
    w.end_object();
    return w.take();
}

}  // namespace narada::discovery
