// The discovery client — the requesting node's side of the protocol.
//
// Implements §3 (issuing requests), §6 (processing responses: NTP-based
// delay estimation, weighted shortlisting into a target set, UDP ping
// refinement, final selection) and §7 (fault tolerance: retransmission
// after inactivity, BDN failover, multicast fallback, and recovery through
// the cached last target set when no BDN is reachable).
//
// The run is asynchronous: discover() starts the state machine and the
// callback receives a DiscoveryReport once a broker is selected or every
// fallback is exhausted. Phase timings in the report feed the paper's
// Figure 2/9/11 breakdowns directly.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "config/node_config.hpp"
#include "discovery/messages.hpp"
#include "discovery/scoring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "timesvc/ntp.hpp"
#include "transport/rudp_channel.hpp"
#include "transport/transport.hpp"

namespace narada::discovery {

class SecurityContext;

/// Everything a discovery run produced, including the phase breakdown the
/// paper's figures report.
struct DiscoveryReport {
    bool success = false;
    Uuid request_id;

    /// Every response received (deduplicated per broker), annotated.
    std::vector<Candidate> candidates;
    /// Indices into `candidates`: the shortlisted target set, best first.
    std::vector<std::size_t> target_set;
    /// Index into `candidates` of the selected broker.
    std::optional<std::size_t> selected;

    // --- phase timings on the requester's local clock -----------------------
    DurationUs time_to_ack = -1;             ///< request send -> BDN ack
    DurationUs time_to_first_response = -1;  ///< request send -> first response
    DurationUs collection_duration = 0;      ///< request send -> collection end
    DurationUs scoring_duration = 0;         ///< shortlist computation
    DurationUs ping_duration = 0;            ///< ping fan-out -> selection
    DurationUs total_duration = 0;

    std::uint32_t retransmits = 0;
    bool used_multicast = false;
    bool used_cached_targets = false;
    /// Collection closed early because responses quiesced (adaptive window).
    bool adaptive_close = false;

    [[nodiscard]] const Candidate* selected_candidate() const {
        return selected ? &candidates[*selected] : nullptr;
    }
};

class DiscoveryClient final : public transport::MessageHandler {
public:
    using Callback = std::function<void(const DiscoveryReport&)>;

    /// Lifetime counters across every run of this client.
    struct Stats {
        std::uint64_t breaker_skips = 0;    ///< sends diverted off an open BDN
        std::uint64_t forced_probes = 0;    ///< all BDNs open; probed anyway
        std::uint64_t adaptive_closes = 0;  ///< windows closed by quiescence
        /// The BDN a run was waiting on had its breaker open mid-window and
        /// the request was immediately re-issued to another BDN, with
        /// whatever remained of the response deadline.
        std::uint64_t midflight_failovers = 0;
    };

    DiscoveryClient(Scheduler& scheduler, transport::Transport& transport,
                    const Endpoint& local, const Clock& local_clock,
                    const timesvc::UtcSource& utc, config::DiscoveryConfig config,
                    std::string hostname, std::string realm);
    ~DiscoveryClient() override;

    DiscoveryClient(const DiscoveryClient&) = delete;
    DiscoveryClient& operator=(const DiscoveryClient&) = delete;

    /// Begin a discovery run. Throws std::logic_error if one is in flight.
    void discover(Callback callback);

    [[nodiscard]] bool busy() const { return phase_ != Phase::kIdle; }
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }
    [[nodiscard]] const config::DiscoveryConfig& config() const { return config_; }
    config::DiscoveryConfig& mutable_config() { return config_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    /// The circuit breaker guarding `config().bdns[index]`.
    [[nodiscard]] const CircuitBreaker& bdn_breaker(std::size_t index) {
        ensure_breakers();
        return breakers_.at(index);
    }

    /// Wire the client into an observability plane (either pointer may be
    /// null). `trace_sample_rate` is the per-run probability of tracing;
    /// the client makes the sampling decision and mints the trace id, so
    /// every downstream hop only checks for a nil id.
    void set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                           double trace_sample_rate);
    /// Attach the secured-datapath context (nullable = security off).
    /// Requests to any BDN (or cached-target broker) whose identity is
    /// mapped on the context travel sealed; a retransmission forces a fresh
    /// handshake so a lost handshake datagram cannot wedge the run.
    /// Multicast fallback stays plain — there is no single recipient to
    /// seal toward. Not owned; must outlive the client.
    void set_security(SecurityContext* security) { security_ = security; }
    [[nodiscard]] SecurityContext* security() const { return security_; }
    /// The trace context of the current (or most recent) run; nil trace id
    /// when the run was not sampled.
    [[nodiscard]] const obs::TraceContext& trace_context() const { return trace_; }
    /// JSON introspection dump: run phase, counters, and per-BDN circuit
    /// breaker states (the breaker primitive itself stays obs-free; this
    /// is where its state surfaces).
    [[nodiscard]] std::string debug_snapshot() const;

    /// "Every node keeps track of its last target set of brokers" (§7).
    /// Persisting this across restarts enables BDN-less recovery.
    [[nodiscard]] const std::vector<Endpoint>& cached_target_set() const {
        return cached_targets_;
    }
    void set_cached_target_set(std::vector<Endpoint> targets) {
        cached_targets_ = std::move(targets);
    }

    // MessageHandler.
    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    enum class Phase { kIdle, kCollecting, kPinging };

    void send_request();
    void send_to_bdn(const Bytes& encoded);
    void multicast_request(const Bytes& encoded);
    [[nodiscard]] Bytes encode_request() const;
    /// Send `encoded` to `target`, sealed when security is on and the
    /// target's identity is known, plain otherwise.
    void send_datagram_secured(const Endpoint& target, const Bytes& encoded,
                               bool force_handshake);

    void on_ack(const Endpoint& from, wire::ByteReader& reader);
    void on_response(wire::ByteReader& reader);
    void on_pong(const Endpoint& from, wire::ByteReader& reader);

    /// The bulk lane from `peer` (a broker streaming an oversized
    /// response), created on first RUDP frame. Reassembled payloads are
    /// framed messages and re-enter on_datagram for normal dispatch.
    transport::RudpChannel& rudp_channel(const Endpoint& peer);

    /// (Re)build one breaker per configured BDN; called lazily so tests
    /// that mutate `config().bdns` after construction still get breakers.
    void ensure_breakers();
    [[nodiscard]] bool breakers_enabled() const {
        return config_.breaker_failure_threshold > 0 && !config_.bdns.empty();
    }
    /// The last BDN we sent to never acked: charge its breaker. When the
    /// breaker ends up open and `allow_failover` holds, the run fails over
    /// to another BDN immediately — the window timer keeps running, so the
    /// new BDN only gets the remaining deadline. Returns true when a
    /// failover request was sent (the caller's own retransmit is moot).
    bool record_bdn_failure(bool allow_failover);

    void on_retransmit_timer();
    void on_quiesce_tick();
    void end_collection();
    /// Last-resort paths when the collection window closed empty (§7).
    void run_fallback();
    void start_pings();
    void maybe_finish_pings();
    void finish();
    void fail();
    /// End every span of the current run (collect/ping/root) at UTC now.
    void close_run_spans();

    void cancel_timers();

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    const timesvc::UtcSource& utc_;
    config::DiscoveryConfig config_;
    std::string hostname_;
    std::string realm_;
    Rng rng_;

    Phase phase_ = Phase::kIdle;
    Callback callback_;
    DiscoveryReport report_;
    /// UUIDs valid for the current run (the fallback issues a fresh one so
    /// brokers that deduplicated the original still answer).
    std::set<Uuid> active_request_ids_;
    /// The UUID outgoing requests carry right now (the newest issued).
    Uuid current_request_id_;
    std::size_t bdn_attempt_ = 0;
    bool fallback_done_ = false;

    /// One breaker per entry of config_.bdns (see ensure_breakers()).
    std::vector<CircuitBreaker> breakers_;
    std::size_t last_bdn_ = 0;   ///< index the last request went to
    bool ack_pending_ = false;   ///< a send awaits its BDN ack
    /// Mid-flight failovers this run; bounded by the BDN count so an
    /// all-dead group cannot ping-pong the request forever.
    std::size_t midflight_failovers_run_ = 0;
    Stats stats_;

    // Adaptive window state (config_.adaptive_window).
    std::uint32_t silent_ticks_ = 0;
    std::size_t responses_at_last_tick_ = 0;

    TimeUs run_start_ = 0;         ///< local clock at request send
    TimeUs collection_end_ = 0;    ///< local clock at collection end
    TimeUs ping_start_ = 0;

    /// Pongs still expected per target-set candidate index.
    std::vector<std::uint32_t> pending_pongs_;

    TimerHandle retransmit_timer_ = kInvalidTimerHandle;
    TimerHandle window_timer_ = kInvalidTimerHandle;
    TimerHandle ping_timer_ = kInvalidTimerHandle;
    TimerHandle quiesce_timer_ = kInvalidTimerHandle;

    std::vector<Endpoint> cached_targets_;

    // Inbound bulk lanes, one per sending broker (spoof-bounded).
    std::map<Endpoint, std::unique_ptr<transport::RudpChannel>> rudp_channels_;
    static constexpr std::size_t kMaxRudpPeers = 16;

    SecurityContext* security_ = nullptr;  ///< secured datapath (null = off)
    /// Set by the retransmit paths: the next send re-handshakes, healing a
    /// lost handshake (the receiver otherwise has no session and drops us).
    bool force_handshake_next_ = false;

    // Observability (optional; null = off).
    obs::SpanRecorder* spans_ = nullptr;
    double trace_sample_rate_ = 0.0;
    obs::TraceContext trace_;       ///< current run's context (nil = unsampled)
    std::uint64_t root_span_ = 0;   ///< client.discover
    std::uint64_t collect_span_ = 0;
    std::uint64_t ping_span_ = 0;
    struct Instruments {
        obs::Counter* discoveries = nullptr;
        obs::Counter* successes = nullptr;
        obs::Counter* failures = nullptr;
        obs::Counter* responses = nullptr;
        obs::Counter* retransmits = nullptr;
        obs::Counter* breaker_skips = nullptr;
        obs::Counter* forced_probes = nullptr;
        obs::Counter* breaker_opens = nullptr;
        obs::Counter* midflight_failovers = nullptr;
        obs::Histogram* selection_ms = nullptr;
        obs::Histogram* first_response_ms = nullptr;
    } inst_;
};

}  // namespace narada::discovery
