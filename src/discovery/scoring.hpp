// Broker scoring and target-set shortlisting.
//
// Implements the paper's §9 weighting pseudo-code verbatim:
//
//     weight += (freemem / totalmem) * WEIGHTAGE_FREE_TO_TOTAL_MEMORY;
//     weight += (totalmem / (1024 * 1024)) * WEIGHTAGE_TOTAL_MEMORY;
//     weight -= numlinks * WEIGHTAGE_NUM_LINKS;
//
// extended with the CPU-load and delay terms the paper lists as "OTHER
// factors [that] may be similarly added". Shortlisting then sorts by
// weight and takes the first size(T) responses (§9: size(T) <= size(N)).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "config/node_config.hpp"
#include "discovery/messages.hpp"

namespace narada::discovery {

/// A response annotated with the client's local measurements.
struct Candidate {
    DiscoveryResponse response;
    /// One-way delay estimated from NTP timestamps (§6); may include the
    /// 1-20 ms clock error.
    DurationUs estimated_delay = 0;
    /// Composite weight (higher is better).
    double score = 0.0;
    /// Measured ping round-trip, if this candidate made the target set and
    /// answered; -1 otherwise.
    DurationUs ping_rtt = -1;
};

/// The §9 weight for a single response.
double score_response(const DiscoveryResponse& response, DurationUs estimated_delay,
                      const config::MetricWeights& weights);

/// Score all candidates in place and return indices of the target set:
/// the `target_set_size` best-scored candidates, best first.
std::vector<std::size_t> shortlist(std::vector<Candidate>& candidates,
                                   const config::MetricWeights& weights,
                                   std::size_t target_set_size);

/// A broker as an injection-point candidate: the BDN-side view (id,
/// endpoint, measured RTT). In a federated peer group these come from the
/// local registry *and* from peer shards' gather replies, so the strategy
/// logic lives here rather than inside the Bdn.
struct InjectionCandidate {
    Uuid broker_id;
    Endpoint endpoint;
    DurationUs rtt = -1;  ///< -1 = unmeasured (sorts after every measured RTT)
};

/// Apply a §4 injection strategy to `candidates`: stable-sort by RTT
/// (unmeasured last, preserving arrival order) and pick the strategy's
/// endpoints — closest+farthest, closest, one at random, or all.
std::vector<Endpoint> select_injection_targets(std::vector<InjectionCandidate> candidates,
                                               config::InjectionStrategy strategy, Rng& rng);

}  // namespace narada::discovery
