// Discovery protocol messages (paper §2.2, §3, §5.1).
//
// Three messages make up the discovery conversation:
//   * BrokerAdvertisement — a broker registering itself with BDNs;
//   * DiscoveryRequest    — a node asking for the nearest available broker;
//   * DiscoveryResponse   — a broker answering with its NTP timestamp,
//     process information and usage metrics.
// Each struct carries its own encode/decode against the wire codec; the
// message-type octet is written by the sender (see wire/msg_types.hpp).
//
// Hot-path support: each message also has
//   * measured_size() — the exact encoded byte count, so senders can
//     reserve once (measure-then-encode, at most one allocation);
//   * a borrowed View (peek()) — string fields become string_views into
//     the receive buffer and the whole message region is captured as a raw
//     span, so BDNs and brokers that only inspect-and-reforward a message
//     (dedup, credential/realm policy, verbatim re-injection) touch the
//     heap zero times. A View is valid only while the receive buffer
//     lives; materialize() produces the owned struct when a component
//     must retain or mutate the message (see DESIGN.md borrowing rules).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/load_model.hpp"
#include "common/types.hpp"
#include "common/uuid.hpp"
#include "obs/trace.hpp"
#include "wire/codec.hpp"

namespace narada::discovery {

/// "the advertisement contains information regarding the hostname,
/// transport protocols supported and communication ports, NB logical
/// address and, if provided, geographical and institutional information"
/// (§2.2).
struct BrokerAdvertisement {
    Uuid broker_id;                       ///< NB logical address
    std::string broker_name;
    std::string hostname;
    Endpoint endpoint;                    ///< connect here
    std::vector<std::string> protocols;   ///< e.g. {"tcp", "udp"}
    std::string realm;                    ///< network realm of the broker
    std::string geo_location;             ///< optional
    std::string institution;              ///< optional

    void encode(wire::ByteWriter& writer) const;
    static BrokerAdvertisement decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const BrokerAdvertisement&, const BrokerAdvertisement&) = default;
};

/// Borrowed decode of a BrokerAdvertisement: string fields alias the
/// receive buffer. Lets a BDN apply its realm filter (§2.3) before paying
/// for an owned copy it may throw away.
struct BrokerAdvertisementView {
    Uuid broker_id;
    std::string_view broker_name;
    std::string_view hostname;
    Endpoint endpoint;
    std::string_view realm;
    std::string_view geo_location;
    std::string_view institution;
    /// The full encoded message region (no type octet); re-decodable.
    std::span<const std::uint8_t> raw;

    static BrokerAdvertisementView peek(wire::ByteReader& reader);
    [[nodiscard]] BrokerAdvertisement materialize() const;
};

/// "The broker discovery request includes information regarding the
/// requesting node process such as hostname, ports and transport protocols
/// ... and sometimes also includes credentials" (§3).
struct DiscoveryRequest {
    Uuid request_id;  ///< "a UUID which uniquely identifies the request"
    std::string requester_hostname;
    Endpoint reply_to;                   ///< UDP endpoint for responses
    std::vector<std::string> protocols;  ///< transports the requester speaks
    std::string credential;              ///< optional, for response policies
    std::string realm;                   ///< requester's network realm
    /// Observability piggyback: nil trace id = not sampled. Each hop
    /// (client -> BDN -> injection -> broker) rewrites `parent_span` to its
    /// own active span before forwarding, so the recorded spans link into
    /// one end-to-end tree.
    obs::TraceContext trace;

    void encode(wire::ByteWriter& writer) const;
    static DiscoveryRequest decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const DiscoveryRequest&, const DiscoveryRequest&) = default;
};

/// Borrowed decode of a DiscoveryRequest: everything a forwarding hop
/// (BDN or broker) inspects — request UUID for dedup, credential/realm for
/// policy, reply endpoint for acks, trace for the sampling branch —
/// without copying. The untouched protocol list stays inside `raw`.
struct DiscoveryRequestView {
    Uuid request_id;
    std::string_view requester_hostname;
    Endpoint reply_to;
    std::string_view credential;
    std::string_view realm;
    obs::TraceContext trace;
    /// The full encoded message region (no type octet); forward this
    /// verbatim instead of re-encoding when nothing was rewritten.
    std::span<const std::uint8_t> raw;

    static DiscoveryRequestView peek(wire::ByteReader& reader);
    [[nodiscard]] DiscoveryRequest materialize() const;
};

/// "(a) The current timestamp ... (b) The broker process information ...
/// (c) Usage metric information" (§5.1).
struct DiscoveryResponse {
    Uuid request_id;   ///< echoes the request UUID
    TimeUs sent_utc;   ///< NTP-based UTC when the response was issued

    // Broker process information.
    Uuid broker_id;
    std::string broker_name;
    std::string hostname;
    Endpoint endpoint;
    std::vector<std::string> protocols;

    // Usage metric information.
    broker::UsageMetrics metrics;

    /// The broker shed discovery work recently (load shedding engaged);
    /// requesters penalize overloaded brokers when shortlisting so new
    /// clients steer away from the hot spot while it drains.
    bool overloaded = false;

    /// Echo of the request's trace id; `parent_span` is the responding
    /// broker's span so the client's response events attach under it.
    obs::TraceContext trace;

    void encode(wire::ByteWriter& writer) const;
    static DiscoveryResponse decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const DiscoveryResponse&, const DiscoveryResponse&) = default;
};

/// Borrowed decode of a DiscoveryResponse: enough to filter (request UUID
/// match, duplicate broker id) before materializing a candidate the client
/// will actually keep. Late or duplicate responses cost no allocation.
struct DiscoveryResponseView {
    Uuid request_id;
    TimeUs sent_utc = 0;
    Uuid broker_id;
    std::string_view broker_name;
    std::string_view hostname;
    Endpoint endpoint;
    broker::UsageMetrics metrics;
    bool overloaded = false;
    obs::TraceContext trace;
    /// The full encoded message region (no type octet); re-decodable.
    std::span<const std::uint8_t> raw;

    static DiscoveryResponseView peek(wire::ByteReader& reader);
    [[nodiscard]] DiscoveryResponse materialize() const;
};

/// One advertisement inside a v2 registry push (kMsgBdnRegistrySync2).
/// Carries the sender's *remaining* lease — never an absolute deadline, so
/// clock offsets between BDNs cannot stretch a lease — plus the entry's
/// version stamp for convergent merges: (version, origin) totally orders
/// concurrent writes of the same broker id across replicas.
struct RegistrySyncEntry {
    BrokerAdvertisement ad;
    /// Microseconds of lease the sender still granted this ad at encode
    /// time; -1 = the sender does not track leases (ad_lease == 0), <= 0
    /// otherwise means expired and receivers must drop the entry.
    DurationUs lease_remaining = -1;
    /// Node id of the BDN that minted this version (splitmix of its endpoint).
    std::uint64_t origin = 0;
    /// Lamport stamp minted at the origin; higher (version, origin) wins.
    std::uint64_t version = 0;

    void encode(wire::ByteWriter& writer) const;
    static RegistrySyncEntry decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const RegistrySyncEntry&, const RegistrySyncEntry&) = default;
};

/// Scatter half of a federated discovery: the coordinating BDN asks a peer
/// shard for its best broker candidates for one request.
struct ShardQuery {
    Uuid query_id;      ///< echoes the discovery request UUID
    Endpoint reply_to;  ///< the coordinator BDN's endpoint
    std::uint32_t limit = 8;  ///< max candidates wanted back

    void encode(wire::ByteWriter& writer) const;
    static ShardQuery decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const ShardQuery&, const ShardQuery&) = default;
};

/// Gather half: a shard's candidate slice, ordered best (lowest RTT) first.
struct ShardReply {
    struct Entry {
        Uuid broker_id;
        Endpoint endpoint;
        DurationUs rtt = -1;  ///< shard's measured ping RTT; -1 unmeasured

        friend bool operator==(const Entry&, const Entry&) = default;
    };

    Uuid query_id;
    std::vector<Entry> entries;

    void encode(wire::ByteWriter& writer) const;
    static ShardReply decode(wire::ByteReader& reader);
    [[nodiscard]] std::size_t measured_size() const;

    friend bool operator==(const ShardReply&, const ShardReply&) = default;
};

/// Anti-entropy probe: a digest over the registry entries whose ownership
/// the sender and receiver share under the sender's ring. `ring_hash`
/// fingerprints the sender's member list so digests from a different ring
/// epoch are never compared (they would always mismatch and cause push
/// storms during a rebalance).
struct RegistryDigest {
    std::uint64_t ring_hash = 0;
    std::uint64_t digest = 0;     ///< xor-fold over (id, origin, version)
    std::uint32_t count = 0;      ///< entries folded into `digest`

    void encode(wire::ByteWriter& writer) const;
    static RegistryDigest decode(wire::ByteReader& reader);
    [[nodiscard]] static constexpr std::size_t wire_size() { return 8 + 8 + 4; }

    friend bool operator==(const RegistryDigest&, const RegistryDigest&) = default;
};

}  // namespace narada::discovery
