// Managed broker connection: discovery-backed failover.
//
// The paper's motivating environment is "very dynamic and fluid ... broker
// processes may join and leave the broker network at arbitrary times"; "it
// is thus not possible for any entity to assume that a given broker may be
// available indefinitely" (§1.2). ManagedConnection closes that loop for
// an application client: it discovers a broker, attaches the pub/sub
// client to it, heartbeats it over UDP pings, and on repeated misses runs
// discovery again (which falls back to multicast and the cached target set
// per §7) and re-attaches — the client's standing subscriptions replay
// automatically on the new broker.
#pragma once

#include <functional>
#include <optional>

#include "broker/client.hpp"
#include "common/backoff.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "discovery/client.hpp"
#include "obs/metrics.hpp"

namespace narada::discovery {

/// Heartbeat tuning for ManagedConnection.
struct ManagedConnectionOptions {
    DurationUs heartbeat_interval = 2 * kSecond;
    /// Consecutive unanswered heartbeats before declaring the broker dead
    /// and rediscovering.
    std::uint32_t max_missed = 3;
    /// Rediscovery retries (failed run, or a shared discovery client that
    /// is busy) back off with jitter instead of hammering a fixed cadence.
    /// initial == 0 means "start from heartbeat_interval".
    BackoffOptions rediscovery_backoff{/*initial=*/0, /*max=*/10 * kSecond,
                                       /*multiplier=*/2.0, /*jitter=*/0.2};
};

class ManagedConnection final : public transport::MessageHandler {
public:
    using Options = ManagedConnectionOptions;

    struct Stats {
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t heartbeats_answered = 0;
        std::uint64_t failovers = 0;
        std::uint64_t failed_discoveries = 0;
        /// Rediscoveries deferred because the shared discovery client had
        /// a run in flight (would otherwise throw mid-failover).
        std::uint64_t busy_deferrals = 0;
    };

    /// `heartbeat_endpoint` is a dedicated local endpoint for ping/pong
    /// (the pub/sub client's endpoint stays protocol-clean). All referenced
    /// objects must outlive the connection.
    ManagedConnection(Scheduler& scheduler, transport::Transport& transport,
                      const Endpoint& heartbeat_endpoint, const Clock& local_clock,
                      broker::PubSubClient& pubsub, DiscoveryClient& discovery,
                      Options options = {});
    ~ManagedConnection() override;

    ManagedConnection(const ManagedConnection&) = delete;
    ManagedConnection& operator=(const ManagedConnection&) = delete;

    /// Discover and attach. Safe to call once; failures retry internally
    /// through the discovery client's own fallback ladder.
    void start();

    /// Invoked whenever the connection attaches to a (new) broker.
    void on_attached(std::function<void(const Endpoint&)> callback) {
        on_attached_ = std::move(callback);
    }
    /// Invoked when the current broker is declared dead (before rediscovery).
    void on_broker_lost(std::function<void(const Endpoint&)> callback) {
        on_broker_lost_ = std::move(callback);
    }

    [[nodiscard]] bool attached() const { return current_broker_.has_value(); }
    [[nodiscard]] std::optional<Endpoint> current_broker() const { return current_broker_; }
    /// The backoff base the next rediscovery retry will draw from.
    [[nodiscard]] DurationUs current_backoff() const { return backoff_.current(); }
    [[nodiscard]] const Stats& stats() const { return stats_; }

    /// Mirror the connection's counters into a metrics registry (null =
    /// off). Instruments are labelled with the heartbeat endpoint.
    void set_observability(obs::MetricsRegistry* metrics);
    /// JSON introspection dump: attachment, backoff, lifetime counters.
    [[nodiscard]] std::string debug_snapshot() const;

    // MessageHandler (heartbeat pongs).
    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    void run_discovery();
    /// Arm the rediscovery retry timer with the next backoff delay.
    void schedule_retry();
    void attach(const Endpoint& broker);
    void heartbeat_tick();
    void declare_dead();

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    broker::PubSubClient& pubsub_;
    DiscoveryClient& discovery_;
    Options options_;
    Rng rng_;
    JitteredBackoff backoff_;

    std::optional<Endpoint> current_broker_;
    std::uint32_t missed_ = 0;
    bool pong_pending_ = false;
    bool discovering_ = false;
    TimerHandle heartbeat_timer_ = kInvalidTimerHandle;
    TimerHandle retry_timer_ = kInvalidTimerHandle;

    std::function<void(const Endpoint&)> on_attached_;
    std::function<void(const Endpoint&)> on_broker_lost_;
    Stats stats_;

    // Observability (optional; null = off).
    struct Instruments {
        obs::Counter* heartbeats_sent = nullptr;
        obs::Counter* heartbeats_answered = nullptr;
        obs::Counter* failovers = nullptr;
        obs::Counter* failed_discoveries = nullptr;
        obs::Counter* busy_deferrals = nullptr;
    } inst_;
};

}  // namespace narada::discovery
