#include "discovery/rejoin.hpp"

#include "common/log.hpp"

namespace narada::discovery {

RejoinSupervisor::RejoinSupervisor(broker::Broker& broker, BrokerDiscoveryPlugin& plugin,
                                   DiscoveryClient& client, config::RejoinConfig config)
    : broker_(broker),
      plugin_(plugin),
      client_(client),
      config_(config),
      joiner_(broker, plugin, client),
      backoff_(BackoffOptions{config.backoff_initial, config.backoff_max,
                              config.backoff_multiplier, config.backoff_jitter}) {}

RejoinSupervisor::~RejoinSupervisor() {
    broker_.scheduler().cancel_timer(timer_);
    if (started_) broker_.set_peer_observer(nullptr);
}

void RejoinSupervisor::start() {
    if (started_ || config_.peer_floor == 0) return;
    started_ = true;
    broker_.set_peer_observer([this](const Endpoint& peer, bool up, std::size_t established) {
        on_peer_link(peer, up, established);
    });
    if (below_floor()) {
        ++stats_.floor_violations;
        schedule_attempt();
    }
}

void RejoinSupervisor::on_peer_link(const Endpoint& peer, bool up, std::size_t established) {
    (void)peer;
    if (!up) {
        if (established < config_.peer_floor && !healing()) {
            ++stats_.floor_violations;
            NARADA_INFO("rejoin", "{}: {} peers < floor {}, healing", broker_.name(),
                        established, config_.peer_floor);
            schedule_attempt();
        }
        return;
    }
    // A link landed. If the floor is satisfied again, stand down: cancel
    // any pending attempt and reset the backoff so the next outage starts
    // fresh. (A join in flight simply finds the floor met when it settles.)
    if (established >= config_.peer_floor && timer_ != kInvalidTimerHandle) {
        broker_.scheduler().cancel_timer(timer_);
        timer_ = kInvalidTimerHandle;
        backoff_.reset();
        ++stats_.backoff_resets;
    }
}

void RejoinSupervisor::schedule_attempt() {
    if (timer_ != kInvalidTimerHandle || join_inflight_) return;
    const DurationUs delay = backoff_.next(broker_.rng());
    stats_.last_delay = delay;
    timer_ = broker_.scheduler().schedule(delay, [this] { attempt(); });
}

void RejoinSupervisor::attempt() {
    timer_ = kInvalidTimerHandle;
    if (!below_floor()) {
        // A peer reconnected to us while we waited.
        backoff_.reset();
        ++stats_.backoff_resets;
        return;
    }
    if (client_.busy()) {
        // The discovery client is shared and a run is in flight; never
        // throw from a timer callback — defer with the next backoff step.
        ++stats_.deferrals;
        schedule_attempt();
        return;
    }
    ++stats_.attempts;
    join_inflight_ = true;
    joiner_.join([this](const BrokerJoiner::Result& result) { on_join_result(result); });
}

void RejoinSupervisor::on_join_result(const BrokerJoiner::Result& result) {
    join_inflight_ = false;
    if (result.success) {
        ++stats_.successes;
        NARADA_INFO("rejoin", "{}: re-peering with {}", broker_.name(),
                    result.attached_to->str());
        // connect_to_peer only *initiated* the LinkHello handshake; the
        // floor is satisfied when LinkAccept lands, which cancels this
        // retry and resets the backoff (see on_peer_link). If the chosen
        // peer died in the meantime, the timer fires and we go again.
        schedule_attempt();
        return;
    }
    ++stats_.failures;
    if (below_floor()) {
        schedule_attempt();
        return;
    }
    // An incoming link met the floor while our join was in flight; the
    // overlay healed even though the join found no usable candidate.
    backoff_.reset();
    ++stats_.backoff_resets;
}

}  // namespace narada::discovery
