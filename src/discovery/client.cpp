#include "discovery/client.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "discovery/security.hpp"
#include "obs/json.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {

DiscoveryClient::DiscoveryClient(Scheduler& scheduler, transport::Transport& transport,
                                 const Endpoint& local, const Clock& local_clock,
                                 const timesvc::UtcSource& utc, config::DiscoveryConfig config,
                                 std::string hostname, std::string realm)
    : scheduler_(scheduler),
      transport_(transport),
      local_(local),
      local_clock_(local_clock),
      utc_(utc),
      config_(std::move(config)),
      hostname_(std::move(hostname)),
      realm_(std::move(realm)),
      rng_(0x64697363ull ^ (std::uint64_t{local.host} << 16) ^ local.port) {
    transport_.bind(local_, this);
}

DiscoveryClient::~DiscoveryClient() {
    cancel_timers();
    transport_.unbind(local_);
}

void DiscoveryClient::set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                                        double trace_sample_rate) {
    spans_ = spans;
    trace_sample_rate_ = trace_sample_rate;
    inst_ = {};
    if (metrics == nullptr) return;
    inst_.discoveries = &metrics->counter("client_discoveries", hostname_);
    inst_.successes = &metrics->counter("client_successes", hostname_);
    inst_.failures = &metrics->counter("client_failures", hostname_);
    inst_.responses = &metrics->counter("client_responses", hostname_);
    inst_.retransmits = &metrics->counter("client_retransmits", hostname_);
    inst_.breaker_skips = &metrics->counter("client_breaker_skips", hostname_);
    inst_.forced_probes = &metrics->counter("client_forced_probes", hostname_);
    inst_.breaker_opens = &metrics->counter("client_breaker_opens", hostname_);
    inst_.midflight_failovers = &metrics->counter("client_midflight_failovers", hostname_);
    inst_.selection_ms =
        &metrics->histogram("client_selection_ms", hostname_, obs::latency_buckets_ms());
    inst_.first_response_ms =
        &metrics->histogram("client_first_response_ms", hostname_, obs::latency_buckets_ms());
}

std::string DiscoveryClient::debug_snapshot() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "discovery_client")
        .field("hostname", hostname_)
        .field("phase", phase_ == Phase::kIdle      ? "idle"
                        : phase_ == Phase::kCollecting ? "collecting"
                                                       : "pinging")
        .field("cached_targets", static_cast<std::uint64_t>(cached_targets_.size()));
    w.key("stats").begin_object()
        .field("breaker_skips", stats_.breaker_skips)
        .field("forced_probes", stats_.forced_probes)
        .field("adaptive_closes", stats_.adaptive_closes)
        .field("midflight_failovers", stats_.midflight_failovers)
        .end_object();
    w.key("bdn_breakers").begin_array();
    for (std::size_t i = 0; i < breakers_.size() && i < config_.bdns.size(); ++i) {
        const CircuitBreaker& b = breakers_[i];
        w.begin_object()
            .field("bdn", config_.bdns[i].str())
            .field("state", to_string(b.state()))
            .field("consecutive_failures", b.consecutive_failures())
            .field("opens", b.stats().opens)
            .field("probes", b.stats().probes)
            .field("rejections", b.stats().rejections)
            .field("retry_at_us", static_cast<std::int64_t>(b.retry_at()))
            .end_object();
    }
    w.end_array().end_object();
    return w.take();
}

void DiscoveryClient::discover(Callback callback) {
    if (phase_ != Phase::kIdle) {
        throw std::logic_error("DiscoveryClient::discover: a run is already in flight");
    }
    callback_ = std::move(callback);
    report_ = DiscoveryReport{};
    active_request_ids_.clear();
    bdn_attempt_ = 0;
    fallback_done_ = false;
    pending_pongs_.clear();
    ack_pending_ = false;
    midflight_failovers_run_ = 0;
    silent_ticks_ = 0;
    responses_at_last_tick_ = 0;

    report_.request_id = Uuid::random(rng_);
    current_request_id_ = report_.request_id;
    active_request_ids_.insert(report_.request_id);

    // Sampling decision: one per run, at the root. A sampled run mints the
    // trace id every downstream hop keys on; an unsampled run carries the
    // nil id and costs each hop a single branch.
    trace_ = obs::TraceContext{};
    root_span_ = collect_span_ = ping_span_ = 0;
    if (spans_ != nullptr && trace_sample_rate_ > 0.0 &&
        (trace_sample_rate_ >= 1.0 || rng_.chance(trace_sample_rate_))) {
        trace_.trace_id = Uuid::random(rng_);
        const TimeUs now_utc = utc_.utc_now();
        root_span_ = spans_->begin(trace_.trace_id, 0, "client.discover", hostname_, now_utc);
        collect_span_ =
            spans_->begin(trace_.trace_id, root_span_, "client.collect", hostname_, now_utc);
        trace_.parent_span = root_span_;
    }
    if (inst_.discoveries) inst_.discoveries->inc();

    phase_ = Phase::kCollecting;
    run_start_ = local_clock_.now();
    send_request();

    // The collection window bounds the wait for responses: "the timeout
    // period ... specifies the amount of time a client is willing to wait
    // to gather discovery responses" (§9).
    window_timer_ = scheduler_.schedule(config_.response_window, [this] { end_collection(); });
}

Bytes DiscoveryClient::encode_request() const {
    DiscoveryRequest request;
    request.request_id = current_request_id_;
    request.requester_hostname = hostname_;
    request.reply_to = local_;
    request.protocols = {"tcp", "udp"};
    request.credential = config_.credential;
    request.realm = realm_;
    request.trace = trace_;
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + request.measured_size());
    writer.u8(wire::kMsgDiscoveryRequest);
    request.encode(writer);
    return writer.take();
}

void DiscoveryClient::send_request() {
    const Bytes encoded = encode_request();
    send_to_bdn(encoded);
    if (config_.use_multicast) {
        multicast_request(encoded);
    }
    // "retransmission after predefined period of inactivity" (§7).
    if (retransmit_timer_ != kInvalidTimerHandle) scheduler_.cancel_timer(retransmit_timer_);
    retransmit_timer_ =
        scheduler_.schedule(config_.retransmit_interval, [this] { on_retransmit_timer(); });
}

void DiscoveryClient::send_to_bdn(const Bytes& encoded) {
    if (config_.bdns.empty()) return;
    // "The broker discovery request is generally issued to only [one] BDN"
    // (§3); retransmissions rotate through the configured list (§7).
    const std::size_t count = config_.bdns.size();
    std::size_t chosen = bdn_attempt_ % count;
    if (breakers_enabled()) {
        ensure_breakers();
        const TimeUs now = local_clock_.now();
        // Walk the rotation from the nominal pick, skipping open breakers
        // so dead or storming BDNs cost nothing instead of a full window.
        bool found = false;
        for (std::size_t i = 0; i < count && !found; ++i) {
            const std::size_t index = (bdn_attempt_ + i) % count;
            if (breakers_[index].allow(now, rng_)) {
                chosen = index;
                found = true;
            } else {
                ++stats_.breaker_skips;
                if (inst_.breaker_skips) inst_.breaker_skips->inc();
            }
        }
        if (!found) {
            // Every configured BDN is open: a request must still go
            // somewhere, so probe the one whose cool-down ends soonest.
            chosen = 0;
            for (std::size_t i = 1; i < count; ++i) {
                if (breakers_[i].retry_at() < breakers_[chosen].retry_at()) chosen = i;
            }
            breakers_[chosen].force_probe();
            ++stats_.forced_probes;
            if (inst_.forced_probes) inst_.forced_probes->inc();
            NARADA_DEBUG("discovery", "{}: all BDN breakers open; forced probe of {}",
                         local_.str(), config_.bdns[chosen].str());
        }
    }
    last_bdn_ = chosen;
    ack_pending_ = true;
    const bool force = force_handshake_next_;
    force_handshake_next_ = false;
    send_datagram_secured(config_.bdns[chosen], encoded, force);
}

void DiscoveryClient::send_datagram_secured(const Endpoint& target, const Bytes& encoded,
                                            bool force_handshake) {
    if (security_ != nullptr && security_->config().enabled()) {
        const std::string_view peer = security_->identity_at(target);
        if (!peer.empty()) {
            wire::ByteWriter sealed(transport_.acquire_buffer());
            if (security_->seal_datagram({encoded.data(), encoded.size()}, peer, sealed,
                                         force_handshake)) {
                transport_.send_datagram(local_, target, sealed.take());
                return;
            }
        }
        // Unknown identity or seal refusal: fall through to a plain send
        // rather than silently dropping the run's request.
    }
    transport_.send_datagram(local_, target, encoded);
}

void DiscoveryClient::ensure_breakers() {
    if (breakers_.size() == config_.bdns.size()) return;
    CircuitBreakerOptions options;
    options.failure_threshold = config_.breaker_failure_threshold;
    options.open_backoff.initial = config_.breaker_open_initial;
    options.open_backoff.max = config_.breaker_open_max;
    breakers_.assign(config_.bdns.size(), CircuitBreaker(options));
}

bool DiscoveryClient::record_bdn_failure(bool allow_failover) {
    if (!ack_pending_) return false;
    ack_pending_ = false;
    if (!breakers_enabled()) return false;
    ensure_breakers();
    if (last_bdn_ >= breakers_.size()) return false;
    breakers_[last_bdn_].record_failure(local_clock_.now(), rng_);
    if (breakers_[last_bdn_].state() != CircuitBreaker::State::kOpen) return false;
    // The breaker primitive stays obs-free (it lives below the obs
    // layer); its owner mirrors state transitions into the registry.
    if (inst_.breaker_opens) inst_.breaker_opens->inc();
    NARADA_DEBUG("discovery", "{}: breaker for BDN {} opened (retry at {})", local_.str(),
                 config_.bdns[last_bdn_].str(), breakers_[last_bdn_].retry_at());

    // Mid-flight failover: the BDN this run is waiting on is now known-dead;
    // instead of burning the rest of the window on it (or sitting out the
    // retransmit budget), re-issue to another BDN right away. The window
    // timer is untouched, so the new BDN serves the *remaining* deadline.
    if (!allow_failover || phase_ != Phase::kCollecting || !report_.candidates.empty()) {
        return false;
    }
    if (config_.bdns.size() < 2 || midflight_failovers_run_ >= config_.bdns.size()) {
        return false;
    }
    ++midflight_failovers_run_;
    ++stats_.midflight_failovers;
    if (inst_.midflight_failovers) inst_.midflight_failovers->inc();
    // The failover re-send is still a retransmission of this run's request;
    // keep the report/metric accounting the same as the plain timer path.
    ++report_.retransmits;
    if (inst_.retransmits) inst_.retransmits->inc();
    ++bdn_attempt_;  // rotate; send_to_bdn also skips any open breaker
    NARADA_DEBUG("discovery", "{}: mid-flight failover off {} ({} this run)", local_.str(),
                 config_.bdns[last_bdn_].str(), midflight_failovers_run_);
    send_request();
    return true;
}

void DiscoveryClient::multicast_request(const Bytes& encoded) {
    report_.used_multicast = true;
    transport_.send_multicast(transport::kDiscoveryMulticastGroup, local_, encoded);
}

transport::RudpChannel& DiscoveryClient::rudp_channel(const Endpoint& peer) {
    auto it = rudp_channels_.find(peer);
    if (it == rudp_channels_.end()) {
        auto channel = std::make_unique<transport::RudpChannel>(
            scheduler_, transport_, local_clock_, local_, peer, transport::RudpOptions{},
            hostname_ + "-rudp");
        // A reassembled payload is a complete framed message (type octet
        // first); re-entering on_datagram dispatches it like any arrival —
        // an oversized DiscoveryResponse lands in on_response.
        channel->on_deliver(
            [this, peer](Bytes payload) { on_datagram(peer, payload); });
        it = rudp_channels_.emplace(peer, std::move(channel)).first;
    }
    return *it->second;
}

void DiscoveryClient::on_datagram(const Endpoint& from, const Bytes& data) {
    try {
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        switch (type) {
            case wire::kMsgDiscoveryAck: on_ack(from, reader); return;
            case wire::kMsgDiscoveryResponse: on_response(reader); return;
            case wire::kMsgPong: on_pong(from, reader); return;
            case wire::kMsgRudpData:
            case wire::kMsgRudpAck:
                // A broker streaming an oversized response over the bulk
                // lane. Unknown senders only get a lane while the map has
                // room, so spoofed frames cannot grow client memory.
                if (!rudp_channels_.contains(from) &&
                    rudp_channels_.size() >= kMaxRudpPeers) {
                    return;
                }
                rudp_channel(from).handle_frame(type, reader);
                return;
            default:
                NARADA_DEBUG("discovery", "{}: unexpected message type {}", local_.str(),
                             static_cast<int>(type));
        }
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("discovery", "{}: malformed message from {}: {}", local_.str(), from.str(),
                     e.what());
    }
}

void DiscoveryClient::on_ack(const Endpoint& from, wire::ByteReader& reader) {
    const Uuid id = reader.uuid();
    if (!active_request_ids_.contains(id)) return;
    // Success attribution: the acking BDN (if configured) closes its breaker.
    ack_pending_ = false;
    if (breakers_enabled()) {
        ensure_breakers();
        for (std::size_t i = 0; i < breakers_.size(); ++i) {
            if (config_.bdns[i] == from) {
                breakers_[i].record_success();
                break;
            }
        }
    }
    if (phase_ != Phase::kCollecting) return;
    if (report_.time_to_ack < 0) {
        report_.time_to_ack = local_clock_.now() - run_start_;
    }
}

void DiscoveryClient::on_response(wire::ByteReader& reader) {
    if (phase_ != Phase::kCollecting) return;  // late responses are ignored
    // Filter on the borrowed view first: stale-run responses and duplicate
    // brokers are dropped before any field of the message is copied.
    const DiscoveryResponseView view = DiscoveryResponseView::peek(reader);
    if (!active_request_ids_.contains(view.request_id)) return;

    // One candidate per broker: a broker reached over several paths can
    // answer a fresh fallback UUID again.
    for (const Candidate& c : report_.candidates) {
        if (c.response.broker_id == view.broker_id) return;
    }
    const DiscoveryResponse response = view.materialize();

    Candidate candidate;
    candidate.response = response;
    // "we can have a very good estimate of the network latencies to the
    // responding brokers by subtracting the current UTC time from the UTC
    // time contained in the discovery response" (§6).
    candidate.estimated_delay = utc_.utc_now() - response.sent_utc;
    report_.candidates.push_back(std::move(candidate));
    if (inst_.responses) inst_.responses->inc();

    // Attach the response event under the responding broker's span when
    // the response carries our trace; fall back to the root span for
    // responses from paths that lost the context (e.g. cached targets
    // answering a fallback request from an older run).
    if (spans_ != nullptr && trace_.sampled()) {
        const std::uint64_t parent = response.trace.trace_id == trace_.trace_id
                                         ? response.trace.parent_span
                                         : root_span_;
        spans_->instant(trace_.trace_id, parent, "client.response", hostname_,
                        utc_.utc_now());
    }

    if (report_.time_to_first_response < 0) {
        report_.time_to_first_response = local_clock_.now() - run_start_;
        // Responses are flowing; retransmission is no longer needed.
        scheduler_.cancel_timer(retransmit_timer_);
        retransmit_timer_ = kInvalidTimerHandle;
    }

    // Adaptive window: once responses flow, watch for them to quiesce
    // instead of waiting the whole window out (§9's fixed timeout becomes
    // an upper bound).
    if (config_.adaptive_window && quiesce_timer_ == kInvalidTimerHandle &&
        config_.quiesce_ticks > 0 && config_.quiesce_tick > 0) {
        silent_ticks_ = 0;
        responses_at_last_tick_ = report_.candidates.size();
        quiesce_timer_ =
            scheduler_.schedule(config_.quiesce_tick, [this] { on_quiesce_tick(); });
    }

    // "a client might ... specify that only the first N responses must be
    // considered" (§9).
    if (config_.max_responses > 0 && report_.candidates.size() >= config_.max_responses) {
        end_collection();
    }
}

void DiscoveryClient::on_retransmit_timer() {
    retransmit_timer_ = kInvalidTimerHandle;
    if (phase_ != Phase::kCollecting || !report_.candidates.empty()) return;
    // A full inactivity period without the BDN's ack is a failure against
    // its breaker (an unreachable BDN opens after the threshold). If that
    // opened the breaker and the run failed over, the failover already
    // re-sent — this timer's retransmit would be a duplicate.
    if (record_bdn_failure(/*allow_failover=*/true)) return;
    if (report_.retransmits >= config_.max_retransmits) return;  // window will fall back
    ++report_.retransmits;
    if (inst_.retransmits) inst_.retransmits->inc();
    ++bdn_attempt_;  // failover to the next configured BDN (§7)
    // Under security the silence may mean the BDN never got our session
    // (lost handshake datagram): the retransmit re-handshakes so the run
    // recovers no matter which direction lost the first exchange.
    force_handshake_next_ = true;
    send_request();
}

void DiscoveryClient::on_quiesce_tick() {
    quiesce_timer_ = kInvalidTimerHandle;
    if (phase_ != Phase::kCollecting) return;
    if (report_.candidates.size() == responses_at_last_tick_) {
        ++silent_ticks_;
    } else {
        silent_ticks_ = 0;
        responses_at_last_tick_ = report_.candidates.size();
    }
    const DurationUs elapsed = local_clock_.now() - run_start_;
    if (!report_.candidates.empty() && silent_ticks_ >= config_.quiesce_ticks &&
        elapsed >= config_.response_window_min) {
        ++stats_.adaptive_closes;
        report_.adaptive_close = true;
        NARADA_DEBUG("discovery", "{}: responses quiesced after {} candidates; closing window",
                     local_.str(), report_.candidates.size());
        end_collection();
        return;
    }
    quiesce_timer_ = scheduler_.schedule(config_.quiesce_tick, [this] { on_quiesce_tick(); });
}

void DiscoveryClient::end_collection() {
    if (phase_ != Phase::kCollecting) return;
    scheduler_.cancel_timer(window_timer_);
    window_timer_ = kInvalidTimerHandle;
    scheduler_.cancel_timer(retransmit_timer_);
    retransmit_timer_ = kInvalidTimerHandle;
    scheduler_.cancel_timer(quiesce_timer_);
    quiesce_timer_ = kInvalidTimerHandle;

    if (report_.candidates.empty()) {
        // The whole window elapsed without even an ack: charge the BDN.
        // No failover here — the deadline is spent; fallback paths follow.
        record_bdn_failure(/*allow_failover=*/false);
        if (!fallback_done_) {
            run_fallback();
            return;
        }
        fail();
        return;
    }

    collection_end_ = local_clock_.now();
    report_.collection_duration = collection_end_ - run_start_;
    if (collect_span_ != 0) {
        spans_->end(collect_span_, utc_.utc_now());
        collect_span_ = 0;
    }

    // Shortlist: sort by weight, keep the first size(T) (§9).
    report_.target_set =
        shortlist(report_.candidates, config_.weights, config_.target_set_size);
    report_.scoring_duration = local_clock_.now() - collection_end_;

    start_pings();
}

void DiscoveryClient::run_fallback() {
    fallback_done_ = true;
    silent_ticks_ = 0;
    responses_at_last_tick_ = 0;
    // A fresh UUID: brokers that deduplicated the original request (e.g.
    // reached through a different BDN earlier) must answer this round.
    const Uuid fresh = Uuid::random(rng_);
    current_request_id_ = fresh;
    active_request_ids_.insert(fresh);
    const Bytes encoded = encode_request();

    // Path 1: "the requesting node can issue a broker request to one or
    // more of the nodes in the [cached] target set" (§7).
    if (!cached_targets_.empty()) {
        report_.used_cached_targets = true;
        for (const Endpoint& target : cached_targets_) {
            // Direct broker requests seal per target when the broker's
            // identity is known (§9.1); fallback is best-effort, so a
            // fresh handshake per unknown session is acceptable here.
            send_datagram_secured(target, encoded, /*force_handshake=*/false);
        }
    }
    // Path 2: "the approach could work even if none of the BDNs within the
    // system are functioning ... by sending the discovery request using
    // multicast" (§7).
    multicast_request(encoded);

    window_timer_ = scheduler_.schedule(config_.response_window, [this] { end_collection(); });
}

void DiscoveryClient::start_pings() {
    phase_ = Phase::kPinging;
    ping_start_ = local_clock_.now();
    if (spans_ != nullptr && trace_.sampled()) {
        ping_span_ =
            spans_->begin(trace_.trace_id, root_span_, "client.ping", hostname_, utc_.utc_now());
    }
    pending_pongs_.assign(report_.candidates.size(), 0);

    // "To compute [the precise network delay] we send ping requests to
    // individual brokers ... The ping requests and responses will also be
    // sent using UDP" (§6).
    for (std::size_t index : report_.target_set) {
        pending_pongs_[index] = config_.pings_per_broker;
        for (std::uint32_t i = 0; i < config_.pings_per_broker; ++i) {
            wire::ByteWriter writer(transport_.acquire_buffer());
            writer.reserve(1 + 8);
            writer.u8(wire::kMsgPing);
            writer.i64(local_clock_.now());
            transport_.send_datagram(local_, report_.candidates[index].response.endpoint,
                                     writer.take());
        }
    }
    ping_timer_ = scheduler_.schedule(config_.ping_window, [this] { finish(); });
}

void DiscoveryClient::on_pong(const Endpoint& from, wire::ByteReader& reader) {
    if (phase_ != Phase::kPinging) return;
    const TimeUs echoed = reader.i64();
    const DurationUs rtt = local_clock_.now() - echoed;
    for (std::size_t index : report_.target_set) {
        Candidate& candidate = report_.candidates[index];
        if (candidate.response.endpoint != from) continue;
        // Keep the minimum across repeated pings (§10: the PING "may be
        // repeated multiple times").
        if (candidate.ping_rtt < 0 || rtt < candidate.ping_rtt) candidate.ping_rtt = rtt;
        if (pending_pongs_[index] > 0) --pending_pongs_[index];
        break;
    }
    maybe_finish_pings();
}

void DiscoveryClient::maybe_finish_pings() {
    for (std::size_t index : report_.target_set) {
        if (pending_pongs_[index] != 0) return;
    }
    finish();  // every expected pong arrived; no need to wait the window out
}

void DiscoveryClient::finish() {
    if (phase_ != Phase::kPinging) return;
    scheduler_.cancel_timer(ping_timer_);
    ping_timer_ = kInvalidTimerHandle;
    report_.ping_duration = local_clock_.now() - ping_start_;

    // "The requesting node decides on the target node based on the lowest
    // delay associated with the ping requests" (§6). Targets whose pongs
    // were all lost are skipped — UDP loss on the ping path is the same
    // remote-broker filter as on the response path (§5.2).
    std::optional<std::size_t> best;
    for (std::size_t index : report_.target_set) {
        const Candidate& candidate = report_.candidates[index];
        if (candidate.ping_rtt < 0) continue;
        if (!best || candidate.ping_rtt < report_.candidates[*best].ping_rtt) best = index;
    }
    if (!best && !report_.target_set.empty()) {
        // No pongs at all: fall back to the best-weighted candidate.
        best = report_.target_set.front();
    }
    report_.selected = best;
    report_.success = best.has_value();

    // Refresh the cached target set for §7-style recovery next time.
    if (!report_.target_set.empty()) {
        cached_targets_.clear();
        for (std::size_t index : report_.target_set) {
            cached_targets_.push_back(report_.candidates[index].response.endpoint);
        }
    }

    report_.total_duration = local_clock_.now() - run_start_;
    if (inst_.successes && report_.success) inst_.successes->inc();
    if (inst_.selection_ms) inst_.selection_ms->observe(to_ms(report_.total_duration));
    if (inst_.first_response_ms && report_.time_to_first_response >= 0) {
        inst_.first_response_ms->observe(to_ms(report_.time_to_first_response));
    }
    close_run_spans();
    phase_ = Phase::kIdle;
    if (callback_) {
        // Move the callback out first: it may start a new discover() run.
        Callback cb = std::move(callback_);
        callback_ = nullptr;
        cb(report_);
    }
}

void DiscoveryClient::fail() {
    report_.total_duration = local_clock_.now() - run_start_;
    report_.success = false;
    if (inst_.failures) inst_.failures->inc();
    close_run_spans();
    phase_ = Phase::kIdle;
    if (callback_) {
        Callback cb = std::move(callback_);
        callback_ = nullptr;
        cb(report_);
    }
}

void DiscoveryClient::close_run_spans() {
    if (spans_ == nullptr || !trace_.sampled()) return;
    const TimeUs now_utc = utc_.utc_now();
    if (collect_span_ != 0) spans_->end(collect_span_, now_utc);
    if (ping_span_ != 0) spans_->end(ping_span_, now_utc);
    if (root_span_ != 0) spans_->end(root_span_, now_utc);
    collect_span_ = ping_span_ = 0;
}

void DiscoveryClient::cancel_timers() {
    scheduler_.cancel_timer(retransmit_timer_);
    scheduler_.cancel_timer(window_timer_);
    scheduler_.cancel_timer(ping_timer_);
    scheduler_.cancel_timer(quiesce_timer_);
    retransmit_timer_ = window_timer_ = ping_timer_ = quiesce_timer_ = kInvalidTimerHandle;
}

}  // namespace narada::discovery
