// Overlay self-healing: broker rejoin supervision.
//
// The paper's broker network is "very dynamic and fluid ... broker
// processes may join and leave the broker network at arbitrary times"
// (§1.2), but §7 sketches recovery only for requesting entities. A broker
// that loses its peers through the liveness sweep would otherwise stay
// partitioned forever: nothing re-attaches it to the overlay.
//
// The RejoinSupervisor closes that loop. It observes the broker's
// peer-link transitions and, whenever the established-peer count falls
// below the configured floor, re-runs broker discovery via BrokerJoiner,
// re-peers with the best reachable broker and re-advertises (renewing the
// broker's BDN lease, see bdn.hpp). Attempts are spaced with jittered
// exponential backoff — capped, and reset the moment a re-peer actually
// lands — so a fleet of brokers orphaned by the same crash does not storm
// the survivors in lockstep.
//
// State machine:
//
//     kIdle ──(peers < floor)──► kWaiting ──(timer)──► kJoining
//       ▲                           ▲  ▲                  │
//       │                           │  └──(busy/fail)─────┤
//       └──(link up, peers >= floor; backoff resets)──────┘
#pragma once

#include "common/backoff.hpp"
#include "config/node_config.hpp"
#include "discovery/broker_joiner.hpp"

namespace narada::discovery {

class RejoinSupervisor {
public:
    struct Stats {
        std::uint64_t floor_violations = 0;  ///< drops below the peer floor
        std::uint64_t attempts = 0;          ///< discovery-backed join attempts
        std::uint64_t successes = 0;         ///< joins that selected a peer
        std::uint64_t failures = 0;          ///< joins with no usable peer
        std::uint64_t deferrals = 0;         ///< discovery client was busy
        std::uint64_t backoff_resets = 0;    ///< successful re-peers
        DurationUs last_delay = 0;           ///< most recent scheduled delay
    };

    /// `broker` is the supervised broker, `plugin` its discovery service
    /// and `client` a discovery client on the same host (it may be shared;
    /// busy runs defer). All must outlive the supervisor, and no further
    /// kernel/scheduler activity may happen between destroying the
    /// supervisor and its collaborators.
    RejoinSupervisor(broker::Broker& broker, BrokerDiscoveryPlugin& plugin,
                     DiscoveryClient& client, config::RejoinConfig config);
    ~RejoinSupervisor();

    RejoinSupervisor(const RejoinSupervisor&) = delete;
    RejoinSupervisor& operator=(const RejoinSupervisor&) = delete;

    /// Install the peer observer and begin supervising. If the broker is
    /// already below its floor, healing starts immediately.
    void start();

    [[nodiscard]] bool below_floor() const {
        return broker_.established_peer_count() < config_.peer_floor;
    }
    /// True while a rejoin attempt is pending or in flight.
    [[nodiscard]] bool healing() const {
        return timer_ != kInvalidTimerHandle || join_inflight_;
    }
    /// The backoff base the next attempt will draw from (observability).
    [[nodiscard]] DurationUs current_backoff() const { return backoff_.current(); }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const config::RejoinConfig& config() const { return config_; }

private:
    void on_peer_link(const Endpoint& peer, bool up, std::size_t established);
    /// Arm the retry timer with the next backoff delay (no-op if armed).
    void schedule_attempt();
    /// Timer body: run one discovery-backed join, or defer if busy.
    void attempt();
    void on_join_result(const BrokerJoiner::Result& result);

    broker::Broker& broker_;
    BrokerDiscoveryPlugin& plugin_;
    DiscoveryClient& client_;
    config::RejoinConfig config_;
    BrokerJoiner joiner_;
    JitteredBackoff backoff_;
    TimerHandle timer_ = kInvalidTimerHandle;
    bool join_inflight_ = false;
    bool started_ = false;
    Stats stats_;
};

}  // namespace narada::discovery
