#include "discovery/registry_shard.hpp"

#include <algorithm>

namespace narada::discovery {

ShardRing::ShardRing(std::vector<Endpoint> members, Options options)
    : members_(std::move(members)) {
    // Canonical member order: two BDNs configured with the same group in
    // different list orders must agree on every ownership decision.
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
    if (members_.empty()) return;

    effective_replication_ = std::max<std::uint32_t>(1, options.replication);
    effective_replication_ = std::min<std::uint32_t>(
        effective_replication_, static_cast<std::uint32_t>(members_.size()));

    const std::uint32_t vnodes = std::max<std::uint32_t>(1, options.vnodes);
    ring_.reserve(members_.size() * vnodes);
    for (std::uint32_t m = 0; m < members_.size(); ++m) {
        const std::uint64_t base =
            mix64((std::uint64_t{members_[m].host} << 16) | members_[m].port);
        for (std::uint32_t v = 0; v < vnodes; ++v) {
            ring_.push_back({mix64(base ^ (std::uint64_t{v} * 0xC2B2AE3D27D4EB4Full)), m});
        }
    }
    std::sort(ring_.begin(), ring_.end(), [](const VirtualNode& a, const VirtualNode& b) {
        // Point collisions across members are astronomically unlikely but
        // must still order deterministically.
        return a.point != b.point ? a.point < b.point : a.member < b.member;
    });
}

template <typename Visit>
void ShardRing::walk_owners(std::uint64_t start, Visit&& visit) const {
    const auto begin = std::lower_bound(
        ring_.begin(), ring_.end(), start,
        [](const VirtualNode& n, std::uint64_t p) { return n.point < p; });
    // Bitmap of members already collected; group sizes are small (a BDN
    // peer group is tens of nodes, not thousands).
    std::uint64_t seen_mask = 0;
    std::vector<bool> seen_large;
    const bool large = members_.size() > 64;
    if (large) seen_large.assign(members_.size(), false);
    std::uint32_t collected = 0;
    for (std::size_t step = 0; step < ring_.size() && collected < effective_replication_;
         ++step) {
        const std::size_t index =
            (static_cast<std::size_t>(begin - ring_.begin()) + step) % ring_.size();
        const std::uint32_t member = ring_[index].member;
        const bool already =
            large ? seen_large[member] : ((seen_mask >> member) & 1ull) != 0;
        if (already) continue;
        if (large) {
            seen_large[member] = true;
        } else {
            seen_mask |= 1ull << member;
        }
        ++collected;
        if (!visit(member)) return;
    }
}

std::vector<Endpoint> ShardRing::owners(const Uuid& broker_id) const {
    std::vector<Endpoint> out;
    if (ring_.empty()) return out;
    out.reserve(effective_replication_);
    walk_owners(point(broker_id), [&](std::uint32_t member) {
        out.push_back(members_[member]);
        return true;
    });
    return out;
}

bool ShardRing::owns(const Endpoint& member, const Uuid& broker_id) const {
    if (ring_.empty()) return false;
    bool found = false;
    walk_owners(point(broker_id), [&](std::uint32_t m) {
        if (members_[m] == member) {
            found = true;
            return false;
        }
        return true;
    });
    return found;
}

}  // namespace narada::discovery
