// Broker join orchestration.
//
// "Similarly, an entity may wish to add a broker to this network. In both
// these cases it is essential for the entity to discover a broker" (paper
// §1.1). The second use of discovery: a NEW BROKER finds the best existing
// broker to peer with, links to it, and then advertises itself so BDNs and
// future requesters see it — closing the loop that lets "newly added
// brokers within the system [be] assimilated faster" (§1.3).
#pragma once

#include <algorithm>
#include <functional>
#include <optional>

#include "broker/broker.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"

namespace narada::discovery {

/// Runs one discovery on behalf of a broker and wires the result.
class BrokerJoiner {
public:
    struct Result {
        bool success = false;
        /// The broker we peered with (unset on failure).
        std::optional<Endpoint> attached_to;
        /// The full discovery report for diagnostics.
        DiscoveryReport report;
    };
    using Callback = std::function<void(const Result&)>;

    /// `broker` is the joining broker, `plugin` its discovery service (for
    /// self-identification and re-advertisement) and `client` a discovery
    /// client bound on the same host. All must outlive the join.
    BrokerJoiner(broker::Broker& broker, BrokerDiscoveryPlugin& plugin,
                 DiscoveryClient& client)
        : broker_(broker), plugin_(plugin), client_(client) {}

    /// Discover the nearest existing broker (ignoring ourselves, in case
    /// our own advertisement already circulates), peer with it, then
    /// (re-)advertise. The callback fires when the join settles.
    void join(Callback callback) {
        client_.discover([this, callback = std::move(callback)](
                             const DiscoveryReport& report) {
            Result result;
            result.report = report;
            const std::size_t choice = pick_peer(report);
            if (choice != kNoChoice) {
                const Endpoint peer = report.candidates[choice].response.endpoint;
                broker_.connect_to_peer(peer);
                // Make the newcomer visible: direct ads to configured BDNs
                // plus the public advertisement topic, which now reaches
                // the network through the fresh link (§2.3).
                plugin_.advertise();
                result.success = true;
                result.attached_to = peer;
            }
            callback(result);
        });
    }

private:
    static constexpr std::size_t kNoChoice = static_cast<std::size_t>(-1);

    /// The selected candidate unless it is us or an existing peer; then the
    /// best other member of the target set. Skipping established peers
    /// matters when a RejoinSupervisor re-runs the join to regain a peer
    /// floor above one: re-linking an existing peer gains nothing.
    [[nodiscard]] std::size_t pick_peer(const DiscoveryReport& report) const {
        if (!report.success) return kNoChoice;
        const Uuid self = plugin_.identity().broker_id;
        const std::vector<Endpoint> peered = broker_.peers();
        auto usable = [&](std::size_t index) {
            const DiscoveryResponse& r = report.candidates[index].response;
            return r.broker_id != self &&
                   std::find(peered.begin(), peered.end(), r.endpoint) == peered.end();
        };
        if (report.selected && usable(*report.selected)) return *report.selected;
        for (std::size_t index : report.target_set) {
            if (usable(index)) return index;
        }
        return kNoChoice;
    }

    broker::Broker& broker_;
    BrokerDiscoveryPlugin& plugin_;
    DiscoveryClient& client_;
};

}  // namespace narada::discovery
