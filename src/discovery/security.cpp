#include "discovery/security.hpp"

#include <cstring>

#include "wire/msg_types.hpp"

namespace narada::discovery {
namespace {

using crypto::Aes128;
using crypto::EnvelopeError;

constexpr std::uint8_t kSubtypeHandshake = 1;
constexpr std::uint8_t kSubtypeSealed = 2;
constexpr std::uint8_t kSubtypeSigned = 3;

/// Certificate chains longer than this are rejected before any signature
/// work — a hostile handshake cannot buy unbounded RSA verification.
constexpr std::uint16_t kMaxChainLength = 8;

/// Canonical bytes the key-binding signature covers: the session key plus
/// both identities, so a wrapped key replayed toward a different recipient
/// (or under a different signer name) fails verification.
Bytes key_binding_bytes(const Bytes& key, std::string_view signer, std::string_view recipient) {
    wire::ByteWriter writer;
    writer.blob(key);
    writer.str(signer);
    writer.str(recipient);
    return writer.take();
}

}  // namespace

SecurityContext::SecurityContext(std::string identity, crypto::RsaKeyPair keys,
                                 std::vector<crypto::Certificate> chain,
                                 std::vector<crypto::Certificate> roots,
                                 const config::SecurityConfig& config, const Clock& clock,
                                 Rng& rng)
    : identity_(std::move(identity)),
      keys_(std::move(keys)),
      chain_(std::move(chain)),
      roots_(std::move(roots)),
      config_(config),
      clock_(clock),
      rng_(rng),
      tx_sessions_(config.session_cache_size),
      rx_sessions_(config.session_cache_size) {}

crypto::CertStatus SecurityContext::add_peer_chain(const std::vector<crypto::Certificate>& chain) {
    const crypto::CertStatus status = crypto::verify_chain(chain, roots_, clock_);
    if (status != crypto::CertStatus::kOk) return status;
    peer_keys_[chain.front().subject] = chain.front().public_key;
    return status;
}

void SecurityContext::add_peer_key(std::string_view peer, const crypto::RsaPublicKey& key) {
    peer_keys_[std::string(peer)] = key;
}

const crypto::RsaPublicKey* SecurityContext::peer_key(std::string_view peer) const {
    // The directory is cold-path only (handshakes), so the temporary string
    // for the lookup is fine.
    const auto it = peer_keys_.find(std::string(peer));
    return it == peer_keys_.end() ? nullptr : &it->second;
}

void SecurityContext::map_endpoint(const Endpoint& endpoint, std::string_view peer) {
    endpoint_identities_[endpoint] = std::string(peer);
}

std::string_view SecurityContext::identity_at(const Endpoint& endpoint) const {
    const auto it = endpoint_identities_.find(endpoint);
    return it == endpoint_identities_.end() ? std::string_view{} : std::string_view(it->second);
}

bool SecurityContext::session_expired_tx(const crypto::SessionKeyCache::Session& s) const {
    return config_.rekey_interval > 0 &&
           clock_.now() - s.established_at >= config_.rekey_interval;
}

bool SecurityContext::session_expired_rx(const crypto::SessionKeyCache::Session& s) const {
    // Receivers tolerate twice the rekey interval so a sender mid-rekey
    // never races its own in-flight traffic.
    return config_.rekey_interval > 0 &&
           clock_.now() - s.established_at >= 2 * config_.rekey_interval;
}

void SecurityContext::write_part(const crypto::SessionKeyCache::Session& session,
                                 std::span<const std::uint8_t> payload, wire::ByteWriter& out,
                                 std::size_t header_start, bool sealed) {
    Aes128::Block tag;
    if (sealed) {
        Aes128::Block iv;
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng_.next());
        out.raw(iv.data(), iv.size());

        scratch_cipher_.resize(Aes128::padded_size(payload.size()));
        session.cipher.encrypt_cbc(payload, iv, scratch_cipher_.data());

        // The tag covers every header byte after the type octet (subtype,
        // signer, key id, IV — or the whole handshake preamble) plus the
        // ciphertext, and is computed before the ciphertext is appended,
        // while the header span is stable.
        const std::span<const std::uint8_t> header{out.bytes().data() + header_start,
                                                   out.size() - header_start};
        tag = session.mac.compute2(header, scratch_cipher_);
        out.u32(static_cast<std::uint32_t>(scratch_cipher_.size()));
        out.raw(scratch_cipher_.data(), scratch_cipher_.size());
    } else {
        const std::span<const std::uint8_t> header{out.bytes().data() + header_start,
                                                   out.size() - header_start};
        tag = session.mac.compute2(header, payload);
        out.u32(static_cast<std::uint32_t>(payload.size()));
        out.raw(payload.data(), payload.size());
    }
    out.raw(tag.data(), tag.size());
}

void SecurityContext::read_part(const crypto::SessionKeyCache::Session& session,
                                wire::ByteReader& reader, std::size_t header_start, bool sealed,
                                SecureOpenResult& result) {
    std::span<const std::uint8_t> iv_span{};
    if (sealed) {
        const std::size_t iv_pos = reader.position();
        reader.skip(Aes128::kBlockSize);
        iv_span = reader.span_from(iv_pos);
    }
    // Everything between the subtype octet and the body's length prefix is
    // the authenticated header — exactly what the seal side MACed.
    const std::span<const std::uint8_t> header = reader.span_from(header_start);
    const std::span<const std::uint8_t> body = reader.blob_view();
    const std::size_t tag_pos = reader.position();
    reader.skip(Aes128::kBlockSize);
    const std::span<const std::uint8_t> tag_span = reader.span_from(tag_pos);
    if (reader.remaining() != 0) {
        result.error = EnvelopeError::kTrailingGarbage;
        return;
    }

    // Authenticate before any decryption: a forged datagram costs one CMAC.
    Aes128::Block tag;
    std::memcpy(tag.data(), tag_span.data(), tag.size());
    const Aes128::Block expected = session.mac.compute2(header, body);
    if (!crypto::tags_equal(expected, tag)) {
        result.error = EnvelopeError::kBadTag;
        return;
    }

    if (sealed) {
        if (body.empty() || body.size() % Aes128::kBlockSize != 0) {
            result.error = EnvelopeError::kCipherAlignment;
            return;
        }
        Aes128::Block iv;
        std::memcpy(iv.data(), iv_span.data(), iv.size());
        if (!session.cipher.decrypt_cbc(body, iv, scratch_plain_)) {
            result.error = EnvelopeError::kBadPadding;
            return;
        }
        result.payload = {scratch_plain_.data(), scratch_plain_.size()};
    } else {
        result.payload = body;
    }
    result.error = EnvelopeError::kOk;
}

bool SecurityContext::seal_datagram(std::span<const std::uint8_t> payload, std::string_view peer,
                                    wire::ByteWriter& out, bool force_handshake) {
    if (!config_.enabled()) return false;
    const bool sealed = config_.sealing();

    crypto::SessionKeyCache::Session* session = tx_sessions_.find(peer);
    const bool rekey = session != nullptr && session_expired_tx(*session);
    if (session != nullptr && !rekey && !force_handshake) {
        // Fast path: ride the cached session — no RSA anywhere.
        stats_.session_hits++;
        if (inst_.cache_hits != nullptr) inst_.cache_hits->inc();
        out.u8(wire::kMsgSecureEnvelope);
        const std::size_t header_start = out.size();
        out.u8(sealed ? kSubtypeSealed : kSubtypeSigned);
        out.str(identity_);
        out.u64(session->key_id);
        write_part(*session, payload, out, header_start, sealed);
        stats_.seals++;
        if (inst_.seals != nullptr) inst_.seals->inc();
        return true;
    }

    // Handshake path. Everything fallible happens before the first byte is
    // written, so a refusal leaves `out` untouched for the plain fallback.
    const crypto::RsaPublicKey* peer_pub = peer_key(peer);
    if (peer_pub == nullptr) {
        stats_.seal_refusals++;
        return false;
    }
    Aes128::Key key;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng_.next());
    const Bytes key_bytes(key.begin(), key.end());
    const auto wrapped = crypto::rsa_encrypt(*peer_pub, key_bytes, rng_);
    if (!wrapped) {
        stats_.seal_refusals++;
        return false;  // peer modulus too small to wrap a session key
    }
    const Bytes key_sig =
        crypto::rsa_sign(keys_.private_key, key_binding_bytes(key_bytes, identity_, peer));

    if (rekey) stats_.rekeys++;
    crypto::SessionKeyCache::Session& fresh = tx_sessions_.put(peer, key, clock_.now());

    out.u8(wire::kMsgSecureEnvelope);
    const std::size_t header_start = out.size();
    out.u8(kSubtypeHandshake);
    out.str(identity_);
    out.str(peer);
    out.u16(static_cast<std::uint16_t>(chain_.size()));
    for (const auto& cert : chain_) cert.encode(out);
    out.blob(*wrapped);
    out.blob(key_sig);
    out.u8(sealed ? 1 : 0);
    write_part(fresh, payload, out, header_start, sealed);

    stats_.seals++;
    stats_.session_misses++;
    stats_.handshakes_sent++;
    if (inst_.seals != nullptr) inst_.seals->inc();
    if (inst_.cache_misses != nullptr) inst_.cache_misses->inc();
    if (inst_.handshakes != nullptr) inst_.handshakes->inc();
    return true;
}

SecureOpenResult SecurityContext::open_datagram(wire::ByteReader& reader) {
    SecureOpenResult result;
    const std::size_t start = reader.position();
    try {
        const std::uint8_t subtype = reader.u8();
        switch (subtype) {
            case kSubtypeSealed:
            case kSubtypeSigned: {
                result.signer = reader.str_view();
                const std::uint64_t key_id = reader.u64();

                // Drain-batch memo: a burst of datagrams from one peer (the
                // common shape inside a recvmmsg drain) skips the LRU walk.
                // The memo is only trusted on a key-id match; the tag check
                // still authenticates the signer, so a forged signer name
                // over a memoized session dies at kBadTag.
                crypto::SessionKeyCache::Session* session = nullptr;
                if (memo_rx_session_ != nullptr && memo_rx_key_id_ == key_id) {
                    session = memo_rx_session_;
                    stats_.memo_hits++;
                } else {
                    session = rx_sessions_.find(result.signer);
                    if (session != nullptr && session->key_id != key_id) {
                        // The sender rekeyed (or we hold a stale session);
                        // its retransmit arrives as a fresh handshake.
                        result.error = EnvelopeError::kKeyMismatch;
                        count_open_error(result.error);
                        return result;
                    }
                    if (session != nullptr) {
                        memo_rx_session_ = session;
                        memo_rx_key_id_ = key_id;
                    }
                }
                if (session == nullptr) {
                    stats_.session_misses++;
                    if (inst_.cache_misses != nullptr) inst_.cache_misses->inc();
                    result.error = EnvelopeError::kNoSession;
                    count_open_error(result.error);
                    return result;
                }
                if (session_expired_rx(*session)) {
                    memo_rx_session_ = nullptr;
                    rx_sessions_.erase(result.signer);
                    stats_.session_misses++;
                    if (inst_.cache_misses != nullptr) inst_.cache_misses->inc();
                    result.error = EnvelopeError::kNoSession;
                    count_open_error(result.error);
                    return result;
                }
                stats_.session_hits++;
                if (inst_.cache_hits != nullptr) inst_.cache_hits->inc();

                read_part(*session, reader, start, subtype == kSubtypeSealed, result);
                if (result.ok()) {
                    stats_.opens++;
                    if (inst_.opens != nullptr) inst_.opens->inc();
                } else {
                    count_open_error(result.error);
                }
                return result;
            }

            case kSubtypeHandshake: {
                const std::string_view signer = reader.str_view();
                const std::string_view recipient = reader.str_view();
                if (recipient != identity_) {
                    result.error = EnvelopeError::kRecipientMismatch;
                    count_open_error(result.error);
                    return result;
                }
                const std::uint16_t chain_len = reader.u16();
                if (chain_len > kMaxChainLength) {
                    result.error = EnvelopeError::kBadCertChain;
                    count_open_error(result.error);
                    return result;
                }
                std::vector<crypto::Certificate> chain;
                chain.reserve(chain_len);
                for (std::uint16_t i = 0; i < chain_len; ++i) {
                    chain.push_back(crypto::Certificate::decode(reader));
                }

                const crypto::RsaPublicKey* signer_pub = nullptr;
                if (chain.empty()) {
                    // Chainless handshake: only accepted from peers whose
                    // key was provisioned out of band.
                    signer_pub = peer_key(signer);
                    if (signer_pub == nullptr) {
                        result.error = EnvelopeError::kUnknownSigner;
                        count_open_error(result.error);
                        return result;
                    }
                } else {
                    if (chain.front().subject != signer ||
                        crypto::verify_chain(chain, roots_, clock_) !=
                            crypto::CertStatus::kOk) {
                        result.error = EnvelopeError::kBadCertChain;
                        count_open_error(result.error);
                        return result;
                    }
                    // A verified chain also teaches us the peer's key, so
                    // we can seal toward it later without provisioning.
                    signer_pub = &(peer_keys_[std::string(signer)] = chain.front().public_key);
                }

                const Bytes wrapped = reader.blob();
                const Bytes key_sig = reader.blob();
                const auto key_bytes = crypto::rsa_decrypt(keys_.private_key, wrapped);
                if (!key_bytes) {
                    result.error = EnvelopeError::kSessionDecrypt;
                    count_open_error(result.error);
                    return result;
                }
                if (key_bytes->size() != Aes128::kKeySize) {
                    result.error = EnvelopeError::kSessionSize;
                    count_open_error(result.error);
                    return result;
                }
                if (!crypto::rsa_verify(*signer_pub,
                                        key_binding_bytes(*key_bytes, signer, identity_),
                                        key_sig)) {
                    result.error = EnvelopeError::kBadKeySignature;
                    count_open_error(result.error);
                    return result;
                }
                const std::uint8_t sealed_flag = reader.u8();

                Aes128::Key key;
                std::memcpy(key.data(), key_bytes->data(), key.size());
                crypto::SessionKeyCache::Session& fresh =
                    rx_sessions_.put(signer, key, clock_.now());
                memo_rx_session_ = &fresh;
                memo_rx_key_id_ = fresh.key_id;

                result.signer = signer;
                result.handshake = true;
                read_part(fresh, reader, start, sealed_flag != 0, result);
                if (result.ok()) {
                    stats_.opens++;
                    stats_.handshakes_accepted++;
                    if (inst_.opens != nullptr) inst_.opens->inc();
                    if (inst_.handshakes != nullptr) inst_.handshakes->inc();
                } else {
                    count_open_error(result.error);
                }
                return result;
            }

            default:
                result.error = EnvelopeError::kUnknownSubtype;
                count_open_error(result.error);
                return result;
        }
    } catch (const wire::WireError&) {
        // Every length field is bounds-checked by the reader; truncated or
        // forged lengths land here instead of reading past the buffer.
        result = SecureOpenResult{};
        result.error = EnvelopeError::kTruncated;
        count_open_error(result.error);
        return result;
    }
}

void SecurityContext::count_open_error(EnvelopeError error) {
    stats_.open_errors++;
    if (inst_.open_errors != nullptr) inst_.open_errors->inc();
    if (error == EnvelopeError::kBadTag || error == EnvelopeError::kBadCertChain ||
        error == EnvelopeError::kBadKeySignature) {
        stats_.verify_failures++;
        if (inst_.verify_failures != nullptr) inst_.verify_failures->inc();
    }
}

void SecurityContext::set_observability(obs::MetricsRegistry* metrics, const std::string& node) {
    if (metrics == nullptr) return;
    inst_.seals = &metrics->counter("crypto_seals", node);
    inst_.opens = &metrics->counter("crypto_opens", node);
    inst_.handshakes = &metrics->counter("crypto_handshakes", node);
    inst_.cache_hits = &metrics->counter("crypto_cache_hits", node);
    inst_.cache_misses = &metrics->counter("crypto_cache_misses", node);
    inst_.verify_failures = &metrics->counter("crypto_verify_failures", node);
    inst_.open_errors = &metrics->counter("crypto_open_errors", node);
}

}  // namespace narada::discovery
