#include "discovery/messages.hpp"

namespace narada::discovery {
namespace {

constexpr std::uint32_t kMaxListLength = 64;
constexpr std::size_t kEndpointWireSize = 4 + 2;  // host u32 + port u16

void encode_string_list(wire::ByteWriter& writer, const std::vector<std::string>& list) {
    writer.u32(static_cast<std::uint32_t>(list.size()));
    for (const std::string& item : list) writer.str(item);
}

std::vector<std::string> decode_string_list(wire::ByteReader& reader) {
    const std::uint32_t count = reader.u32();
    if (count > kMaxListLength) throw wire::WireError("string list too long");
    std::vector<std::string> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(reader.str());
    return out;
}

/// Validate and step over a string list without materializing it (the
/// borrowed-view decoders capture it inside their raw span instead).
void skip_string_list(wire::ByteReader& reader) {
    const std::uint32_t count = reader.u32();
    if (count > kMaxListLength) throw wire::WireError("string list too long");
    for (std::uint32_t i = 0; i < count; ++i) (void)reader.str_view();
}

std::size_t string_list_size(const std::vector<std::string>& list) {
    std::size_t n = 4;
    for (const std::string& item : list) n += 4 + item.size();
    return n;
}

void encode_endpoint(wire::ByteWriter& writer, const Endpoint& ep) {
    writer.u32(ep.host);
    writer.u16(ep.port);
}

Endpoint decode_endpoint(wire::ByteReader& reader) {
    Endpoint ep;
    ep.host = reader.u32();
    ep.port = reader.u16();
    return ep;
}

}  // namespace

void BrokerAdvertisement::encode(wire::ByteWriter& writer) const {
    writer.uuid(broker_id);
    writer.str(broker_name);
    writer.str(hostname);
    encode_endpoint(writer, endpoint);
    encode_string_list(writer, protocols);
    writer.str(realm);
    writer.str(geo_location);
    writer.str(institution);
}

BrokerAdvertisement BrokerAdvertisement::decode(wire::ByteReader& reader) {
    BrokerAdvertisement ad;
    ad.broker_id = reader.uuid();
    ad.broker_name = reader.str();
    ad.hostname = reader.str();
    ad.endpoint = decode_endpoint(reader);
    ad.protocols = decode_string_list(reader);
    ad.realm = reader.str();
    ad.geo_location = reader.str();
    ad.institution = reader.str();
    return ad;
}

std::size_t BrokerAdvertisement::measured_size() const {
    return 16 + (4 + broker_name.size()) + (4 + hostname.size()) + kEndpointWireSize +
           string_list_size(protocols) + (4 + realm.size()) + (4 + geo_location.size()) +
           (4 + institution.size());
}

BrokerAdvertisementView BrokerAdvertisementView::peek(wire::ByteReader& reader) {
    const std::size_t start = reader.position();
    BrokerAdvertisementView v;
    v.broker_id = reader.uuid();
    v.broker_name = reader.str_view();
    v.hostname = reader.str_view();
    v.endpoint = decode_endpoint(reader);
    skip_string_list(reader);
    v.realm = reader.str_view();
    v.geo_location = reader.str_view();
    v.institution = reader.str_view();
    v.raw = reader.span_from(start);
    return v;
}

BrokerAdvertisement BrokerAdvertisementView::materialize() const {
    wire::ByteReader reader(raw);
    return BrokerAdvertisement::decode(reader);
}

void DiscoveryRequest::encode(wire::ByteWriter& writer) const {
    writer.uuid(request_id);
    writer.str(requester_hostname);
    encode_endpoint(writer, reply_to);
    encode_string_list(writer, protocols);
    writer.str(credential);
    writer.str(realm);
    trace.encode(writer);
}

DiscoveryRequest DiscoveryRequest::decode(wire::ByteReader& reader) {
    DiscoveryRequest req;
    req.request_id = reader.uuid();
    req.requester_hostname = reader.str();
    req.reply_to = decode_endpoint(reader);
    req.protocols = decode_string_list(reader);
    req.credential = reader.str();
    req.realm = reader.str();
    req.trace = obs::TraceContext::decode(reader);
    return req;
}

std::size_t DiscoveryRequest::measured_size() const {
    return 16 + (4 + requester_hostname.size()) + kEndpointWireSize +
           string_list_size(protocols) + (4 + credential.size()) + (4 + realm.size()) +
           obs::TraceContext::kWireSize;
}

DiscoveryRequestView DiscoveryRequestView::peek(wire::ByteReader& reader) {
    const std::size_t start = reader.position();
    DiscoveryRequestView v;
    v.request_id = reader.uuid();
    v.requester_hostname = reader.str_view();
    v.reply_to = decode_endpoint(reader);
    skip_string_list(reader);
    v.credential = reader.str_view();
    v.realm = reader.str_view();
    v.trace = obs::TraceContext::decode(reader);
    v.raw = reader.span_from(start);
    return v;
}

DiscoveryRequest DiscoveryRequestView::materialize() const {
    wire::ByteReader reader(raw);
    return DiscoveryRequest::decode(reader);
}

void DiscoveryResponse::encode(wire::ByteWriter& writer) const {
    writer.uuid(request_id);
    writer.i64(sent_utc);
    writer.uuid(broker_id);
    writer.str(broker_name);
    writer.str(hostname);
    encode_endpoint(writer, endpoint);
    encode_string_list(writer, protocols);
    writer.u32(metrics.connections);
    writer.u32(metrics.broker_links);
    writer.f64(metrics.cpu_load);
    writer.u64(metrics.total_memory);
    writer.u64(metrics.free_memory);
    writer.boolean(overloaded);
    trace.encode(writer);
}

DiscoveryResponse DiscoveryResponse::decode(wire::ByteReader& reader) {
    DiscoveryResponse resp;
    resp.request_id = reader.uuid();
    resp.sent_utc = reader.i64();
    resp.broker_id = reader.uuid();
    resp.broker_name = reader.str();
    resp.hostname = reader.str();
    resp.endpoint = decode_endpoint(reader);
    resp.protocols = decode_string_list(reader);
    resp.metrics.connections = reader.u32();
    resp.metrics.broker_links = reader.u32();
    resp.metrics.cpu_load = reader.f64();
    resp.metrics.total_memory = reader.u64();
    resp.metrics.free_memory = reader.u64();
    resp.overloaded = reader.boolean();
    resp.trace = obs::TraceContext::decode(reader);
    return resp;
}

std::size_t DiscoveryResponse::measured_size() const {
    return 16 + 8 + 16 + (4 + broker_name.size()) + (4 + hostname.size()) +
           kEndpointWireSize + string_list_size(protocols) + 4 + 4 + 8 + 8 + 8 + 1 +
           obs::TraceContext::kWireSize;
}

DiscoveryResponseView DiscoveryResponseView::peek(wire::ByteReader& reader) {
    const std::size_t start = reader.position();
    DiscoveryResponseView v;
    v.request_id = reader.uuid();
    v.sent_utc = reader.i64();
    v.broker_id = reader.uuid();
    v.broker_name = reader.str_view();
    v.hostname = reader.str_view();
    v.endpoint = decode_endpoint(reader);
    skip_string_list(reader);
    v.metrics.connections = reader.u32();
    v.metrics.broker_links = reader.u32();
    v.metrics.cpu_load = reader.f64();
    v.metrics.total_memory = reader.u64();
    v.metrics.free_memory = reader.u64();
    v.overloaded = reader.boolean();
    v.trace = obs::TraceContext::decode(reader);
    v.raw = reader.span_from(start);
    return v;
}

DiscoveryResponse DiscoveryResponseView::materialize() const {
    wire::ByteReader reader(raw);
    return DiscoveryResponse::decode(reader);
}

void RegistrySyncEntry::encode(wire::ByteWriter& writer) const {
    ad.encode(writer);
    writer.i64(lease_remaining);
    writer.u64(origin);
    writer.u64(version);
}

RegistrySyncEntry RegistrySyncEntry::decode(wire::ByteReader& reader) {
    RegistrySyncEntry e;
    e.ad = BrokerAdvertisement::decode(reader);
    e.lease_remaining = reader.i64();
    e.origin = reader.u64();
    e.version = reader.u64();
    return e;
}

std::size_t RegistrySyncEntry::measured_size() const {
    return ad.measured_size() + 8 + 8 + 8;
}

void ShardQuery::encode(wire::ByteWriter& writer) const {
    writer.uuid(query_id);
    encode_endpoint(writer, reply_to);
    writer.u32(limit);
}

ShardQuery ShardQuery::decode(wire::ByteReader& reader) {
    ShardQuery q;
    q.query_id = reader.uuid();
    q.reply_to = decode_endpoint(reader);
    q.limit = reader.u32();
    return q;
}

std::size_t ShardQuery::measured_size() const { return 16 + kEndpointWireSize + 4; }

void ShardReply::encode(wire::ByteWriter& writer) const {
    writer.uuid(query_id);
    writer.u32(static_cast<std::uint32_t>(entries.size()));
    for (const Entry& e : entries) {
        writer.uuid(e.broker_id);
        encode_endpoint(writer, e.endpoint);
        writer.i64(e.rtt);
    }
}

ShardReply ShardReply::decode(wire::ByteReader& reader) {
    ShardReply r;
    r.query_id = reader.uuid();
    const std::uint32_t count = reader.u32();
    if (count > kMaxListLength) throw wire::WireError("shard reply too long");
    r.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Entry e;
        e.broker_id = reader.uuid();
        e.endpoint = decode_endpoint(reader);
        e.rtt = reader.i64();
        r.entries.push_back(e);
    }
    return r;
}

std::size_t ShardReply::measured_size() const {
    return 16 + 4 + entries.size() * (16 + kEndpointWireSize + 8);
}

void RegistryDigest::encode(wire::ByteWriter& writer) const {
    writer.u64(ring_hash);
    writer.u64(digest);
    writer.u32(count);
}

RegistryDigest RegistryDigest::decode(wire::ByteReader& reader) {
    RegistryDigest d;
    d.ring_hash = reader.u64();
    d.digest = reader.u64();
    d.count = reader.u32();
    return d;
}

}  // namespace narada::discovery
