#include "discovery/broker_plugin.hpp"

#include <algorithm>

#include "broker/topic.hpp"
#include "common/log.hpp"
#include "discovery/security.hpp"
#include "obs/json.hpp"
#include "wire/msg_types.hpp"

namespace narada::discovery {

BrokerDiscoveryPlugin::~BrokerDiscoveryPlugin() {
    if (scheduler_ != nullptr) scheduler_->cancel_timer(readvertise_timer_);
}

void BrokerDiscoveryPlugin::on_attach(broker::Broker& broker) {
    broker_ = &broker;
    scheduler_ = &broker.scheduler();
    seen_requests_ = broker::DedupCache(broker.config().dedup_cache_size);
    response_budget_ =
        TokenBucket(broker.config().discovery_rate_limit, broker.config().discovery_burst);
    if (identity_.broker_id.is_nil()) {
        identity_.broker_id = Uuid::random(broker.rng());
    }
    if (join_multicast_) {
        // Requests multicast by BDN-less clients (§7) arrive at the broker
        // endpoint like any other datagram.
        broker.transport().join_multicast(transport::kDiscoveryMulticastGroup,
                                          broker.endpoint());
    }
    // Under subscription routing the responder must declare its interest
    // in the reserved request topic or flooded requests stop reaching it.
    broker.add_plugin_interest(std::string(broker::kDiscoveryRequestTopic));
}

void BrokerDiscoveryPlugin::on_start() {
    advertise();
    // Soft-state registration: advertisements are fire-and-forget UDP and
    // "may also be lost in transit to the BDNs" (§7); periodic
    // re-advertisement heals losses and BDN restarts.
    const DurationUs interval = broker_->config().advertise_interval;
    if (interval > 0 && readvertise_timer_ == kInvalidTimerHandle) {
        schedule_readvertise(interval);
    }
}

void BrokerDiscoveryPlugin::schedule_readvertise(DurationUs interval) {
    readvertise_timer_ = scheduler_->schedule(interval, [this, interval] {
        advertise();
        schedule_readvertise(interval);
    });
}

BrokerAdvertisement BrokerDiscoveryPlugin::advertisement() const {
    BrokerAdvertisement ad;
    ad.broker_id = identity_.broker_id;
    ad.broker_name = broker_ ? broker_->name() : std::string{};
    ad.hostname = identity_.hostname;
    ad.endpoint = broker_ ? broker_->endpoint() : Endpoint{};
    ad.protocols = identity_.protocols;
    ad.realm = identity_.realm;
    ad.geo_location = identity_.geo_location;
    ad.institution = identity_.institution;
    return ad;
}

void BrokerDiscoveryPlugin::advertise() {
    if (broker_ == nullptr) return;
    const BrokerAdvertisement ad = advertisement();

    // Path 1: directly to the BDNs in the broker's configuration (§2.3).
    // Advertisements travel as datagrams — their loss is tolerated (§7).
    for (const Endpoint& bdn : broker_->config().advertise_bdns) {
        wire::ByteWriter writer(broker_->transport().acquire_buffer());
        writer.reserve(1 + ad.measured_size());
        writer.u8(wire::kMsgBrokerAdvertisement);
        ad.encode(writer);
        // Secured deployments seal the advertisement toward the BDN so it
        // can authenticate who is advertising (§9.1, authenticate_ads).
        // Loss tolerance carries over: a lost handshake is healed by the
        // next periodic re-advertisement, which re-handshakes.
        Bytes framed = writer.take();
        if (security_ != nullptr && security_->config().enabled()) {
            const std::string_view peer = security_->identity_at(bdn);
            wire::ByteWriter sealed(broker_->transport().acquire_buffer());
            if (!peer.empty() &&
                security_->seal_datagram({framed.data(), framed.size()}, peer, sealed)) {
                // Seal succeeded: the sealed frame replaces the plain one
                // (which the transport recycles with the next acquire).
                framed = sealed.take();
                ++stats_.advertisements_sealed;
            }
            // else: no identity/key for this BDN — fall back to plain.
        }
        broker_->transport().send_datagram(broker_->endpoint(), bdn, std::move(framed));
        ++stats_.advertisements_sent;
        if (inst_.ads) inst_.ads->inc();
    }

    // Path 2: on the public topic all BDNs subscribe to (§2.3).
    if (broker_->config().advertise_on_topic) {
        wire::ByteWriter payload;
        payload.reserve(ad.measured_size());
        ad.encode(payload);
        broker::Event event;
        event.topic = std::string(broker::kBrokerAdvertisementTopic);
        event.payload = payload.take();
        broker_->publish(std::move(event));
        ++stats_.advertisements_sent;
        if (inst_.ads) inst_.ads->inc();
    }
}

bool BrokerDiscoveryPlugin::on_message(const Endpoint& from, std::uint8_t type,
                                       wire::ByteReader& reader, bool reliable) {
    (void)from;
    (void)reliable;
    if (broker_ == nullptr) return false;
    switch (type) {
        case wire::kMsgDiscoveryRequest: {
            // Arrival paths: BDN injection (reliable), direct request from
            // a node that cached us in its target set (§7), or multicast.
            process_request(DiscoveryRequestView::peek(reader), /*flooded=*/false);
            return true;
        }
        case wire::kMsgSecureEnvelope: {
            // A directly-addressed secured request (§9.1): a client that
            // cached this broker in its target set and seals toward it.
            // Only discovery requests are accepted from inside an envelope;
            // anything else (including a nested envelope) is dropped.
            if (security_ == nullptr) return true;
            const SecureOpenResult opened = security_->open_datagram(reader);
            if (!opened.ok()) {
                ++stats_.secure_open_failures;
                NARADA_DEBUG("discovery", "{}: rejected envelope from {}: {}",
                             broker_->name(), from.str(), crypto::to_string(opened.error));
                return true;
            }
            ++stats_.secured_received;
            try {
                wire::ByteReader inner(opened.payload);
                if (inner.u8() == wire::kMsgDiscoveryRequest) {
                    process_request(DiscoveryRequestView::peek(inner), /*flooded=*/false);
                }
            } catch (const wire::WireError& e) {
                NARADA_DEBUG("discovery", "{}: malformed secured payload from {}: {}",
                             broker_->name(), from.str(), e.what());
            }
            return true;
        }
        case wire::kMsgRudpData:
        case wire::kMsgRudpAck: {
            // Acks (and stray data) for a bulk response lane. Frames from
            // endpoints we never opened a lane to are consumed and dropped —
            // a response channel only exists because we sent to that peer.
            const auto it = rudp_channels_.find(from);
            if (it != rudp_channels_.end()) it->second->handle_frame(type, reader);
            return true;
        }
        case wire::kMsgBdnAdvertisement: {
            // A (private) BDN announced itself; brokers "may have the
            // option to re-advertise their information at this newly added
            // BDN" (§2.4).
            const Endpoint bdn_endpoint{reader.u32(), reader.u16()};
            const BrokerAdvertisement ad = advertisement();
            wire::ByteWriter writer(broker_->transport().acquire_buffer());
            writer.reserve(1 + ad.measured_size());
            writer.u8(wire::kMsgBrokerAdvertisement);
            ad.encode(writer);
            broker_->transport().send_datagram(broker_->endpoint(), bdn_endpoint, writer.take());
            ++stats_.advertisements_sent;
            if (inst_.ads) inst_.ads->inc();
            return true;
        }
        default:
            return false;
    }
}

void BrokerDiscoveryPlugin::on_event(const broker::Event& event) {
    if (broker_ == nullptr) return;
    if (event.topic != broker::kDiscoveryRequestTopic) return;
    try {
        wire::ByteReader reader(event.payload);
        process_request(DiscoveryRequestView::peek(reader), /*flooded=*/true);
    } catch (const wire::WireError& e) {
        NARADA_DEBUG("discovery", "{}: bad flooded request: {}", broker_->name(), e.what());
    }
}

void BrokerDiscoveryPlugin::process_request(const DiscoveryRequestView& view, bool flooded) {
    ++stats_.requests_seen;
    if (inst_.seen) inst_.seen->inc();

    // A sampled request needs its trace parent rewritten to this broker's
    // span, which invalidates the borrowed bytes — hand it to the owned
    // slow path.
    if (spans_ != nullptr && view.trace.sampled()) {
        process_request(view.materialize(), flooded);
        return;
    }

    if (!seen_requests_.insert(view.request_id)) {
        ++stats_.duplicates_suppressed;
        if (inst_.duplicates) inst_.duplicates->inc();
        return;
    }

    if (!flooded) {
        // Re-publish on the reserved topic so the request floods the broker
        // network. The borrowed message region is the exact encoding we
        // would produce, so the flood payload is copied verbatim — no
        // decode-encode round trip on the hot path.
        broker::Event event;
        event.id = view.request_id;
        event.topic = std::string(broker::kDiscoveryRequestTopic);
        event.payload.assign(view.raw.begin(), view.raw.end());
        event.ttl = broker_->config().propagation_ttl;
        broker_->publish(std::move(event));
    }

    if (!policy_admits(view.credential, view.realm)) {
        ++stats_.policy_rejections;
        if (inst_.rejections) inst_.rejections->inc();
        return;
    }

    // Load shedding: a broker under a request storm answers only what its
    // discovery budget allows. The request has already flooded (above), so
    // shedding here silences this broker without silencing the network.
    if (response_budget_.limited() &&
        !response_budget_.try_consume(broker_->local_clock().now())) {
        ++stats_.requests_shed;
        if (inst_.shed) inst_.shed->inc();
        last_shed_ = broker_->local_clock().now();
        NARADA_DEBUG("discovery", "{}: shed discovery request {} (over budget)",
                     broker_->name(), view.request_id.str());
        return;
    }
    send_response(view.request_id, view.reply_to, view.trace);
}

void BrokerDiscoveryPlugin::process_request(DiscoveryRequest request, bool flooded) {
    // Receipt was already counted by the view entry point.

    // Open the broker-side span on a sampled request; the parent is
    // whatever hop delivered the request (BDN injection or a peer
    // broker's flood), so the recorded tree follows the actual
    // propagation path.
    std::uint64_t process_span = 0;
    if (spans_ != nullptr && request.trace.sampled()) {
        process_span =
            spans_->begin(request.trace.trace_id, request.trace.parent_span,
                          "broker.process", broker_->name(), broker_->utc().utc_now());
        if (process_span != 0) request.trace.parent_span = process_span;
    }
    const auto close_span = [this, process_span] {
        if (process_span != 0) spans_->end(process_span, broker_->utc().utc_now());
    };

    if (!seen_requests_.insert(request.request_id)) {
        // "so that additional CPU/network cycles are not expended on
        // previously processed requests" (§4).
        ++stats_.duplicates_suppressed;
        if (inst_.duplicates) inst_.duplicates->inc();
        close_span();
        return;
    }

    if (!flooded) {
        // Re-publish on the reserved topic so the request floods the
        // broker network. The event id *is* the request UUID, so the
        // overlay's duplicate suppression and ours agree. The trace parent
        // was just rewritten, so this path must re-encode.
        wire::ByteWriter payload;
        payload.reserve(request.measured_size());
        request.encode(payload);
        broker::Event event;
        event.id = request.request_id;
        event.topic = std::string(broker::kDiscoveryRequestTopic);
        event.payload = payload.take();
        event.ttl = broker_->config().propagation_ttl;
        broker_->publish(std::move(event));
    }

    if (!policy_admits(request.credential, request.realm)) {
        ++stats_.policy_rejections;
        if (inst_.rejections) inst_.rejections->inc();
        close_span();
        return;
    }

    // Load shedding: a broker under a request storm answers only what its
    // discovery budget allows. The request has already flooded (above), so
    // shedding here silences this broker without silencing the network.
    if (response_budget_.limited() &&
        !response_budget_.try_consume(broker_->local_clock().now())) {
        ++stats_.requests_shed;
        if (inst_.shed) inst_.shed->inc();
        last_shed_ = broker_->local_clock().now();
        NARADA_DEBUG("discovery", "{}: shed discovery request {} (over budget)",
                     broker_->name(), request.request_id.str());
        close_span();
        return;
    }
    send_response(request.request_id, request.reply_to, request.trace);
    close_span();
}

bool BrokerDiscoveryPlugin::overloaded() const {
    if (broker_ == nullptr || last_shed_ < 0) return false;
    return broker_->local_clock().now() - last_shed_ <= broker_->config().overload_hold;
}

bool BrokerDiscoveryPlugin::policy_admits(std::string_view credential,
                                          std::string_view realm) const {
    const config::BrokerConfig& cfg = broker_->config();
    // "not every broker within the broker network needs to respond" (§5).
    if (!cfg.respond_to_discovery) return false;
    // "A broker's response policy may predicate responses based on the
    // presentation of appropriate credentials" (§5).
    if (!cfg.required_credential.empty() && credential != cfg.required_credential) {
        return false;
    }
    // "responses be issued only if the request originated from within a
    // set of pre-defined network realms" (§5).
    if (!cfg.allowed_realms.empty() &&
        std::find(cfg.allowed_realms.begin(), cfg.allowed_realms.end(), realm) ==
            cfg.allowed_realms.end()) {
        return false;
    }
    return true;
}

void BrokerDiscoveryPlugin::send_response(const Uuid& request_id, const Endpoint& reply_to,
                                          const obs::TraceContext& trace) {
    DiscoveryResponse response;
    response.request_id = request_id;
    response.sent_utc = broker_->utc().utc_now();
    response.broker_id = identity_.broker_id;
    response.broker_name = broker_->name();
    response.hostname = identity_.hostname;
    response.endpoint = broker_->endpoint();
    response.protocols = identity_.protocols;
    response.metrics = broker_->metrics();
    response.overloaded = overloaded();
    // Echo the trace so the requester can attach its response event under
    // this broker's span (trace.parent_span was rewritten to our
    // `broker.process` span on the sampled path).
    response.trace = trace;

    // "The communication protocol used for transporting this response is
    // UDP" — deliberately lossy so that distant brokers self-filter (§5.2).
    wire::ByteWriter writer(broker_->transport().acquire_buffer());
    writer.reserve(1 + response.measured_size());
    writer.u8(wire::kMsgDiscoveryResponse);
    response.encode(writer);
    Bytes encoded = writer.take();

    // A response too big for one MTU-ish datagram goes over the bulk lane:
    // fragmented, NAK-repaired, paced. Small responses keep the paper's
    // lossy single-datagram semantics.
    const std::uint32_t threshold = broker_->config().response_rudp_threshold;
    if (threshold > 0 && encoded.size() > threshold) {
        if (transport::RudpChannel* lane = response_channel(reply_to)) {
            if (lane->state() == transport::RudpChannel::State::kAbandoned) lane->reset();
            if (lane->send_bulk(Bytes(encoded))) {
                ++stats_.responses_sent;
                ++stats_.responses_rudp;
                if (inst_.responses) inst_.responses->inc();
                return;
            }
        }
        // No lane available (map saturated or channel refused): fall back
        // to the lossy datagram rather than answering nothing.
    }
    broker_->transport().send_datagram(broker_->endpoint(), reply_to, std::move(encoded));
    ++stats_.responses_sent;
    if (inst_.responses) inst_.responses->inc();
}

transport::RudpChannel* BrokerDiscoveryPlugin::response_channel(const Endpoint& peer) {
    auto it = rudp_channels_.find(peer);
    if (it != rudp_channels_.end()) return it->second.get();
    if (rudp_channels_.size() >= kMaxResponseChannels) {
        // Evict a lane that is done (or given up); if every lane is
        // mid-transfer the new requester falls back to a datagram.
        auto victim = rudp_channels_.end();
        for (auto i = rudp_channels_.begin(); i != rudp_channels_.end(); ++i) {
            const transport::RudpChannel& lane = *i->second;
            if (lane.state() == transport::RudpChannel::State::kAbandoned ||
                (lane.in_flight() == 0 && lane.queued_segments() == 0)) {
                victim = i;
                break;
            }
        }
        if (victim == rudp_channels_.end()) return nullptr;
        rudp_channels_.erase(victim);
    }
    auto channel = std::make_unique<transport::RudpChannel>(
        broker_->scheduler(), broker_->transport(), broker_->local_clock(),
        broker_->endpoint(), peer, transport::RudpOptions{}, broker_->name() + "-resp");
    if (metrics_ != nullptr) {
        channel->set_observability(metrics_, broker_->name() + "->" + peer.str());
    }
    it = rudp_channels_.emplace(peer, std::move(channel)).first;
    return it->second.get();
}

void BrokerDiscoveryPlugin::set_observability(obs::MetricsRegistry* metrics,
                                              obs::SpanRecorder* spans) {
    metrics_ = metrics;
    spans_ = spans;
    inst_ = {};
    if (metrics == nullptr) return;
    const std::string node = broker_ != nullptr ? broker_->name() : identity_.hostname;
    inst_.seen = &metrics->counter("plugin_requests_seen", node);
    inst_.duplicates = &metrics->counter("plugin_duplicates_suppressed", node);
    inst_.responses = &metrics->counter("plugin_responses_sent", node);
    inst_.rejections = &metrics->counter("plugin_policy_rejections", node);
    inst_.shed = &metrics->counter("plugin_requests_shed", node);
    inst_.ads = &metrics->counter("plugin_advertisements_sent", node);
    seen_requests_.set_instruments(&metrics->counter("plugin_dedup_evictions", node),
                                   &metrics->gauge("plugin_dedup_occupancy", node));
    if (security_ != nullptr) security_->set_observability(metrics, node);
}

std::string BrokerDiscoveryPlugin::debug_snapshot() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "broker_plugin")
        .field("broker", broker_ != nullptr ? broker_->name() : identity_.hostname)
        .field("overloaded", overloaded())
        .field("dedup_occupancy", static_cast<std::uint64_t>(seen_requests_.size()))
        .field("dedup_evictions", seen_requests_.evictions());
    if (response_budget_.limited() && broker_ != nullptr) {
        // available() refills as a side effect; mirror through a copy so a
        // snapshot never perturbs the budget.
        TokenBucket probe = response_budget_;
        w.field("response_budget_tokens", probe.available(broker_->local_clock().now()), 3);
    }
    w.key("stats").begin_object()
        .field("requests_seen", stats_.requests_seen)
        .field("duplicates_suppressed", stats_.duplicates_suppressed)
        .field("responses_sent", stats_.responses_sent)
        .field("policy_rejections", stats_.policy_rejections)
        .field("advertisements_sent", stats_.advertisements_sent)
        .field("requests_shed", stats_.requests_shed)
        .field("responses_rudp", stats_.responses_rudp)
        .field("advertisements_sealed", stats_.advertisements_sealed)
        .field("secured_received", stats_.secured_received)
        .field("secure_open_failures", stats_.secure_open_failures)
        .end_object();
    if (!rudp_channels_.empty()) {
        w.key("response_lanes").begin_array();
        for (const auto& [peer, lane] : rudp_channels_) {
            w.begin_object()
                .field("peer", peer.str())
                .field("state", transport::to_string(lane->state()))
                .field("in_flight", static_cast<std::uint64_t>(lane->in_flight()))
                .end_object();
        }
        w.end_array();
    }
    w.end_object();
    return w.take();
}

}  // namespace narada::discovery
