// Broker Discovery Node (BDN).
//
// "Broker Discovery Nodes are registered nodes that facilitate the
// discovery of brokers within the broker network. BDNs maintain
// information regarding broker nodes within the system." (paper §2)
//
// A BDN:
//   * accepts broker advertisements sent directly to it, and — when
//     attached to a broker as a pub/sub client — advertisements published
//     on the public topic (§2.3), optionally filtered by realm;
//   * maintains a distance table by pinging registered brokers (§4: "could
//     easily be constructed by issuing ping requests");
//   * acknowledges discovery requests in a timely manner (§3) and is
//     idempotent under retransmission;
//   * propagates each request into the broker network by injecting it at
//     brokers chosen by the configured strategy — by default the closest
//     and the farthest broker, "to ensure that the broker discovery
//     request propagates faster through the broker network" (§4);
//   * as a private BDN, can require credentials before serving a request
//     and can announce itself to brokers so they re-advertise (§2.4).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/client.hpp"
#include "broker/dedup_cache.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/token_bucket.hpp"
#include "config/node_config.hpp"
#include "discovery/messages.hpp"
#include "discovery/registry_shard.hpp"
#include "discovery/scoring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "timesvc/ntp.hpp"
#include "transport/rudp_channel.hpp"
#include "transport/transport.hpp"

namespace narada::discovery {

class SecurityContext;
struct SecureOpenResult;

class Bdn final : public transport::MessageHandler {
public:
    struct RegisteredBroker {
        BrokerAdvertisement ad;
        TimeUs registered_at = 0;
        /// Measured round-trip to the broker; -1 until the first pong.
        DurationUs rtt = -1;
        TimeUs last_pong = 0;
        /// When the advertisement lease lapses (0 = no lease). Renewed only
        /// by a fresh advertisement, never by pongs.
        TimeUs lease_expires_at = 0;
        /// Version stamp for convergent replica merges: minted by `origin`
        /// (a BDN node id) whenever it accepts a fresh advertisement.
        /// (version, origin) totally orders concurrent writes of one id.
        std::uint64_t origin = 0;
        std::uint64_t version = 0;
    };

    struct Stats {
        std::uint64_t ads_received = 0;
        std::uint64_t ads_filtered = 0;  ///< rejected by realm policy (§2.3)
        std::uint64_t requests_received = 0;
        std::uint64_t duplicate_requests = 0;
        std::uint64_t acks_sent = 0;
        std::uint64_t injections = 0;
        std::uint64_t credential_rejections = 0;
        std::uint64_t pings_sent = 0;
        std::uint64_t pongs_received = 0;
        std::uint64_t registrations_expired = 0;  ///< soft-state evictions
        std::uint64_t leases_renewed = 0;         ///< re-advertisements in time
        std::uint64_t leases_expired = 0;         ///< ads aged out unrenewed

        // --- bounded ingest / load shedding (ingest_queue_limit > 0) --------
        std::uint64_t requests_shed_quota = 0;     ///< over per-source rate
        std::uint64_t requests_shed_overflow = 0;  ///< ingest queue full
        std::uint64_t requests_serviced = 0;       ///< dequeued and injected
        std::uint64_t queue_depth_peak = 0;        ///< high-water mark

        // --- bulk registry sync (registry_sync_interval > 0) -----------------
        std::uint64_t sync_pushes = 0;         ///< snapshots handed to the lane
        std::uint64_t sync_push_failures = 0;  ///< channel refused the payload
        std::uint64_t sync_received = 0;       ///< snapshots reassembled here
        std::uint64_t sync_brokers_learned = 0;  ///< ads ingested from snapshots
        std::uint64_t sync_skipped_unchanged = 0;  ///< digest-skip: peer up to date
        std::uint64_t sync_expired_dropped = 0;  ///< synced entries with lapsed leases

        // --- federated registry plane (peer_group, sharding) -----------------
        std::uint64_t ads_forwarded = 0;       ///< ads relayed to their ring owners
        std::uint64_t forwards_received = 0;   ///< forwarded ads stored here (owner)
        std::uint64_t forwards_dropped = 0;    ///< forwarded ads we don't own (stale ring)
        std::uint64_t shard_queries_sent = 0;
        std::uint64_t shard_queries_received = 0;
        std::uint64_t shard_replies_received = 0;
        std::uint64_t gathers = 0;             ///< scatter/gather coordinations started
        std::uint64_t gathers_partial = 0;     ///< injected on deadline, shards missing
        std::uint64_t anti_entropy_rounds = 0;
        std::uint64_t digests_sent = 0;
        std::uint64_t digests_matched = 0;     ///< shared range already converged
        std::uint64_t digest_mismatch_pushes = 0;  ///< repairs triggered by digests
        std::uint64_t digest_ring_mismatches = 0;  ///< digest from another ring epoch
        std::uint64_t rebalance_handoffs = 0;  ///< entries pushed on peer-group change

        // --- secured datapath (set_security) ---------------------------------
        std::uint64_t secured_received = 0;       ///< envelopes opened successfully
        std::uint64_t secure_open_failures = 0;   ///< envelopes rejected (typed error)
        std::uint64_t ads_rejected_unauthenticated = 0;  ///< authenticate_ads policy

        /// Every shed decision, for digests and logs.
        [[nodiscard]] std::uint64_t requests_shed() const {
            return requests_shed_quota + requests_shed_overflow;
        }
    };

    Bdn(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
        const Clock& local_clock, config::BdnConfig config, std::string name = {});
    ~Bdn() override;

    Bdn(const Bdn&) = delete;
    Bdn& operator=(const Bdn&) = delete;

    /// Begin the periodic distance-table refresh.
    void start();

    /// Attach to a broker as a pub/sub client on `client_endpoint` and
    /// subscribe to the public advertisement topic (§2.3). The BDN keeps
    /// the attachment alive for its lifetime.
    void attach_to_broker(const Endpoint& broker, const Endpoint& client_endpoint);

    /// Announce this (private) BDN to a broker so that it re-advertises
    /// here (§2.4).
    void announce_to(const Endpoint& broker);

    /// Directly register an advertisement (same as receiving it).
    void register_broker(BrokerAdvertisement ad);

    [[nodiscard]] std::size_t registered_count() const { return registry_.size(); }
    [[nodiscard]] std::vector<RegisteredBroker> registry() const;
    /// Registrations whose advertisement lease has lapsed but which have
    /// not been swept yet; the next refresh evicts them. Soak tests assert
    /// this reaches zero after churn quiesces.
    [[nodiscard]] std::size_t stale_count() const;
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const config::BdnConfig& config() const { return config_; }
    /// Requests admitted but not yet injected (bounded by
    /// `ingest_queue_limit`; always 0 in legacy inline mode).
    [[nodiscard]] std::size_t queue_depth() const { return ingest_queue_.size(); }

    /// Push a full-registry snapshot to every configured sync peer now
    /// (the periodic timer does this; tests can force a round). Pushes are
    /// skipped per peer while the registry digest is unchanged since the
    /// last successful push to that peer.
    void sync_registry();
    /// The RUDP lane to/from `peer` (created lazily); null if none exists
    /// yet. Exposes degradation state to tests and snapshots.
    [[nodiscard]] const transport::RudpChannel* sync_channel(const Endpoint& peer) const;

    // --- federated registry plane -------------------------------------------
    /// Two or more ring members: advertisements are sharded, discovery
    /// requests scatter/gather. One or zero: the paper's monolithic BDN.
    [[nodiscard]] bool federated() const { return ring_.size() > 1; }
    [[nodiscard]] const ShardRing& ring() const { return ring_; }
    /// Replace the peer group (membership change). Rebuilds the ring and
    /// hands every held advertisement off to its owners under the new ring;
    /// entries this BDN no longer owns stay as residue until their leases
    /// lapse, so requests in flight keep working through the transition.
    void set_peer_group(std::vector<Endpoint> members);
    /// Run one anti-entropy round now (the periodic timer does this; tests
    /// and soaks can force convergence checks).
    void run_anti_entropy();
    /// Scatter/gather coordinations currently awaiting shard replies.
    [[nodiscard]] std::size_t gather_depth() const { return gathers_.size(); }

    /// Wire this BDN into an observability plane. Any argument may be null
    /// (that facility is simply skipped). `utc` stamps trace spans — the
    /// BDN runs no NTP service of its own, so scenarios pass a source over
    /// the deployment's true clock. Call before traffic flows.
    void set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                           const timesvc::UtcSource* utc);
    /// Attach the secured-datapath context (nullable = security off). The
    /// BDN accepts kMsgSecureEnvelope datagrams through it and — when its
    /// config sets authenticate_ads — registers only advertisements that
    /// arrived through a verified envelope whose signer matches the
    /// advertised broker name. Not owned; must outlive the BDN.
    void set_security(SecurityContext* security);
    [[nodiscard]] SecurityContext* security() const { return security_; }
    /// JSON introspection dump: counters, queue state, and the lease /
    /// liveness age of every registered broker.
    [[nodiscard]] std::string debug_snapshot() const;

    // MessageHandler.
    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    /// Counted entry points; both delegate registration to
    /// register_advertisement after the realm filter.
    void handle_advertisement(const BrokerAdvertisement& ad);
    void handle_advertisement(const BrokerAdvertisementView& view);
    [[nodiscard]] bool realm_accepted(std::string_view realm) const;
    void register_advertisement(const BrokerAdvertisement& ad);

    /// Hot entry: dedup, credential policy and shed decisions run on the
    /// borrowed view; the request is only materialized when it is actually
    /// admitted, and an unsampled request is re-injected verbatim from the
    /// view's raw bytes (no re-encode).
    void handle_request(const Endpoint& from, const DiscoveryRequestView& view);
    /// Owned slow path for sampled requests: opens a `bdn.request` span and
    /// rewrites the trace parent before the request travels further (queue
    /// or injection), which forces the re-encode anyway.
    void handle_request(const Endpoint& from, DiscoveryRequest request);
    void handle_pong(const Endpoint& from, wire::ByteReader& reader);
    /// Dispatch the payload of a successfully opened secure envelope. Only
    /// perimeter message types (advertisements, discovery requests) are
    /// accepted inside an envelope; an envelope-in-envelope is rejected.
    void handle_secured(const Endpoint& from, const SecureOpenResult& opened);

    /// Bounded-ingest admission (ingest_queue_limit > 0): dedup filter,
    /// per-source quota, queue bound. Admitted requests are acked and
    /// queued; shed requests are dropped without an ack so the requester
    /// fails over instead of waiting out its window. `request_span` is the
    /// already-open `bdn.request` span (0 = unsampled).
    void admit_request(const Endpoint& from, DiscoveryRequest request,
                       std::uint64_t request_span);
    /// View twin of admit_request for unsampled requests: every shed
    /// decision happens on borrowed data; only an admitted request pays for
    /// materialization.
    void admit_request(const Endpoint& from, const DiscoveryRequestView& view);
    /// Service one queued request and re-arm the drain timer.
    void drain_queue();
    void send_ack(const Uuid& request_id, const Endpoint& reply_to);

    /// Injection points for the configured strategy, best-effort ordered.
    [[nodiscard]] std::vector<Endpoint> injection_targets();
    /// The local registry's unexpired entries as injection candidates.
    [[nodiscard]] std::vector<InjectionCandidate> local_candidates() const;

    /// Sequentially inject `request` at `targets`, spacing sends by the
    /// configured per-injection processing cost. A sampled request gets a
    /// `bdn.inject` span spanning first to last send.
    void inject(const DiscoveryRequest& request, const std::vector<Endpoint>& targets);
    /// Verbatim injection of an unsampled request: the borrowed message
    /// region is framed once into a pooled buffer shared by every spaced
    /// send — no decode-encode round trip.
    void inject_raw(std::span<const std::uint8_t> raw, const std::vector<Endpoint>& targets);

    void refresh_distances();

    // --- federated registry plane helpers -------------------------------
    /// Ring over `config_.peer_group` (forcing `local_` in if absent) plus
    /// an order-independent hash of the member list, used to fence digests
    /// from other ring epochs.
    void rebuild_ring(const std::vector<Endpoint>& members);
    [[nodiscard]] std::uint64_t mint_version() { return ++version_counter_; }
    /// Relay `raw` (a framed advertisement region) to every ring owner of
    /// `broker_id` other than this node. Never applied to already-forwarded
    /// ads, so relays cannot loop.
    void forward_ad(const Uuid& broker_id, std::span<const std::uint8_t> raw);
    /// Merge one synced entry (v2 path): realm filter, lease clamp to the
    /// sender's remaining lease, (version, origin) conflict resolution.
    void merge_entry(const RegistrySyncEntry& entry);
    /// `entry` for the wire: the ad plus this node's remaining lease.
    [[nodiscard]] RegistrySyncEntry make_sync_entry(const RegisteredBroker& rb) const;
    /// Order-independent digest over (id, origin, version) of unexpired
    /// entries; `peer` non-null restricts to entries both nodes own under
    /// the ring (the anti-entropy shared range). Leases are deliberately
    /// excluded: clock skew must not defeat the digest-skip.
    [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> registry_digest(
        const Endpoint* peer) const;
    /// One v2 bulk push of `entries` to `peer` over the RUDP lane.
    bool push_entries(const Endpoint& peer, const std::vector<RegistrySyncEntry>& entries);
    void handle_shard_query(const Endpoint& from, const ShardQuery& query);
    void handle_shard_reply(const Endpoint& from, const ShardReply& reply);
    void handle_registry_digest(const Endpoint& from, const RegistryDigest& digest);
    /// Begin a scatter/gather for an admitted request: local candidates are
    /// seeded immediately, ShardQuery datagrams fan out to the other ring
    /// members, and the gather finalizes when all reply or the per-shard
    /// deadline fires (partial-result degradation).
    void start_gather(const Uuid& request_id, std::shared_ptr<const Bytes> framed);
    void finalize_gather(const Uuid& request_id, bool partial);
    /// Spaced sends of an already-framed request to `targets` (gather path;
    /// mirrors inject_raw but shares ownership with the pending timer).
    void inject_shared(std::shared_ptr<const Bytes> framed, const std::vector<Endpoint>& targets);
    /// Type octet + encoded request in one pooled buffer, shared across the
    /// gather's lifetime.
    [[nodiscard]] std::shared_ptr<const Bytes> frame_request(const DiscoveryRequest& request);
    void arm_anti_entropy_timer();

    /// The bulk lane to/from `peer`, created on first use. Channels are
    /// bidirectional: the same instance carries outbound snapshots and
    /// acks inbound ones.
    transport::RudpChannel& rudp_channel(const Endpoint& peer);
    /// Re-arm the periodic registry push.
    void arm_sync_timer();
    /// Reassembled bulk payload from `peer` (framed with its type octet).
    void handle_bulk_payload(const Endpoint& peer, const Bytes& payload);

    /// Span-time source; only valid when spans are wired.
    [[nodiscard]] TimeUs span_now() const { return utc_->utc_now(); }
    [[nodiscard]] bool tracing() const { return spans_ != nullptr && utc_ != nullptr; }

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    config::BdnConfig config_;
    std::string name_;
    Rng rng_;

    std::map<Uuid, RegisteredBroker> registry_;        // by broker_id
    std::map<Endpoint, Uuid> endpoint_to_broker_;
    broker::DedupCache seen_requests_{1000};
    std::unique_ptr<broker::PubSubClient> attachment_;
    TimerHandle refresh_timer_ = kInvalidTimerHandle;
    bool started_ = false;
    Stats stats_;

    // Bulk registry sync over the RUDP lane, keyed by the peer endpoint
    // (outbound snapshots and inbound frames share one channel per peer).
    std::map<Endpoint, std::unique_ptr<transport::RudpChannel>> rudp_channels_;
    TimerHandle sync_timer_ = kInvalidTimerHandle;
    /// Digest of the last snapshot successfully handed to each peer's lane;
    /// sync_registry skips a peer while its digest is unchanged. Cleared
    /// when the peer's channel is reset (the peer may have lost state).
    std::map<Endpoint, std::uint64_t> last_push_digest_;

    // Federated registry plane (peer_group with 2+ members).
    /// This node's identity for version stamps, derived from `local_`.
    std::uint64_t node_id_ = 0;
    /// Lamport-style counter: bumped on every accepted fresh ad, advanced
    /// past any merged version so later local writes win conflicts.
    std::uint64_t version_counter_ = 0;
    ShardRing ring_;
    /// Order-independent fingerprint of the member list; anti-entropy
    /// digests from another ring epoch are ignored.
    std::uint64_t ring_hash_ = 0;
    /// One in-flight scatter/gather coordination.
    struct GatherState {
        std::shared_ptr<const Bytes> framed;       ///< request, framed once
        std::vector<InjectionCandidate> candidates;
        std::set<Endpoint> pending;                ///< shards yet to reply
        TimerHandle timer = kInvalidTimerHandle;   ///< per-shard deadline
        std::uint64_t span = 0;                    ///< open trace span (0 = unsampled)
    };
    std::map<Uuid, GatherState> gathers_;
    /// Gather-table bound: beyond this, requests degrade to local-only
    /// injection instead of growing BDN memory under request floods.
    static constexpr std::size_t kMaxGathers = 128;
    TimerHandle anti_entropy_timer_ = kInvalidTimerHandle;

    // Observability (all optional; null = off).
    obs::MetricsRegistry* metrics_ = nullptr;  ///< kept for lazy RUDP channels
    obs::SpanRecorder* spans_ = nullptr;
    SecurityContext* security_ = nullptr;      ///< secured datapath (null = off)
    const timesvc::UtcSource* utc_ = nullptr;
    struct Instruments {
        obs::Counter* requests = nullptr;
        obs::Counter* duplicates = nullptr;
        obs::Counter* acks = nullptr;
        obs::Counter* injections = nullptr;
        obs::Counter* shed_quota = nullptr;
        obs::Counter* shed_overflow = nullptr;
        obs::Counter* serviced = nullptr;
        obs::Counter* ads = nullptr;
        obs::Counter* pings = nullptr;
        obs::Counter* pongs = nullptr;
        obs::Counter* leases_expired = nullptr;
        obs::Counter* ads_forwarded = nullptr;
        obs::Counter* gathers_partial = nullptr;
        obs::Counter* sync_skipped = nullptr;
        obs::Counter* rejected_ads = nullptr;  ///< crypto_rejected_ads
        obs::Gauge* queue_depth = nullptr;
        obs::Histogram* fanout = nullptr;  ///< injection targets per request
    } inst_;

    // Bounded ingest (ingest_queue_limit > 0).
    struct QueuedRequest {
        DiscoveryRequest request;
        std::uint64_t span = 0;  ///< open `bdn.request` span (0 = unsampled)
    };
    std::deque<QueuedRequest> ingest_queue_;
    TimerHandle drain_timer_ = kInvalidTimerHandle;
    /// Per-source-host rate limiters; bounded so spoofed source floods
    /// cannot grow BDN memory (the map resets when it overflows).
    std::map<HostId, TokenBucket> source_buckets_;
    static constexpr std::size_t kMaxTrackedSources = 1024;
    /// Bound on lazily-created RUDP channels (spoofed-frame protection).
    static constexpr std::size_t kMaxSyncChannels = 64;
};

}  // namespace narada::discovery
