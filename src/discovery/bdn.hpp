// Broker Discovery Node (BDN).
//
// "Broker Discovery Nodes are registered nodes that facilitate the
// discovery of brokers within the broker network. BDNs maintain
// information regarding broker nodes within the system." (paper §2)
//
// A BDN:
//   * accepts broker advertisements sent directly to it, and — when
//     attached to a broker as a pub/sub client — advertisements published
//     on the public topic (§2.3), optionally filtered by realm;
//   * maintains a distance table by pinging registered brokers (§4: "could
//     easily be constructed by issuing ping requests");
//   * acknowledges discovery requests in a timely manner (§3) and is
//     idempotent under retransmission;
//   * propagates each request into the broker network by injecting it at
//     brokers chosen by the configured strategy — by default the closest
//     and the farthest broker, "to ensure that the broker discovery
//     request propagates faster through the broker network" (§4);
//   * as a private BDN, can require credentials before serving a request
//     and can announce itself to brokers so they re-advertise (§2.4).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broker/client.hpp"
#include "broker/dedup_cache.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/token_bucket.hpp"
#include "config/node_config.hpp"
#include "discovery/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "timesvc/ntp.hpp"
#include "transport/rudp_channel.hpp"
#include "transport/transport.hpp"

namespace narada::discovery {

class Bdn final : public transport::MessageHandler {
public:
    struct RegisteredBroker {
        BrokerAdvertisement ad;
        TimeUs registered_at = 0;
        /// Measured round-trip to the broker; -1 until the first pong.
        DurationUs rtt = -1;
        TimeUs last_pong = 0;
        /// When the advertisement lease lapses (0 = no lease). Renewed only
        /// by a fresh advertisement, never by pongs.
        TimeUs lease_expires_at = 0;
    };

    struct Stats {
        std::uint64_t ads_received = 0;
        std::uint64_t ads_filtered = 0;  ///< rejected by realm policy (§2.3)
        std::uint64_t requests_received = 0;
        std::uint64_t duplicate_requests = 0;
        std::uint64_t acks_sent = 0;
        std::uint64_t injections = 0;
        std::uint64_t credential_rejections = 0;
        std::uint64_t pings_sent = 0;
        std::uint64_t pongs_received = 0;
        std::uint64_t registrations_expired = 0;  ///< soft-state evictions
        std::uint64_t leases_renewed = 0;         ///< re-advertisements in time
        std::uint64_t leases_expired = 0;         ///< ads aged out unrenewed

        // --- bounded ingest / load shedding (ingest_queue_limit > 0) --------
        std::uint64_t requests_shed_quota = 0;     ///< over per-source rate
        std::uint64_t requests_shed_overflow = 0;  ///< ingest queue full
        std::uint64_t requests_serviced = 0;       ///< dequeued and injected
        std::uint64_t queue_depth_peak = 0;        ///< high-water mark

        // --- bulk registry sync (registry_sync_interval > 0) -----------------
        std::uint64_t sync_pushes = 0;         ///< snapshots handed to the lane
        std::uint64_t sync_push_failures = 0;  ///< channel refused the payload
        std::uint64_t sync_received = 0;       ///< snapshots reassembled here
        std::uint64_t sync_brokers_learned = 0;  ///< ads ingested from snapshots

        /// Every shed decision, for digests and logs.
        [[nodiscard]] std::uint64_t requests_shed() const {
            return requests_shed_quota + requests_shed_overflow;
        }
    };

    Bdn(Scheduler& scheduler, transport::Transport& transport, const Endpoint& local,
        const Clock& local_clock, config::BdnConfig config, std::string name = {});
    ~Bdn() override;

    Bdn(const Bdn&) = delete;
    Bdn& operator=(const Bdn&) = delete;

    /// Begin the periodic distance-table refresh.
    void start();

    /// Attach to a broker as a pub/sub client on `client_endpoint` and
    /// subscribe to the public advertisement topic (§2.3). The BDN keeps
    /// the attachment alive for its lifetime.
    void attach_to_broker(const Endpoint& broker, const Endpoint& client_endpoint);

    /// Announce this (private) BDN to a broker so that it re-advertises
    /// here (§2.4).
    void announce_to(const Endpoint& broker);

    /// Directly register an advertisement (same as receiving it).
    void register_broker(BrokerAdvertisement ad);

    [[nodiscard]] std::size_t registered_count() const { return registry_.size(); }
    [[nodiscard]] std::vector<RegisteredBroker> registry() const;
    /// Registrations whose advertisement lease has lapsed but which have
    /// not been swept yet; the next refresh evicts them. Soak tests assert
    /// this reaches zero after churn quiesces.
    [[nodiscard]] std::size_t stale_count() const;
    [[nodiscard]] const Endpoint& endpoint() const { return local_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const config::BdnConfig& config() const { return config_; }
    /// Requests admitted but not yet injected (bounded by
    /// `ingest_queue_limit`; always 0 in legacy inline mode).
    [[nodiscard]] std::size_t queue_depth() const { return ingest_queue_.size(); }

    /// Push a full-registry snapshot to every configured sync peer now
    /// (the periodic timer does this; tests can force a round).
    void sync_registry();
    /// The RUDP lane to/from `peer` (created lazily); null if none exists
    /// yet. Exposes degradation state to tests and snapshots.
    [[nodiscard]] const transport::RudpChannel* sync_channel(const Endpoint& peer) const;

    /// Wire this BDN into an observability plane. Any argument may be null
    /// (that facility is simply skipped). `utc` stamps trace spans — the
    /// BDN runs no NTP service of its own, so scenarios pass a source over
    /// the deployment's true clock. Call before traffic flows.
    void set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans,
                           const timesvc::UtcSource* utc);
    /// JSON introspection dump: counters, queue state, and the lease /
    /// liveness age of every registered broker.
    [[nodiscard]] std::string debug_snapshot() const;

    // MessageHandler.
    void on_datagram(const Endpoint& from, const Bytes& data) override;

private:
    /// Counted entry points; both delegate registration to
    /// register_advertisement after the realm filter.
    void handle_advertisement(const BrokerAdvertisement& ad);
    void handle_advertisement(const BrokerAdvertisementView& view);
    [[nodiscard]] bool realm_accepted(std::string_view realm) const;
    void register_advertisement(const BrokerAdvertisement& ad);

    /// Hot entry: dedup, credential policy and shed decisions run on the
    /// borrowed view; the request is only materialized when it is actually
    /// admitted, and an unsampled request is re-injected verbatim from the
    /// view's raw bytes (no re-encode).
    void handle_request(const Endpoint& from, const DiscoveryRequestView& view);
    /// Owned slow path for sampled requests: opens a `bdn.request` span and
    /// rewrites the trace parent before the request travels further (queue
    /// or injection), which forces the re-encode anyway.
    void handle_request(const Endpoint& from, DiscoveryRequest request);
    void handle_pong(const Endpoint& from, wire::ByteReader& reader);

    /// Bounded-ingest admission (ingest_queue_limit > 0): dedup filter,
    /// per-source quota, queue bound. Admitted requests are acked and
    /// queued; shed requests are dropped without an ack so the requester
    /// fails over instead of waiting out its window. `request_span` is the
    /// already-open `bdn.request` span (0 = unsampled).
    void admit_request(const Endpoint& from, DiscoveryRequest request,
                       std::uint64_t request_span);
    /// View twin of admit_request for unsampled requests: every shed
    /// decision happens on borrowed data; only an admitted request pays for
    /// materialization.
    void admit_request(const Endpoint& from, const DiscoveryRequestView& view);
    /// Service one queued request and re-arm the drain timer.
    void drain_queue();
    void send_ack(const Uuid& request_id, const Endpoint& reply_to);

    /// Injection points for the configured strategy, best-effort ordered.
    [[nodiscard]] std::vector<Endpoint> injection_targets();

    /// Sequentially inject `request` at `targets`, spacing sends by the
    /// configured per-injection processing cost. A sampled request gets a
    /// `bdn.inject` span spanning first to last send.
    void inject(const DiscoveryRequest& request, const std::vector<Endpoint>& targets);
    /// Verbatim injection of an unsampled request: the borrowed message
    /// region is framed once into a pooled buffer shared by every spaced
    /// send — no decode-encode round trip.
    void inject_raw(std::span<const std::uint8_t> raw, const std::vector<Endpoint>& targets);

    void refresh_distances();

    /// The bulk lane to/from `peer`, created on first use. Channels are
    /// bidirectional: the same instance carries outbound snapshots and
    /// acks inbound ones.
    transport::RudpChannel& rudp_channel(const Endpoint& peer);
    /// Re-arm the periodic registry push.
    void arm_sync_timer();
    /// Reassembled bulk payload from `peer` (framed with its type octet).
    void handle_bulk_payload(const Endpoint& peer, const Bytes& payload);

    /// Span-time source; only valid when spans are wired.
    [[nodiscard]] TimeUs span_now() const { return utc_->utc_now(); }
    [[nodiscard]] bool tracing() const { return spans_ != nullptr && utc_ != nullptr; }

    Scheduler& scheduler_;
    transport::Transport& transport_;
    Endpoint local_;
    const Clock& local_clock_;
    config::BdnConfig config_;
    std::string name_;
    Rng rng_;

    std::map<Uuid, RegisteredBroker> registry_;        // by broker_id
    std::map<Endpoint, Uuid> endpoint_to_broker_;
    broker::DedupCache seen_requests_{1000};
    std::unique_ptr<broker::PubSubClient> attachment_;
    TimerHandle refresh_timer_ = kInvalidTimerHandle;
    bool started_ = false;
    Stats stats_;

    // Bulk registry sync over the RUDP lane, keyed by the peer endpoint
    // (outbound snapshots and inbound frames share one channel per peer).
    std::map<Endpoint, std::unique_ptr<transport::RudpChannel>> rudp_channels_;
    TimerHandle sync_timer_ = kInvalidTimerHandle;

    // Observability (all optional; null = off).
    obs::MetricsRegistry* metrics_ = nullptr;  ///< kept for lazy RUDP channels
    obs::SpanRecorder* spans_ = nullptr;
    const timesvc::UtcSource* utc_ = nullptr;
    struct Instruments {
        obs::Counter* requests = nullptr;
        obs::Counter* duplicates = nullptr;
        obs::Counter* acks = nullptr;
        obs::Counter* injections = nullptr;
        obs::Counter* shed_quota = nullptr;
        obs::Counter* shed_overflow = nullptr;
        obs::Counter* serviced = nullptr;
        obs::Counter* ads = nullptr;
        obs::Counter* pings = nullptr;
        obs::Counter* pongs = nullptr;
        obs::Counter* leases_expired = nullptr;
        obs::Gauge* queue_depth = nullptr;
        obs::Histogram* fanout = nullptr;  ///< injection targets per request
    } inst_;

    // Bounded ingest (ingest_queue_limit > 0).
    struct QueuedRequest {
        DiscoveryRequest request;
        std::uint64_t span = 0;  ///< open `bdn.request` span (0 = unsampled)
    };
    std::deque<QueuedRequest> ingest_queue_;
    TimerHandle drain_timer_ = kInvalidTimerHandle;
    /// Per-source-host rate limiters; bounded so spoofed source floods
    /// cannot grow BDN memory (the map resets when it overflows).
    std::map<HostId, TokenBucket> source_buckets_;
    static constexpr std::size_t kMaxTrackedSources = 1024;
    /// Bound on lazily-created RUDP channels (spoofed-frame protection).
    static constexpr std::size_t kMaxSyncChannels = 64;
};

}  // namespace narada::discovery
