// Broker-side discovery service.
//
// A BrokerPlugin giving a broker everything the paper asks of it:
//   * advertise with configured BDNs on startup, directly and/or on the
//     public advertisement topic (§2.1-2.3);
//   * re-advertise when a (private) BDN announces itself (§2.4);
//   * answer discovery requests arriving by BDN injection, overlay flood,
//     multicast, or directly from a requesting node, subject to the
//     broker's response policy (§5) and the duplicate cache (§4);
//   * re-publish each fresh request on the reserved discovery topic so it
//     floods the broker network (§10: "brokers also propagate discovery
//     requests on a predefined topic");
//   * respond over UDP to the requester's reply endpoint (§5.2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.hpp"
#include "broker/dedup_cache.hpp"
#include "common/token_bucket.hpp"
#include "discovery/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/rudp_channel.hpp"

namespace narada::discovery {

class SecurityContext;

/// Static identity a broker presents in advertisements and responses.
struct BrokerIdentity {
    Uuid broker_id;
    std::string hostname;
    std::vector<std::string> protocols{"tcp", "udp"};
    std::string realm;
    std::string geo_location;
    std::string institution;
};

class BrokerDiscoveryPlugin final : public broker::BrokerPlugin {
public:
    struct Stats {
        std::uint64_t requests_seen = 0;
        std::uint64_t duplicates_suppressed = 0;
        std::uint64_t responses_sent = 0;
        std::uint64_t policy_rejections = 0;
        std::uint64_t advertisements_sent = 0;
        /// Fresh requests dropped by the discovery rate limiter
        /// (`discovery_rate_limit` knob); the request still floods so other
        /// brokers can answer, but this broker stays silent.
        std::uint64_t requests_shed = 0;
        /// Responses that exceeded `response_rudp_threshold` and went out
        /// over the reliable-UDP bulk lane instead of one lossy datagram.
        std::uint64_t responses_rudp = 0;

        // --- secured datapath (set_security) ---------------------------------
        std::uint64_t advertisements_sealed = 0;  ///< ads sent inside envelopes
        std::uint64_t secured_received = 0;       ///< envelopes opened successfully
        std::uint64_t secure_open_failures = 0;   ///< envelopes rejected (typed error)
    };

    explicit BrokerDiscoveryPlugin(BrokerIdentity identity, bool join_multicast = true)
        : identity_(std::move(identity)), join_multicast_(join_multicast) {}
    ~BrokerDiscoveryPlugin() override;

    // BrokerPlugin interface.
    void on_attach(broker::Broker& broker) override;
    void on_start() override;
    bool on_message(const Endpoint& from, std::uint8_t type, wire::ByteReader& reader,
                    bool reliable) override;
    void on_event(const broker::Event& event) override;

    /// Send this broker's advertisement now (startup does this; tests and
    /// churn scenarios can re-trigger it).
    void advertise();

    [[nodiscard]] const BrokerIdentity& identity() const { return identity_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] BrokerAdvertisement advertisement() const;
    /// True while the broker shed discovery work within the last
    /// `overload_hold`; advertised in responses so selection steers new
    /// clients away until the hot spot drains.
    [[nodiscard]] bool overloaded() const;

    /// Wire the plugin into an observability plane (either pointer may be
    /// null). Call after on_attach so the broker's name labels the
    /// instruments; spans are stamped off the broker's NTP-corrected UTC
    /// source. The metrics hot path is atomics-only.
    void set_observability(obs::MetricsRegistry* metrics, obs::SpanRecorder* spans);
    /// JSON introspection dump: counters, overload state, response budget.
    [[nodiscard]] std::string debug_snapshot() const;

    /// Attach the secured-datapath context (nullable = security off).
    /// Directly-addressed advertisements are sealed toward any BDN whose
    /// identity is mapped on the context, and kMsgSecureEnvelope datagrams
    /// (direct secured requests, §9.1) are opened and answered. Not owned;
    /// must outlive the plugin.
    void set_security(SecurityContext* security) { security_ = security; }
    [[nodiscard]] SecurityContext* security() const { return security_; }

private:
    /// Hot entry for every arrival path (`flooded` = arrived as an overlay
    /// event, so it must not be re-published). Dedup, policy and shed
    /// decisions run on the borrowed view; a fresh unsampled request is
    /// re-published verbatim from the view's raw bytes (no re-encode).
    void process_request(const DiscoveryRequestView& view, bool flooded);
    /// Owned slow path for sampled requests: the trace parent is rewritten
    /// to this broker's span before re-publication / response, which is
    /// what links the hop-by-hop span tree together (and forces the
    /// re-encode the fast path avoids).
    void process_request(DiscoveryRequest request, bool flooded);

    /// The broker's response policy (§5): credentials and realm checks.
    [[nodiscard]] bool policy_admits(std::string_view credential, std::string_view realm) const;

    /// Arm the next periodic re-advertisement.
    void schedule_readvertise(DurationUs interval);

    void send_response(const Uuid& request_id, const Endpoint& reply_to,
                       const obs::TraceContext& trace);

    /// The bulk lane to `peer` for oversized responses, created on demand.
    /// Null when the channel map is full of mid-transfer lanes — the caller
    /// then falls back to a single (lossy) datagram.
    transport::RudpChannel* response_channel(const Endpoint& peer);

    BrokerIdentity identity_;
    bool join_multicast_;
    broker::Broker* broker_ = nullptr;
    Scheduler* scheduler_ = nullptr;  ///< outlives the broker; used in dtor
    broker::DedupCache seen_requests_{1000};
    TimerHandle readvertise_timer_ = kInvalidTimerHandle;
    Stats stats_;

    // Load shedding (discovery_rate_limit > 0).
    TokenBucket response_budget_{0.0, 0.0};
    TimeUs last_shed_ = -1;  ///< -1 until the first shed

    // Bulk lanes for oversized responses (response_rudp_threshold > 0),
    // keyed by the requester's reply endpoint. Bounded: idle or abandoned
    // lanes are evicted before a new requester gets one.
    std::map<Endpoint, std::unique_ptr<transport::RudpChannel>> rudp_channels_;
    static constexpr std::size_t kMaxResponseChannels = 32;

    // Observability (optional; null = off).
    obs::MetricsRegistry* metrics_ = nullptr;  ///< kept for lazy RUDP lanes
    obs::SpanRecorder* spans_ = nullptr;
    SecurityContext* security_ = nullptr;      ///< secured datapath (null = off)
    struct Instruments {
        obs::Counter* seen = nullptr;
        obs::Counter* duplicates = nullptr;
        obs::Counter* responses = nullptr;
        obs::Counter* rejections = nullptr;
        obs::Counter* shed = nullptr;
        obs::Counter* ads = nullptr;
    } inst_;
};

}  // namespace narada::discovery
