#include "transport/shard_runtime.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <system_error>

#include "obs/json.hpp"

namespace narada::transport {
namespace {

/// Which shard of which runtime the calling thread is. Stamped by each
/// shard's loop_start hook before its first loop iteration, so routing
/// decisions on reactor threads are a TLS read — no lock, no map.
thread_local ShardRuntime* tls_runtime = nullptr;
thread_local std::size_t tls_shard = 0;

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

}  // namespace

// --- ShardPort --------------------------------------------------------------

void ShardPort::bind(const Endpoint& local, MessageHandler* handler) {
    rt_->do_bind(local, handler, static_cast<int>(shard_));
}
void ShardPort::unbind(const Endpoint& local) { rt_->unbind(local); }
void ShardPort::send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) {
    rt_->send_datagram(from, to, std::move(data));
}
void ShardPort::send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) {
    rt_->send_reliable(from, to, std::move(data));
}
void ShardPort::join_multicast(MulticastGroup group, const Endpoint& local) {
    rt_->join_multicast(group, local);
}
void ShardPort::leave_multicast(MulticastGroup group, const Endpoint& local) {
    rt_->leave_multicast(group, local);
}
void ShardPort::send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) {
    rt_->send_multicast(group, from, std::move(data));
}
Bytes ShardPort::acquire_buffer() { return rt_->acquire_buffer(); }

TimerHandle ShardPort::schedule(DurationUs delay, std::function<void()> task) {
    return rt_->schedule_on(shard_, delay, std::move(task));
}
void ShardPort::cancel_timer(TimerHandle handle) { rt_->cancel_encoded(handle); }

// --- ShardRuntime -----------------------------------------------------------

ShardRuntime::ShardRuntime(ShardRuntimeOptions options) : options_(std::move(options)) {
    const std::size_t n = std::max<std::size_t>(1, options_.shards);

    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        PosixTransportOptions t = options_.transport;
        t.reuseport = n > 1;  // one shard = plain PosixTransport semantics
        t.pin_cpu = i < options_.pin_cpus.size() ? options_.pin_cpus[i] : -1;
        t.loop_start = [this, i] {
            tls_runtime = this;
            tls_shard = i;
        };
        shards_.push_back(std::make_unique<PosixTransport>(std::move(t)));
    }

    ports_.reset(new ShardPort[n]);
    for (std::size_t i = 0; i < n; ++i) {
        ports_[i].rt_ = this;
        ports_[i].shard_ = i;
    }

    if (n > 1) {
        rings_.resize(n * n);
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t c = 0; c < n; ++c) {
                if (p == c) continue;
                rings_[p * n + c] = std::make_unique<SpscRing<Handoff>>(options_.handoff_depth);
            }
        }
        eventfds_.resize(n, -1);
        for (std::size_t c = 0; c < n; ++c) {
            eventfds_[c] = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
            if (eventfds_[c] < 0) {
                throw std::system_error(errno, std::generic_category(), "eventfd");
            }
            shards_[c]->add_external(eventfds_[c], [this, c] { drain_handoffs(c); });
        }
    }
}

ShardRuntime::~ShardRuntime() {
    // Joining the loop threads first guarantees no shard is mid-handoff
    // when the rings destruct; leftover ring payloads are freed with their
    // slots (SpscRing destructor drain).
    shards_.clear();
    for (int fd : eventfds_) {
        if (fd >= 0) ::close(fd);
    }
}

int ShardRuntime::current_shard() const {
    return tls_runtime == this ? static_cast<int>(tls_shard) : -1;
}

std::size_t ShardRuntime::route_shard() const {
    // A reactor thread uses its own shard's sockets and pool (its mutex is
    // only ever contended with control-plane calls); external threads all
    // funnel to shard 0, keeping their acquire/send/release cycle inside
    // one pool.
    return tls_runtime == this ? tls_shard : 0;
}

std::size_t ShardRuntime::flow_shard(const Endpoint& from, const Endpoint& to) const {
    const std::uint64_t key = (static_cast<std::uint64_t>(from.host) << 32) ^
                              (static_cast<std::uint64_t>(from.port) << 16) ^
                              (static_cast<std::uint64_t>(to.host) << 8) ^ to.port;
    return static_cast<std::size_t>(mix64(key) % shards_.size());
}

// --- binding ----------------------------------------------------------------

void ShardRuntime::bind(const Endpoint& local, MessageHandler* handler) {
    do_bind(local, handler, 0);
}
void ShardRuntime::bind_home(const Endpoint& local, MessageHandler* handler, std::size_t home) {
    do_bind(local, handler, static_cast<int>(std::min(home, shards_.size() - 1)));
}
void ShardRuntime::bind_spread(const Endpoint& local, MessageHandler* handler) {
    do_bind(local, handler, -1);
}

void ShardRuntime::do_bind(const Endpoint& local, MessageHandler* handler, int home) {
    if (handler == nullptr) throw std::invalid_argument("bind: null handler");
    const std::size_t n = shards_.size();
    if (home >= static_cast<int>(n)) home = static_cast<int>(n) - 1;

    std::scoped_lock lock(mutex_);
    if (const auto it = bound_.find(local); it != bound_.end()) {
        // Rebind: swap the delivery target in place (quiescent traffic
        // only, same contract as PosixTransport rebinding).
        it->second.target = handler;
        it->second.home = home;
        for (auto& proxy : it->second.proxies) {
            proxy->target = handler;
            proxy->home = home;
        }
        return;
    }

    BoundEndpoint be;
    be.target = handler;
    be.home = home;
    be.proxies.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        auto proxy = std::make_unique<DeliveryProxy>();
        proxy->rt = this;
        proxy->shard = s;
        proxy->target = handler;
        proxy->home = home;
        be.proxies.push_back(std::move(proxy));
    }
    auto [it, inserted] = bound_.emplace(local, std::move(be));
    std::size_t done = 0;
    try {
        for (; done < n; ++done) {
            shards_[done]->bind(local, it->second.proxies[done].get());
        }
    } catch (...) {
        for (std::size_t s = 0; s < done; ++s) shards_[s]->unbind(local);
        bound_.erase(it);
        throw;
    }
}

void ShardRuntime::unbind(const Endpoint& local) {
    std::scoped_lock lock(mutex_);
    const auto it = bound_.find(local);
    if (it == bound_.end()) return;
    for (auto& shard : shards_) shard->unbind(local);
    // In-flight handoffs hold the target MessageHandler*, not the proxy:
    // like PosixTransport, the handler itself must outlive any deliveries
    // still queued at unbind time.
    bound_.erase(it);
}

// --- data plane -------------------------------------------------------------

void ShardRuntime::send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) {
    shards_[route_shard()]->send_datagram(from, to, std::move(data));
}

void ShardRuntime::send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) {
    // Flow-hashed no matter the calling thread: every frame of a
    // (from, to) pair rides one shard's single TCP connection, so per-pair
    // FIFO survives sharding.
    shards_[flow_shard(from, to)]->send_reliable(from, to, std::move(data));
}

void ShardRuntime::join_multicast(MulticastGroup group, const Endpoint& local) {
    for (auto& shard : shards_) shard->join_multicast(group, local);
}
void ShardRuntime::leave_multicast(MulticastGroup group, const Endpoint& local) {
    for (auto& shard : shards_) shard->leave_multicast(group, local);
}
void ShardRuntime::send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) {
    shards_[route_shard()]->send_multicast(group, from, std::move(data));
}

Bytes ShardRuntime::acquire_buffer() { return shards_[route_shard()]->acquire_buffer(); }

// --- timers -----------------------------------------------------------------

TimerHandle ShardRuntime::schedule(DurationUs delay, std::function<void()> task) {
    return schedule_on(0, delay, std::move(task));
}
void ShardRuntime::cancel_timer(TimerHandle handle) { cancel_encoded(handle); }

TimerHandle ShardRuntime::schedule_on(std::size_t shard, DurationUs delay,
                                      std::function<void()> task) {
    const TimerHandle inner = shards_[shard]->schedule(delay, std::move(task));
    return encode_timer(shard, inner);
}

void ShardRuntime::cancel_encoded(TimerHandle handle) {
    if (handle == kInvalidTimerHandle) return;
    const auto tag = static_cast<std::size_t>(handle >> kTimerShardShift);
    if (tag == 0 || tag > shards_.size()) return;  // not one of ours
    const TimerHandle inner = handle & ((TimerHandle{1} << kTimerShardShift) - 1);
    shards_[tag - 1]->cancel_timer(inner);
}

// --- cross-shard handoff ----------------------------------------------------

void ShardRuntime::DeliveryProxy::on_datagram(const Endpoint& from, const Bytes& data) {
    if (home < 0 || static_cast<std::size_t>(home) == shard) {
        target->on_datagram(from, data);
        return;
    }
    rt->forward_frame(shard, static_cast<std::size_t>(home), from, data, false, target);
}

void ShardRuntime::DeliveryProxy::on_reliable(const Endpoint& from, const Bytes& data) {
    if (home < 0 || static_cast<std::size_t>(home) == shard) {
        target->on_reliable(from, data);
        return;
    }
    rt->forward_frame(shard, static_cast<std::size_t>(home), from, data, true, target);
}

bool ShardRuntime::forward(std::size_t producer, std::size_t consumer, Handoff&& h) {
    if (!ring(producer, consumer).push(std::move(h))) return false;
    // Signal after the push: a wakeup never precedes its handoff, so the
    // consumer cannot drain-then-sleep past a visible element.
    signal(consumer);
    return true;
}

void ShardRuntime::forward_frame(std::size_t producer, std::size_t consumer,
                                 const Endpoint& from, const Bytes& data, bool reliable,
                                 MessageHandler* target) {
    Handoff h;
    h.kind = reliable ? Handoff::Kind::kReliable : Handoff::Kind::kDatagram;
    h.producer = static_cast<std::uint8_t>(producer);
    h.from = from;
    h.handler = target;
    // The inbound bytes are a borrow of the arrival shard's receive
    // scratch; copy them into that shard's pool so the home shard gets a
    // stable payload and the buffer returns to the pool it came from.
    h.payload = shards_[producer]->acquire_buffer();
    h.payload.assign(data.begin(), data.end());
    if (!forward(producer, consumer, std::move(h))) {
        // Ring full: shed like UDP under pressure (a reliable frame is
        // dropped too — bounded rings beat unbounded memory; the RUDP/ TCP
        // layers above already handle loss and retransmit).
        shards_[producer]->release_buffer(std::move(h.payload));
        if (inst_.dropped != nullptr) inst_.dropped->shard(producer).inc();
        return;
    }
    if (inst_.forwarded != nullptr) inst_.forwarded->shard(producer).inc();
}

void ShardRuntime::signal(std::size_t consumer) {
    const std::uint64_t one = 1;
    (void)!::write(eventfds_[consumer], &one, sizeof(one));
}

void ShardRuntime::drain_handoffs(std::size_t consumer) {
    std::uint64_t drained_fd = 0;
    while (::read(eventfds_[consumer], &drained_fd, sizeof(drained_fd)) > 0) {
    }
    const std::size_t n = shards_.size();
    std::size_t dispatched = 0;
    Handoff h;
    for (std::size_t p = 0; p < n; ++p) {
        if (p == consumer) continue;
        SpscRing<Handoff>& r = ring(p, consumer);
        while (r.pop(h)) {
            ++dispatched;
            switch (h.kind) {
                case Handoff::Kind::kDatagram:
                    h.handler->on_datagram(h.from, h.payload);
                    shards_[h.producer]->release_buffer(std::move(h.payload));
                    break;
                case Handoff::Kind::kReliable:
                    h.handler->on_reliable(h.from, h.payload);
                    shards_[h.producer]->release_buffer(std::move(h.payload));
                    break;
                case Handoff::Kind::kTask:
                    h.fn(h.arg);
                    break;
            }
            if (inst_.delivered != nullptr) inst_.delivered->shard(consumer).inc();
        }
    }
    if (dispatched > 0 && inst_.drain_batch != nullptr) {
        inst_.drain_batch->shard(consumer).observe(static_cast<double>(dispatched));
    }
}

void ShardRuntime::run_on(std::size_t target, void (*fn)(void*), void* arg) {
    const int cur = current_shard();
    if (cur == static_cast<int>(target)) {
        fn(arg);
        return;
    }
    if (cur >= 0) {
        Handoff h;
        h.kind = Handoff::Kind::kTask;
        h.producer = static_cast<std::uint8_t>(cur);
        h.fn = fn;
        h.arg = arg;
        if (forward(static_cast<std::size_t>(cur), target, std::move(h))) {
            if (inst_.forwarded != nullptr) {
                inst_.forwarded->shard(static_cast<std::size_t>(cur)).inc();
            }
            return;
        }
        // Full ring: tasks are never shed — fall through to the (heap-
        // allocating, mutex-taking) timer post.
    }
    shards_[target]->schedule(0, [fn, arg] { fn(arg); });
}

// --- observability ----------------------------------------------------------

void ShardRuntime::set_observability(obs::MetricsRegistry* metrics, const std::string& node) {
    const std::size_t n = shards_.size();
    for (std::size_t i = 0; i < n; ++i) {
        shards_[i]->set_observability(metrics, node + "#" + std::to_string(i));
    }
    inst_ = {};
    if (metrics == nullptr) return;
    inst_.forwarded = &metrics->sharded_counter("transport_handoff_forwarded", node, n);
    inst_.dropped = &metrics->sharded_counter("transport_handoff_dropped", node, n);
    inst_.delivered = &metrics->sharded_counter("transport_handoff_delivered", node, n);
    inst_.drain_batch =
        &metrics->sharded_histogram("transport_handoff_batch", node, n, obs::batch_buckets());
}

std::string ShardRuntime::debug_snapshot() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("component", "shard_runtime")
        .field("shards", static_cast<std::uint64_t>(shards_.size()))
        .field("handoff_forwarded", inst_.forwarded != nullptr ? inst_.forwarded->value() : 0)
        .field("handoff_dropped", inst_.dropped != nullptr ? inst_.dropped->value() : 0)
        .field("handoff_delivered", inst_.delivered != nullptr ? inst_.delivered->value() : 0);
    w.key("pools").begin_array();
    for (const auto& shard : shards_) {
        const BufferPool& pool = shard->buffer_pool();
        w.begin_object()
            .field("idle", static_cast<std::uint64_t>(pool.idle()))
            .field("hwm", static_cast<std::uint64_t>(pool.peak_outstanding()))
            .end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
}

}  // namespace narada::transport
