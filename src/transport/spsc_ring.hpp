// Bounded lock-free single-producer/single-consumer ring.
//
// The cross-shard handoff primitive of the thread-per-core datapath
// (shard_runtime.hpp): each ordered shard pair owns one ring, so every ring
// has exactly one producer thread and one consumer thread and the only
// synchronization is a release store of the produced index paired with an
// acquire load on the consuming side (and vice versa for the consumed
// index). No CAS, no locks, no allocation after construction — a push or
// pop is a couple of relaxed loads, one move, and one release store.
//
// Both sides keep a cached copy of the opposing index (Rigtorp-style) so
// the common case does not even read the other thread's cache line: the
// producer only refreshes its view of the consumer's progress when the
// ring looks full, the consumer only refreshes its view of the producer's
// progress when the ring looks empty.
//
// Capacity is rounded up to a power of two; `capacity()` reports the
// usable slot count (one slot is never wasted — indices are free-running
// and wrap via masking, so all `capacity()` slots hold live elements when
// full). Elements left in the ring at destruction are destroyed with the
// slot storage (the "destructor drain": no leak, no double-destroy).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace narada::transport {

/// Destructive-interference distance. A literal (not
/// std::hardware_destructive_interference_size) so the layout is ABI-stable
/// across compilers and -Winterference-size stays quiet; 64 covers x86-64
/// and most aarch64 parts (128-byte-line CPUs merely lose some padding).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
public:
    /// `capacity` is rounded up to the next power of two (minimum 2).
    explicit SpscRing(std::size_t capacity) {
        std::size_t slots = 2;
        while (slots < capacity) slots *= 2;
        slots_.resize(slots);
        mask_ = slots - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /// Producer side. Returns false (and leaves `v` untouched) if the ring
    /// is full.
    bool push(T&& v) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_cache_ > mask_) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (tail - head_cache_ > mask_) return false;  // genuinely full
        }
        slots_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. Returns false if the ring is empty. On success the
    /// slot's previous element is moved into `out` (the slot keeps the
    /// moved-from husk, so its buffers recycle in place on the next push).
    bool pop(T& out) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_cache_) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head == tail_cache_) return false;  // genuinely empty
        }
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Approximate from either side (exact from the producer after its own
    /// push, exact from the consumer after its own pop).
    [[nodiscard]] std::size_t size() const {
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        const std::size_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }
    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumed index
    alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< produced index
    alignas(kCacheLine) std::size_t head_cache_ = 0;        ///< producer's view of head_
    alignas(kCacheLine) std::size_t tail_cache_ = 0;        ///< consumer's view of tail_
};

}  // namespace narada::transport
