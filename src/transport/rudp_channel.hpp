// Reliable-UDP bulk lane.
//
// The paper deliberately keeps discovery responses lossy (§5.2), but some
// flows need better-than-lossy delivery without TCP head-of-line blocking:
// bulk ad-registry sync between BDNs, multi-fragment discovery responses,
// and cache bootstrap after long disconnects. RudpChannel layers a
// NAK-driven retransmission protocol over the unreliable datagram path:
//
//   * the sender fragments each payload (wire-compatible with
//     services::Fragment), numbers segments with a channel-wide sequence,
//     and paces them through a token bucket into a fixed send window;
//   * the receiver reassembles through a bounded services::Coalescer (LRU
//     eviction caps memory no matter how many transfers a peer abandons)
//     and piggybacks selective-NAK ranges on periodic keepalive ACKs;
//   * retransmit timing is RFC6298-style (SRTT/RTTVAR -> RTO) with
//     jittered exponential backoff from common/backoff.hpp when the peer
//     stops answering;
//   * instead of hanging, a channel degrades explicitly:
//     healthy -> lossy (retransmit ratio high) -> stalled (no ack progress)
//     -> abandoned (queues dropped, send_bulk refuses until reset()), and
//     every transition is surfaced through obs metrics + debug_snapshot().
//
// The channel does not bind a transport endpoint itself: its owner routes
// inbound kMsgRudpData / kMsgRudpAck frames into handle_frame(). All frame
// buffers are drawn from the transport's BufferPool and segment slots are
// preallocated at construction, so the steady-state transmit path — encode
// into a recycled slot, copy into a pooled buffer, send, recycle on ack —
// touches the heap zero times per segment. Driven purely by the injected
// Scheduler/Clock/Rng, the same channel runs bit-for-bit deterministically
// on the sim kernel and on PosixTransport's event loop.
//
// Wire format (after the type octet):
//   DATA: seq u64 | ts i64 (sender clock at transmission, patched on every
//         retransmit) | fragment {payload_id uuid, index u32, count u32,
//         total_size u64, chunk blob}
//   ACK:  cum_ack u64 (next expected seq) | horizon u64 (highest seq seen
//         + 1) | echo_ts i64 (ts of the newest data frame since the last
//         ack, 0 = no fresh RTT sample) | nak_count u8 | nak_count x
//         {from u64, to u64} inclusive missing ranges
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/backoff.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/token_bucket.hpp"
#include "common/types.hpp"
#include "common/uuid.hpp"
#include "services/fragmentation.hpp"
#include "transport/transport.hpp"
#include "wire/codec.hpp"

namespace narada::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace narada::obs

namespace narada::transport {

struct RudpOptions {
    /// Fragment chunk size; with headers a segment stays under typical MTUs.
    std::size_t chunk_size = 1200;
    /// Max unacked segments in flight (rounded up to a power of two).
    std::size_t window = 64;
    /// Token-bucket pacing in bytes/second; <= 0 sends as fast as the
    /// window allows. Burst is clamped so one segment always fits.
    double pace_bytes_per_sec = 0.0;
    double pace_burst_bytes = 64.0 * 1024.0;
    /// Receiver keepalive/NAK cadence while a transfer is live.
    DurationUs keepalive_interval = 40 * kMillisecond;
    /// RFC6298 RTO clamp.
    DurationUs min_rto = 30 * kMillisecond;
    DurationUs max_rto = 3 * kSecond;
    /// No cumulative-ack progress for this long while data is in flight:
    /// the channel reports stalled, then abandons the transfer entirely.
    DurationUs stall_after = 1500 * kMillisecond;
    DurationUs abandon_after = 8 * kSecond;
    /// Receive-side bounds: incomplete payloads kept (Coalescer LRU cap),
    /// max announced payload size, and tracked missing-seq ranges (overflow
    /// gives up on the oldest gap instead of growing).
    std::size_t max_reassembly = 8;
    std::uint64_t max_payload_bytes = 64ull << 20;
    std::size_t max_tracked_gaps = 64;
    /// Selective-NAK ranges piggybacked per ACK frame.
    std::size_t max_nak_ranges = 16;
    /// Receiver sends an immediate ACK every this many data arrivals
    /// (keepalives cover the tail).
    std::size_t ack_every = 8;
    /// Sender backpressure: queued-but-unsent segments across all pending
    /// transfers before send_bulk refuses.
    std::size_t max_queued_segments = 16384;
    /// EWMA retransmit-ratio thresholds for the lossy state (hysteresis).
    double lossy_enter = 0.10;
    double lossy_exit = 0.02;
};

class RudpChannel {
public:
    enum class State : std::uint8_t { kHealthy = 0, kLossy = 1, kStalled = 2, kAbandoned = 3 };

    struct Stats {
        std::uint64_t payloads_accepted = 0;   ///< send_bulk calls admitted
        std::uint64_t payloads_delivered = 0;  ///< reassembled + handed up
        std::uint64_t segments_sent = 0;       ///< first transmissions
        std::uint64_t retransmits = 0;         ///< NAK- or RTO-driven resends
        std::uint64_t segments_received = 0;
        std::uint64_t duplicate_segments = 0;
        std::uint64_t acks_sent = 0;
        std::uint64_t acks_received = 0;
        std::uint64_t nak_ranges_sent = 0;
        std::uint64_t nak_ranges_received = 0;
        std::uint64_t rto_expirations = 0;
        std::uint64_t rtt_samples = 0;
        std::uint64_t pacer_deferrals = 0;  ///< pump paused waiting for tokens
        std::uint64_t stalls = 0;           ///< transitions into kStalled
        std::uint64_t abandons = 0;         ///< transitions into kAbandoned
        std::uint64_t send_rejected = 0;    ///< send_bulk refused
        std::uint64_t segments_dropped = 0; ///< queued work discarded on abandon
        std::uint64_t gaps_given_up = 0;    ///< rx missing seqs written off
    };

    /// The channel sends from `local` to `peer` over `transport`; the owner
    /// is responsible for binding `local` and routing inbound RUDP frames
    /// into handle_frame(). `clock` is the local (possibly skewed) clock;
    /// only differences of its timestamps are used.
    RudpChannel(Scheduler& scheduler, Transport& transport, const Clock& clock,
                Endpoint local, Endpoint peer, RudpOptions options = {},
                std::string name = "rudp");
    ~RudpChannel();

    RudpChannel(const RudpChannel&) = delete;
    RudpChannel& operator=(const RudpChannel&) = delete;

    /// Queue one payload for reliable delivery. Returns false (and counts
    /// send_rejected) when the channel is abandoned or backpressured.
    bool send_bulk(Bytes payload);

    /// Reassembled payloads from the peer arrive here, in completion order.
    void on_deliver(std::function<void(Bytes payload)> handler) {
        deliver_ = std::move(handler);
    }

    /// Route an inbound frame (reader positioned after the type octet).
    /// Returns false if `type` is not an RUDP frame.
    bool handle_frame(std::uint8_t type, wire::ByteReader& reader);

    /// Drop all state (both directions) and return to kHealthy; the next
    /// send_bulk starts a fresh transfer. Sequence numbers keep advancing so
    /// stale peers' frames stay distinguishable.
    void reset();

    [[nodiscard]] State state() const { return state_; }
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const Endpoint& peer() const { return peer_; }
    /// Segments transmitted but not yet cumulatively acked.
    [[nodiscard]] std::size_t in_flight() const {
        return static_cast<std::size_t>(next_seq_ - tx_base_);
    }
    /// Segments queued across pending transfers, not yet transmitted.
    [[nodiscard]] std::size_t queued_segments() const { return queued_segments_; }
    /// Incomplete inbound payloads currently buffered (<= max_reassembly).
    [[nodiscard]] std::size_t reassembly_pending() const { return reassembly_.pending(); }
    [[nodiscard]] std::size_t tracked_gaps() const { return rx_gaps_.size(); }
    [[nodiscard]] DurationUs srtt() const { return static_cast<DurationUs>(srtt_us_); }
    [[nodiscard]] DurationUs rto() const;
    [[nodiscard]] double loss_estimate() const { return loss_ewma_; }

    void set_observability(obs::MetricsRegistry* registry, const std::string& node);

    /// One-line JSON of the full channel state (DESIGN.md introspection
    /// convention): state machine, window, RTT estimator, rx gaps, stats.
    [[nodiscard]] std::string debug_snapshot() const;

private:
    /// One window slot: the encoded DATA frame is kept for retransmission
    /// and its buffer capacity is recycled across sequence numbers.
    struct Slot {
        std::uint64_t seq = 0;
        bool active = false;
        bool nak_pending = false;
        TimeUs last_sent = 0;
        std::uint32_t transmits = 0;
        Bytes frame;
    };

    /// A queued payload being cut into segments on demand as the window
    /// opens (payload bytes are referenced in place, never re-copied).
    struct PendingTransfer {
        Uuid id;
        Bytes payload;
        std::uint32_t count = 0;
        std::uint32_t next_index = 0;
    };

    static constexpr std::size_t kTsOffset = 9;  ///< type(1) + seq(8)

    void handle_data(wire::ByteReader& reader);
    void handle_ack(wire::ByteReader& reader);

    Slot& slot_for(std::uint64_t seq) { return slots_[seq & slot_mask_]; }
    [[nodiscard]] bool tx_busy() const { return in_flight() > 0 || !transfers_empty(); }

    // The transfer queue is a vector-backed FIFO (live range
    // [transfer_head_, size)) instead of a deque: a deque allocates a fresh
    // block node every ~10 pushes forever, while the vector's capacity is
    // recycled once it has drained, keeping the steady-state transmit path
    // allocation-free.
    [[nodiscard]] bool transfers_empty() const {
        return transfer_head_ >= transfers_.size();
    }
    [[nodiscard]] std::size_t transfers_pending() const {
        return transfers_.size() - transfer_head_;
    }
    PendingTransfer& transfers_front() { return transfers_[transfer_head_]; }
    void transfers_pop_front();
    void transfers_clear();

    /// Move segments onto the wire: NAK retransmits first, then fresh
    /// segments while the window has room, all gated by the pacer.
    void pump();
    void schedule_pump(DurationUs delay);
    void encode_segment(PendingTransfer& transfer, Slot& slot);
    void transmit(Slot& slot, TimeUs now, bool retransmit);
    void note_progress(TimeUs now);
    void update_state(TimeUs now);
    void enter_state(State next);
    void do_abandon();

    void arm_rto();
    void on_rto_expired();
    [[nodiscard]] DurationUs base_rto() const;
    void observe_rtt(DurationUs sample);

    /// Receiver bookkeeping for one arrived seq; true if it was new.
    bool track_rx_seq(std::uint64_t seq);
    void give_up_oldest_gaps(std::size_t keep);
    void send_ack();
    void ensure_keepalive();
    void on_keepalive();

    Scheduler& scheduler_;
    Transport& transport_;
    const Clock& clock_;
    Endpoint local_;
    Endpoint peer_;
    RudpOptions opts_;
    std::string name_;
    std::function<void(Bytes)> deliver_;
    Rng rng_;

    State state_ = State::kHealthy;

    // --- sender ------------------------------------------------------------
    std::vector<Slot> slots_;
    std::size_t slot_mask_ = 0;
    std::uint64_t tx_base_ = 0;   ///< lowest unacked transmitted seq
    std::uint64_t next_seq_ = 0;  ///< next seq to assign at transmission
    std::vector<PendingTransfer> transfers_;
    std::size_t transfer_head_ = 0;
    std::size_t queued_segments_ = 0;
    std::size_t naks_flagged_ = 0;  ///< slots with nak_pending set
    TokenBucket pacer_;
    JitteredBackoff rto_backoff_;
    DurationUs backed_off_ = 0;  ///< last backoff draw; 0 until an RTO fires
    double srtt_us_ = 0.0;
    double rttvar_us_ = 0.0;
    bool have_rtt_ = false;
    double loss_ewma_ = 0.0;
    TimeUs last_progress_ = 0;
    bool progress_primed_ = false;
    std::uint32_t consecutive_rtos_ = 0;
    TimerHandle pump_timer_ = kInvalidTimerHandle;
    TimerHandle rto_timer_ = kInvalidTimerHandle;

    // --- receiver ----------------------------------------------------------
    std::uint64_t cum_ack_ = 0;  ///< next expected seq (all below received)
    std::uint64_t rx_horizon_ = 0;  ///< highest seq seen + 1
    std::map<std::uint64_t, std::uint64_t> rx_gaps_;  ///< from -> to, inclusive, missing
    services::Coalescer reassembly_;
    TimeUs last_rx_data_ = 0;
    TimeUs echo_ts_ = 0;  ///< newest data ts not yet echoed (0 = none)
    std::size_t unacked_arrivals_ = 0;
    TimerHandle keepalive_timer_ = kInvalidTimerHandle;

    Stats stats_;

    // --- observability ------------------------------------------------------
    obs::Counter* m_segments_sent_ = nullptr;
    obs::Counter* m_retransmits_ = nullptr;
    obs::Counter* m_payloads_delivered_ = nullptr;
    obs::Counter* m_nak_ranges_sent_ = nullptr;
    obs::Counter* m_nak_ranges_received_ = nullptr;
    obs::Counter* m_stalls_ = nullptr;
    obs::Counter* m_abandons_ = nullptr;
    obs::Gauge* m_state_ = nullptr;
    obs::Gauge* m_srtt_ms_ = nullptr;
    obs::Gauge* m_inflight_ = nullptr;
};

const char* to_string(RudpChannel::State s);

}  // namespace narada::transport
