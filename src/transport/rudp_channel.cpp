#include "transport/rudp_channel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "wire/msg_types.hpp"

namespace narada::transport {
namespace {

/// Per-segment overhead on top of the chunk: type + seq + ts + fragment
/// header (uuid + index + count + total_size + chunk length prefix).
constexpr std::size_t kSegmentOverhead = 1 + 8 + 8 + 16 + 4 + 4 + 8 + 4;

/// EWMA weight for the retransmit-ratio loss estimator.
constexpr double kLossAlpha = 1.0 / 16.0;

std::uint64_t seed_for(const Endpoint& local, const Endpoint& peer) {
    return 0x52554450ull ^ (std::uint64_t{local.host} << 40) ^
           (std::uint64_t{local.port} << 24) ^ (std::uint64_t{peer.host} << 8) ^
           peer.port;
}

}  // namespace

const char* to_string(RudpChannel::State s) {
    switch (s) {
        case RudpChannel::State::kHealthy: return "healthy";
        case RudpChannel::State::kLossy: return "lossy";
        case RudpChannel::State::kStalled: return "stalled";
        case RudpChannel::State::kAbandoned: return "abandoned";
    }
    return "?";
}

RudpChannel::RudpChannel(Scheduler& scheduler, Transport& transport, const Clock& clock,
                         Endpoint local, Endpoint peer, RudpOptions options,
                         std::string name)
    : scheduler_(scheduler),
      transport_(transport),
      clock_(clock),
      local_(local),
      peer_(peer),
      opts_(options),
      name_(std::move(name)),
      rng_(seed_for(local, peer)),
      pacer_(opts_.pace_bytes_per_sec,
             std::max(opts_.pace_burst_bytes,
                      static_cast<double>(opts_.chunk_size + kSegmentOverhead))),
      reassembly_(opts_.max_reassembly, opts_.max_payload_bytes) {
    opts_.chunk_size = std::max<std::size_t>(opts_.chunk_size, 1);
    opts_.window = std::bit_ceil(std::max<std::size_t>(opts_.window, 1));
    opts_.min_rto = std::max<DurationUs>(opts_.min_rto, 1);
    opts_.max_rto = std::max(opts_.max_rto, opts_.min_rto);
    opts_.stall_after = std::max<DurationUs>(opts_.stall_after, 1);
    opts_.abandon_after = std::max(opts_.abandon_after, opts_.stall_after);
    opts_.keepalive_interval = std::max<DurationUs>(opts_.keepalive_interval, 1);
    opts_.max_nak_ranges = std::min<std::size_t>(opts_.max_nak_ranges, 255);
    slots_.resize(opts_.window);
    slot_mask_ = opts_.window - 1;
    BackoffOptions backoff;
    backoff.initial = std::max<DurationUs>(2 * opts_.min_rto, 1);
    backoff.max = opts_.max_rto;
    backoff.multiplier = 2.0;
    backoff.jitter = 0.15;
    rto_backoff_ = JitteredBackoff(backoff);
}

RudpChannel::~RudpChannel() {
    scheduler_.cancel_timer(pump_timer_);
    scheduler_.cancel_timer(rto_timer_);
    scheduler_.cancel_timer(keepalive_timer_);
}

// --- sender ------------------------------------------------------------------

bool RudpChannel::send_bulk(Bytes payload) {
    if (state_ == State::kAbandoned) {
        ++stats_.send_rejected;
        return false;
    }
    if (payload.size() > opts_.max_payload_bytes) {
        ++stats_.send_rejected;
        return false;
    }
    const std::size_t count =
        payload.empty() ? 1 : (payload.size() + opts_.chunk_size - 1) / opts_.chunk_size;
    if (queued_segments_ + count > opts_.max_queued_segments) {
        ++stats_.send_rejected;
        return false;
    }
    PendingTransfer transfer;
    transfer.id = Uuid::random(rng_);
    transfer.payload = std::move(payload);
    transfer.count = static_cast<std::uint32_t>(count);
    queued_segments_ += count;
    transfers_.push_back(std::move(transfer));
    ++stats_.payloads_accepted;
    pump();
    return true;
}

void RudpChannel::transfers_pop_front() {
    // Destroy the finished transfer's payload now (it can be megabytes),
    // then recycle the vector's capacity once the queue drains — the FIFO
    // never allocates again in steady state.
    transfers_[transfer_head_] = PendingTransfer{};
    ++transfer_head_;
    if (transfer_head_ >= transfers_.size()) {
        transfers_.clear();
        transfer_head_ = 0;
    } else if (transfer_head_ >= 64) {
        // A queue that never fully drains would otherwise accumulate dead
        // head entries; compacting shifts the few live ones left in place.
        transfers_.erase(transfers_.begin(),
                         transfers_.begin() +
                             static_cast<std::ptrdiff_t>(transfer_head_));
        transfer_head_ = 0;
    }
}

void RudpChannel::transfers_clear() {
    transfers_.clear();
    transfer_head_ = 0;
}

void RudpChannel::encode_segment(PendingTransfer& transfer, Slot& slot) {
    const std::size_t begin = std::size_t{transfer.next_index} * opts_.chunk_size;
    const std::size_t end =
        std::min(begin + opts_.chunk_size, transfer.payload.size());
    const std::size_t len = end > begin ? end - begin : 0;

    slot.seq = next_seq_;
    slot.active = true;
    slot.nak_pending = false;
    slot.transmits = 0;
    slot.last_sent = 0;

    // The frame layout is wire-compatible with services::Fragment so the
    // receive side reassembles through the stock Coalescer; the chunk is
    // written straight out of the queued payload (no intermediate copy) and
    // the slot's buffer capacity is recycled across sequence numbers.
    wire::ByteWriter writer(std::move(slot.frame));
    writer.reserve(kSegmentOverhead + len);
    writer.u8(wire::kMsgRudpData);
    writer.u64(slot.seq);
    writer.i64(0);  // ts: patched with the send-time clock by transmit()
    writer.uuid(transfer.id);
    writer.u32(transfer.next_index);
    writer.u32(transfer.count);
    writer.u64(transfer.payload.size());
    writer.u32(static_cast<std::uint32_t>(len));
    if (len > 0) writer.raw(transfer.payload.data() + begin, len);
    slot.frame = writer.take();

    ++transfer.next_index;
    ++next_seq_;
}

void RudpChannel::transmit(Slot& slot, TimeUs now, bool retransmit) {
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(slot.frame.size());
    writer.raw(slot.frame.data(), kTsOffset);
    writer.i64(now);
    writer.raw(slot.frame.data() + kTsOffset + 8, slot.frame.size() - kTsOffset - 8);
    transport_.send_datagram(local_, peer_, writer.take());

    slot.last_sent = now;
    ++slot.transmits;
    if (retransmit) {
        ++stats_.retransmits;
        if (m_retransmits_ != nullptr) m_retransmits_->inc();
    } else {
        ++stats_.segments_sent;
        if (m_segments_sent_ != nullptr) m_segments_sent_->inc();
    }
    loss_ewma_ += ((retransmit ? 1.0 : 0.0) - loss_ewma_) * kLossAlpha;
}

void RudpChannel::schedule_pump(DurationUs delay) {
    if (pump_timer_ != kInvalidTimerHandle) return;
    pump_timer_ = scheduler_.schedule(delay, [this] {
        pump_timer_ = kInvalidTimerHandle;
        pump();
    });
}

void RudpChannel::pump() {
    if (state_ == State::kAbandoned) return;
    const TimeUs now = clock_.now();

    // 1. NAK-driven retransmits, lowest sequence first. A segment resent
    // less than an RTT ago is still in flight — drop the flag and let the
    // next keepalive NAK re-raise it if it really was lost again.
    if (naks_flagged_ > 0) {
        const DurationUs holdoff =
            std::max(opts_.min_rto, static_cast<DurationUs>(srtt_us_));
        for (std::uint64_t seq = tx_base_; seq < next_seq_ && naks_flagged_ > 0; ++seq) {
            Slot& slot = slot_for(seq);
            if (!slot.active || slot.seq != seq || !slot.nak_pending) continue;
            if (now - slot.last_sent < holdoff) {
                slot.nak_pending = false;
                --naks_flagged_;
                continue;
            }
            if (!pacer_.try_consume(now, static_cast<double>(slot.frame.size()))) {
                ++stats_.pacer_deferrals;
                schedule_pump(std::max<DurationUs>(kMillisecond, opts_.min_rto / 4));
                return;
            }
            transmit(slot, now, /*retransmit=*/true);
            slot.nak_pending = false;
            --naks_flagged_;
        }
    }

    // 2. Fresh segments while the window has room.
    while (!transfers_empty() && in_flight() < slots_.size()) {
        PendingTransfer& transfer = transfers_front();
        const std::size_t begin =
            std::size_t{transfer.next_index} * opts_.chunk_size;
        const std::size_t len =
            std::min(opts_.chunk_size,
                     transfer.payload.size() > begin ? transfer.payload.size() - begin : 0);
        if (!pacer_.try_consume(now, static_cast<double>(len + kSegmentOverhead))) {
            ++stats_.pacer_deferrals;
            schedule_pump(std::max<DurationUs>(kMillisecond, opts_.min_rto / 4));
            break;
        }
        Slot& slot = slot_for(next_seq_);
        encode_segment(transfer, slot);
        transmit(slot, now, /*retransmit=*/false);
        --queued_segments_;
        if (transfer.next_index >= transfer.count) transfers_pop_front();
        if (!progress_primed_) {
            progress_primed_ = true;
            last_progress_ = now;
        }
    }

    if (m_inflight_ != nullptr) m_inflight_->set(static_cast<double>(in_flight()));
    arm_rto();
}

// --- RTT / RTO ---------------------------------------------------------------

void RudpChannel::observe_rtt(DurationUs sample) {
    const auto rtt = static_cast<double>(std::max<DurationUs>(sample, 1));
    if (!have_rtt_) {
        have_rtt_ = true;
        srtt_us_ = rtt;
        rttvar_us_ = rtt / 2.0;
    } else {
        // RFC 6298: RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|, SRTT <- 7/8 SRTT + 1/8 R'.
        rttvar_us_ = 0.75 * rttvar_us_ + 0.25 * std::abs(srtt_us_ - rtt);
        srtt_us_ = 0.875 * srtt_us_ + 0.125 * rtt;
    }
    ++stats_.rtt_samples;
    if (m_srtt_ms_ != nullptr) m_srtt_ms_->set(srtt_us_ / 1000.0);
}

DurationUs RudpChannel::base_rto() const {
    if (!have_rtt_) {
        return std::clamp<DurationUs>(8 * opts_.min_rto, opts_.min_rto, opts_.max_rto);
    }
    const auto rto = static_cast<DurationUs>(srtt_us_ + 4.0 * rttvar_us_);
    return std::clamp(rto, opts_.min_rto, opts_.max_rto);
}

DurationUs RudpChannel::rto() const {
    return std::min(opts_.max_rto, std::max(base_rto(), backed_off_));
}

void RudpChannel::arm_rto() {
    if (in_flight() == 0) {
        scheduler_.cancel_timer(rto_timer_);
        rto_timer_ = kInvalidTimerHandle;
        return;
    }
    if (rto_timer_ != kInvalidTimerHandle) return;
    rto_timer_ = scheduler_.schedule(rto(), [this] {
        rto_timer_ = kInvalidTimerHandle;
        on_rto_expired();
    });
}

void RudpChannel::on_rto_expired() {
    if (state_ == State::kAbandoned || in_flight() == 0) return;
    const TimeUs now = clock_.now();
    ++stats_.rto_expirations;
    ++consecutive_rtos_;
    // Exponential backoff with jitter: consecutive expirations without ack
    // progress space the probes geometrically so a dead peer is probed at
    // max_rto, not hammered at min_rto.
    backed_off_ = rto_backoff_.next(rng_);
    // Probe by retransmitting the oldest unacked segment; its ack (or the
    // NAKs it provokes) restarts the pipeline.
    Slot& head = slot_for(tx_base_);
    if (head.active && head.seq == tx_base_ && !head.nak_pending) {
        head.nak_pending = true;
        ++naks_flagged_;
        // The probe must actually go out: it is the only recovery signal on
        // a totally dead link, so bypass the freshness holdoff.
        head.last_sent = std::min(head.last_sent, now - opts_.max_rto);
    }
    update_state(now);
    if (state_ == State::kAbandoned) return;
    pump();
    arm_rto();
}

// --- progress / degradation --------------------------------------------------

void RudpChannel::note_progress(TimeUs now) {
    last_progress_ = now;
    progress_primed_ = true;
    consecutive_rtos_ = 0;
    backed_off_ = 0;
    rto_backoff_.reset();
    // A fresh RTO from now, based on the recovered estimator.
    scheduler_.cancel_timer(rto_timer_);
    rto_timer_ = kInvalidTimerHandle;
}

void RudpChannel::update_state(TimeUs now) {
    if (state_ == State::kAbandoned) return;
    State next;
    const bool lossy = state_ == State::kLossy ? loss_ewma_ > opts_.lossy_exit
                                              : loss_ewma_ > opts_.lossy_enter;
    if (progress_primed_ && tx_busy()) {
        const DurationUs idle = now - last_progress_;
        if (idle >= opts_.abandon_after) {
            do_abandon();
            return;
        }
        next = idle >= opts_.stall_after ? State::kStalled
                                        : (lossy ? State::kLossy : State::kHealthy);
    } else {
        next = lossy ? State::kLossy : State::kHealthy;
    }
    if (next != state_) enter_state(next);
}

void RudpChannel::enter_state(State next) {
    if (next == state_) return;
    if (next == State::kStalled) {
        ++stats_.stalls;
        if (m_stalls_ != nullptr) m_stalls_->inc();
        NARADA_DEBUG("rudp", "{}: stalled ({} in flight)", name_, in_flight());
    } else if (next == State::kAbandoned) {
        ++stats_.abandons;
        if (m_abandons_ != nullptr) m_abandons_->inc();
        NARADA_DEBUG("rudp", "{}: abandoned", name_);
    }
    state_ = next;
    if (m_state_ != nullptr) m_state_->set(static_cast<double>(static_cast<int>(next)));
}

void RudpChannel::do_abandon() {
    stats_.segments_dropped += in_flight() + queued_segments_;
    transfers_clear();
    queued_segments_ = 0;
    for (Slot& slot : slots_) {
        slot.active = false;
        slot.nak_pending = false;
    }
    naks_flagged_ = 0;
    tx_base_ = next_seq_;
    progress_primed_ = false;
    scheduler_.cancel_timer(pump_timer_);
    pump_timer_ = kInvalidTimerHandle;
    scheduler_.cancel_timer(rto_timer_);
    rto_timer_ = kInvalidTimerHandle;
    enter_state(State::kAbandoned);
}

void RudpChannel::reset() {
    do_abandon();  // idempotent tx teardown (counts an abandon only once)
    // Write off the inbound tail as well: the owner is starting over.
    for (const auto& [from, to] : rx_gaps_) stats_.gaps_given_up += to - from + 1;
    rx_gaps_.clear();
    cum_ack_ = rx_horizon_;
    echo_ts_ = 0;
    unacked_arrivals_ = 0;
    reassembly_ = services::Coalescer(opts_.max_reassembly, opts_.max_payload_bytes);
    scheduler_.cancel_timer(keepalive_timer_);
    keepalive_timer_ = kInvalidTimerHandle;
    loss_ewma_ = 0.0;
    enter_state(State::kHealthy);
}

// --- inbound frames ----------------------------------------------------------

bool RudpChannel::handle_frame(std::uint8_t type, wire::ByteReader& reader) {
    if (type == wire::kMsgRudpData) {
        handle_data(reader);
        return true;
    }
    if (type == wire::kMsgRudpAck) {
        handle_ack(reader);
        return true;
    }
    return false;
}

void RudpChannel::handle_ack(wire::ByteReader& reader) {
    const std::uint64_t cum = reader.u64();
    const std::uint64_t horizon = reader.u64();
    const TimeUs echo = reader.i64();
    const std::uint8_t nak_count = reader.u8();
    (void)horizon;  // carried for snapshots/debugging; cum + NAKs drive the sender
    ++stats_.acks_received;
    const TimeUs now = clock_.now();

    if (echo != 0 && now > echo) observe_rtt(now - echo);

    if (cum > tx_base_ && cum <= next_seq_) {
        for (std::uint64_t seq = tx_base_; seq < cum; ++seq) {
            Slot& slot = slot_for(seq);
            if (slot.active && slot.seq == seq) {
                slot.active = false;
                if (slot.nak_pending) {
                    slot.nak_pending = false;
                    --naks_flagged_;
                }
            }
        }
        tx_base_ = cum;
        note_progress(now);
        if (in_flight() == 0 && transfers_empty()) progress_primed_ = false;
    }

    for (std::uint8_t i = 0; i < nak_count; ++i) {
        const std::uint64_t from = reader.u64();
        const std::uint64_t to = reader.u64();
        if (to < from) continue;
        ++stats_.nak_ranges_received;
        if (m_nak_ranges_received_ != nullptr) m_nak_ranges_received_->inc();
        const std::uint64_t lo = std::max(from, tx_base_);
        const std::uint64_t hi = std::min(to, next_seq_ > 0 ? next_seq_ - 1 : 0);
        for (std::uint64_t seq = lo; next_seq_ > 0 && seq <= hi; ++seq) {
            Slot& slot = slot_for(seq);
            if (slot.active && slot.seq == seq && !slot.nak_pending) {
                slot.nak_pending = true;
                ++naks_flagged_;
            }
        }
    }

    if (m_inflight_ != nullptr) m_inflight_->set(static_cast<double>(in_flight()));
    update_state(now);
    pump();
}

void RudpChannel::handle_data(wire::ByteReader& reader) {
    const std::uint64_t seq = reader.u64();
    const TimeUs ts = reader.i64();
    const services::Fragment fragment = services::Fragment::decode(reader);
    const TimeUs now = clock_.now();

    ++stats_.segments_received;
    last_rx_data_ = now;
    // Echoing the newest transmission timestamp (original or retransmit)
    // gives the sender a Karn-safe RTT sample: the ts always identifies the
    // copy actually received.
    echo_ts_ = ts;

    if (!track_rx_seq(seq)) {
        ++stats_.duplicate_segments;
    } else if (auto payload = reassembly_.accept(fragment)) {
        ++stats_.payloads_delivered;
        if (m_payloads_delivered_ != nullptr) m_payloads_delivered_->inc();
        send_ack();  // completion ack before delivery: the handler may reply in kind
        if (deliver_) deliver_(std::move(*payload));
    }

    ++unacked_arrivals_;
    if (unacked_arrivals_ >= opts_.ack_every) send_ack();
    ensure_keepalive();
}

bool RudpChannel::track_rx_seq(std::uint64_t seq) {
    if (seq < cum_ack_) return false;
    if (seq >= rx_horizon_) {
        if (seq > rx_horizon_) {
            rx_gaps_[rx_horizon_] = seq - 1;
            if (rx_gaps_.size() > opts_.max_tracked_gaps) {
                give_up_oldest_gaps(opts_.max_tracked_gaps);
            }
        }
        rx_horizon_ = seq + 1;
    } else {
        auto it = rx_gaps_.upper_bound(seq);
        if (it == rx_gaps_.begin()) return false;  // below every gap: duplicate
        --it;
        const auto [from, to] = *it;
        if (seq > to) return false;  // inside covered ground: duplicate
        rx_gaps_.erase(it);
        if (from < seq) rx_gaps_.emplace(from, seq - 1);
        if (seq < to) rx_gaps_.emplace(seq + 1, to);
    }
    cum_ack_ = rx_gaps_.empty() ? rx_horizon_ : rx_gaps_.begin()->first;
    return true;
}

void RudpChannel::give_up_oldest_gaps(std::size_t keep) {
    // Bounded gap tracking: a pathological reorder/loss pattern cannot grow
    // receiver state without limit. Giving up a gap declares its segments
    // permanently missing — the affected payload will die in the Coalescer's
    // LRU, which is exactly the degradation the lane promises.
    while (rx_gaps_.size() > keep) {
        const auto it = rx_gaps_.begin();
        stats_.gaps_given_up += it->second - it->first + 1;
        rx_gaps_.erase(it);
    }
}

void RudpChannel::send_ack() {
    wire::ByteWriter writer(transport_.acquire_buffer());
    writer.reserve(1 + 8 + 8 + 8 + 1 + 16 * opts_.max_nak_ranges);
    writer.u8(wire::kMsgRudpAck);
    writer.u64(cum_ack_);
    writer.u64(rx_horizon_);
    writer.i64(echo_ts_);
    const auto ranges =
        static_cast<std::uint8_t>(std::min(rx_gaps_.size(), opts_.max_nak_ranges));
    writer.u8(ranges);
    std::uint8_t written = 0;
    for (const auto& [from, to] : rx_gaps_) {
        if (written >= ranges) break;
        writer.u64(from);
        writer.u64(to);
        ++written;
    }
    transport_.send_datagram(local_, peer_, writer.take());
    echo_ts_ = 0;
    unacked_arrivals_ = 0;
    ++stats_.acks_sent;
    stats_.nak_ranges_sent += ranges;
    if (m_nak_ranges_sent_ != nullptr) m_nak_ranges_sent_->inc(ranges);
}

void RudpChannel::ensure_keepalive() {
    if (keepalive_timer_ != kInvalidTimerHandle) return;
    keepalive_timer_ = scheduler_.schedule(opts_.keepalive_interval, [this] {
        keepalive_timer_ = kInvalidTimerHandle;
        on_keepalive();
    });
}

void RudpChannel::on_keepalive() {
    const TimeUs now = clock_.now();
    const DurationUs idle = now - last_rx_data_;
    if (!rx_gaps_.empty() && idle >= opts_.abandon_after) {
        // The sender went away mid-transfer: write off the missing tail and
        // go quiet instead of NAKing a ghost forever.
        give_up_oldest_gaps(0);
        cum_ack_ = rx_horizon_;
        return;
    }
    if (rx_gaps_.empty() && idle > 4 * opts_.keepalive_interval) {
        return;  // stream is idle and complete: stop keepalives until data resumes
    }
    send_ack();
    ensure_keepalive();
}

// --- observability -----------------------------------------------------------

void RudpChannel::set_observability(obs::MetricsRegistry* registry,
                                    const std::string& node) {
    if (registry == nullptr) return;
    m_segments_sent_ = &registry->counter("rudp_segments_sent", node);
    m_retransmits_ = &registry->counter("rudp_retransmits", node);
    m_payloads_delivered_ = &registry->counter("rudp_payloads_delivered", node);
    m_nak_ranges_sent_ = &registry->counter("rudp_nak_ranges_sent", node);
    m_nak_ranges_received_ = &registry->counter("rudp_nak_ranges_received", node);
    m_stalls_ = &registry->counter("rudp_stalls", node);
    m_abandons_ = &registry->counter("rudp_abandons", node);
    m_state_ = &registry->gauge("rudp_state", node);
    m_srtt_ms_ = &registry->gauge("rudp_srtt_ms", node);
    m_inflight_ = &registry->gauge("rudp_inflight_segments", node);
    m_state_->set(static_cast<double>(static_cast<int>(state_)));
}

std::string RudpChannel::debug_snapshot() const {
    obs::JsonWriter json;
    json.begin_object()
        .field("name", name_)
        .field("peer", peer_.str())
        .field("state", to_string(state_))
        .field("srtt_ms", srtt_us_ / 1000.0, 3)
        .field("rttvar_ms", rttvar_us_ / 1000.0, 3)
        .field("rto_ms", to_ms(rto()), 3)
        .field("loss_ewma", loss_ewma_, 4)
        .field("in_flight", static_cast<std::uint64_t>(in_flight()))
        .field("queued_segments", static_cast<std::uint64_t>(queued_segments_))
        .field("pending_transfers", static_cast<std::uint64_t>(transfers_pending()))
        .field("tx_base", tx_base_)
        .field("next_seq", next_seq_)
        .field("cum_ack", cum_ack_)
        .field("rx_horizon", rx_horizon_)
        .field("rx_gaps", static_cast<std::uint64_t>(rx_gaps_.size()))
        .field("reassembly_pending", static_cast<std::uint64_t>(reassembly_.pending()));
    json.key("stats")
        .begin_object()
        .field("payloads_accepted", stats_.payloads_accepted)
        .field("payloads_delivered", stats_.payloads_delivered)
        .field("segments_sent", stats_.segments_sent)
        .field("retransmits", stats_.retransmits)
        .field("segments_received", stats_.segments_received)
        .field("duplicate_segments", stats_.duplicate_segments)
        .field("acks_sent", stats_.acks_sent)
        .field("acks_received", stats_.acks_received)
        .field("nak_ranges_sent", stats_.nak_ranges_sent)
        .field("nak_ranges_received", stats_.nak_ranges_received)
        .field("rto_expirations", stats_.rto_expirations)
        .field("rtt_samples", stats_.rtt_samples)
        .field("pacer_deferrals", stats_.pacer_deferrals)
        .field("stalls", stats_.stalls)
        .field("abandons", stats_.abandons)
        .field("send_rejected", stats_.send_rejected)
        .field("segments_dropped", stats_.segments_dropped)
        .field("gaps_given_up", stats_.gaps_given_up)
        .end_object();
    json.end_object();
    return json.take();
}

}  // namespace narada::transport
