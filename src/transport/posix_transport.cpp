#include "transport/posix_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <system_error>

#include "common/log.hpp"

namespace narada::transport {
namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;
constexpr std::uint32_t kMaxFrame = 16 * 1024 * 1024;

void set_nonblocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

/// Blocking write of the whole buffer (loopback TCP; EINTR-safe).
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Socket buffer full: wait for writability.
                pollfd pfd{fd, POLLOUT, 0};
                (void)::poll(&pfd, 1, 1000);
                continue;
            }
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

PosixTransport::PosixTransport() {
    if (pipe(wake_pipe_) != 0) {
        throw std::system_error(errno, std::generic_category(), "pipe");
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
    loop_thread_ = std::thread([this] { loop(); });
}

PosixTransport::~PosixTransport() {
    running_ = false;
    wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    std::scoped_lock lock(mutex_);
    for (auto& [ep, binding] : bindings_) {
        if (binding.udp_fd >= 0) ::close(binding.udp_fd);
        if (binding.listen_fd >= 0) ::close(binding.listen_fd);
    }
    for (auto& [fd, conn] : tcp_conns_) ::close(fd);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
}

TimeUs PosixTransport::wall_now() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void PosixTransport::wake() {
    const char byte = 'w';
    (void)!::write(wake_pipe_[1], &byte, 1);
}

void PosixTransport::bind(const Endpoint& local, MessageHandler* handler) {
    if (handler == nullptr) throw std::invalid_argument("bind: null handler");
    Binding binding;
    binding.handler = handler;
    binding.endpoint = local;

    const sockaddr_in addr = loopback_addr(local.port);

    binding.udp_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (binding.udp_fd < 0 ||
        ::bind(binding.udp_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        if (binding.udp_fd >= 0) ::close(binding.udp_fd);
        throw std::system_error(saved, std::generic_category(), "udp bind " + local.str());
    }

    binding.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    const int reuse = 1;
    setsockopt(binding.listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    if (binding.listen_fd < 0 ||
        ::bind(binding.listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(binding.listen_fd, 64) != 0) {
        const int saved = errno;
        ::close(binding.udp_fd);
        if (binding.listen_fd >= 0) ::close(binding.listen_fd);
        throw std::system_error(saved, std::generic_category(), "tcp bind " + local.str());
    }
    set_nonblocking(binding.udp_fd);
    set_nonblocking(binding.listen_fd);

    {
        std::scoped_lock lock(mutex_);
        // Rebinding replaces the handler but keeps sockets if same port.
        if (const auto it = bindings_.find(local); it != bindings_.end()) {
            ::close(binding.udp_fd);
            ::close(binding.listen_fd);
            it->second.handler = handler;
            return;
        }
        port_to_endpoint_[local.port] = local;
        bindings_.emplace(local, binding);
    }
    wake();
}

void PosixTransport::unbind(const Endpoint& local) {
    std::vector<int> to_close;
    {
        std::scoped_lock lock(mutex_);
        const auto it = bindings_.find(local);
        if (it == bindings_.end()) return;
        to_close.push_back(it->second.udp_fd);
        to_close.push_back(it->second.listen_fd);
        bindings_.erase(it);
        port_to_endpoint_.erase(local.port);
        for (auto& [group, members] : groups_) std::erase(members, local);
        // Drop outgoing connections originating here.
        for (auto oit = outgoing_.begin(); oit != outgoing_.end();) {
            if (oit->first.first == local) {
                to_close.push_back(oit->second);
                tcp_conns_.erase(oit->second);
                oit = outgoing_.erase(oit);
            } else {
                ++oit;
            }
        }
    }
    for (int fd : to_close) {
        if (fd >= 0) ::close(fd);
    }
    wake();
}

void PosixTransport::send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) {
    int fd = -1;
    {
        std::scoped_lock lock(mutex_);
        const auto it = bindings_.find(from);
        if (it == bindings_.end()) {
            NARADA_WARN("posix", "send_datagram from unbound endpoint {}", from.str());
            return;
        }
        fd = it->second.udp_fd;
    }
    const sockaddr_in addr = loopback_addr(to.port);
    (void)::sendto(fd, data.data(), data.size(), 0, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));  // best-effort, like UDP
    if (inst_.frames_out) inst_.frames_out->inc();
    if (inst_.bytes_out) inst_.bytes_out->inc(data.size());
}

int PosixTransport::outgoing_fd(const Endpoint& from, const Endpoint& to) {
    {
        std::scoped_lock lock(mutex_);
        const auto it = outgoing_.find({from, to});
        if (it != outgoing_.end()) return it->second;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const sockaddr_in addr = loopback_addr(to.port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    const int nodelay = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    // Hello frame: announce our endpoint label so the peer can attribute
    // inbound messages (TCP source ports are ephemeral).
    Bytes hello(6);
    hello[0] = static_cast<std::uint8_t>(from.host >> 24);
    hello[1] = static_cast<std::uint8_t>(from.host >> 16);
    hello[2] = static_cast<std::uint8_t>(from.host >> 8);
    hello[3] = static_cast<std::uint8_t>(from.host);
    hello[4] = static_cast<std::uint8_t>(from.port >> 8);
    hello[5] = static_cast<std::uint8_t>(from.port);
    send_frame(fd, hello);

    set_nonblocking(fd);
    auto conn = std::make_unique<TcpConn>();
    conn->fd = fd;
    conn->local = from;
    conn->remote = to;
    conn->remote_known = true;  // we initiated; the peer is `to` by construction
    {
        std::scoped_lock lock(mutex_);
        tcp_conns_.emplace(fd, std::move(conn));
        outgoing_[{from, to}] = fd;
    }
    wake();
    return fd;
}

void PosixTransport::send_frame(int fd, const Bytes& payload) {
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(payload.size() >> 24),
        static_cast<std::uint8_t>(payload.size() >> 16),
        static_cast<std::uint8_t>(payload.size() >> 8),
        static_cast<std::uint8_t>(payload.size()),
    };
    if (!write_all(fd, header, 4)) return;
    (void)write_all(fd, payload.data(), payload.size());
}

void PosixTransport::send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) {
    const int fd = outgoing_fd(from, to);
    if (fd < 0) {
        NARADA_DEBUG("posix", "reliable connect {} -> {} failed", from.str(), to.str());
        return;
    }
    send_frame(fd, data);
    if (inst_.frames_out) inst_.frames_out->inc();
    if (inst_.bytes_out) inst_.bytes_out->inc(data.size());
}

void PosixTransport::join_multicast(MulticastGroup group, const Endpoint& local) {
    std::scoped_lock lock(mutex_);
    auto& members = groups_[group];
    if (std::find(members.begin(), members.end(), local) == members.end()) {
        members.push_back(local);
    }
}

void PosixTransport::leave_multicast(MulticastGroup group, const Endpoint& local) {
    std::scoped_lock lock(mutex_);
    const auto it = groups_.find(group);
    if (it != groups_.end()) std::erase(it->second, local);
}

void PosixTransport::send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) {
    std::vector<Endpoint> members;
    {
        std::scoped_lock lock(mutex_);
        const auto it = groups_.find(group);
        if (it != groups_.end()) members = it->second;
    }
    for (const Endpoint& member : members) {
        if (member == from) continue;
        send_datagram(from, member, data);
    }
}

TimerHandle PosixTransport::schedule(DurationUs delay, std::function<void()> task) {
    if (delay < 0) delay = 0;
    TimerHandle handle = kInvalidTimerHandle;
    {
        std::scoped_lock lock(mutex_);
        handle = next_timer_++;
        timers_.push_back(Timer{wall_now() + delay, handle, std::move(task)});
        std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
    }
    wake();
    return handle;
}

void PosixTransport::cancel_timer(TimerHandle handle) {
    if (handle == kInvalidTimerHandle) return;
    std::scoped_lock lock(mutex_);
    const auto it = std::find_if(timers_.begin(), timers_.end(),
                                 [handle](const Timer& t) { return t.handle == handle; });
    if (it != timers_.end()) {
        timers_.erase(it);
        std::make_heap(timers_.begin(), timers_.end(), std::greater<>{});
    }
}

void PosixTransport::handle_udp_readable(int udp_fd, MessageHandler* handler) {
    std::uint8_t buffer[kMaxDatagram];
    while (true) {
        sockaddr_in src{};
        socklen_t src_len = sizeof(src);
        const ssize_t n = ::recvfrom(udp_fd, buffer, sizeof(buffer), 0,
                                     reinterpret_cast<sockaddr*>(&src), &src_len);
        if (n < 0) return;  // EWOULDBLOCK or error: drained
        Endpoint from{0, ntohs(src.sin_port)};
        {
            std::scoped_lock lock(mutex_);
            const auto it = port_to_endpoint_.find(from.port);
            if (it != port_to_endpoint_.end()) from = it->second;
        }
        if (inst_.frames_in) inst_.frames_in->inc();
        if (inst_.bytes_in) inst_.bytes_in->inc(static_cast<std::uint64_t>(n));
        handler->on_datagram(from, Bytes(buffer, buffer + n));
    }
}

void PosixTransport::handle_accept(int listen_fd, const Endpoint& local) {
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        set_nonblocking(fd);
        const int nodelay = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
        auto conn = std::make_unique<TcpConn>();
        conn->fd = fd;
        conn->local = local;
        conn->remote_known = false;  // until the hello frame arrives
        std::scoped_lock lock(mutex_);
        tcp_conns_.emplace(fd, std::move(conn));
    }
}

void PosixTransport::close_tcp(int fd) {
    std::scoped_lock lock(mutex_);
    tcp_conns_.erase(fd);
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
        it = (it->second == fd) ? outgoing_.erase(it) : std::next(it);
    }
    ::close(fd);
}

void PosixTransport::handle_tcp_readable(int fd) {
    // Copy what we need under the lock; deliver outside it.
    std::uint8_t buffer[64 * 1024];
    while (true) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n == 0) {
            close_tcp(fd);
            return;
        }
        if (n < 0) break;  // drained (EWOULDBLOCK) or transient error
        std::scoped_lock lock(mutex_);
        const auto it = tcp_conns_.find(fd);
        if (it == tcp_conns_.end()) return;
        it->second->rx_buffer.insert(it->second->rx_buffer.end(), buffer, buffer + n);
    }

    // Extract complete frames.
    while (true) {
        Bytes payload;
        Endpoint from;
        MessageHandler* handler = nullptr;
        {
            std::scoped_lock lock(mutex_);
            const auto it = tcp_conns_.find(fd);
            if (it == tcp_conns_.end()) return;
            TcpConn& conn = *it->second;
            if (conn.rx_buffer.size() < 4) return;
            const std::uint32_t len = (std::uint32_t{conn.rx_buffer[0]} << 24) |
                                      (std::uint32_t{conn.rx_buffer[1]} << 16) |
                                      (std::uint32_t{conn.rx_buffer[2]} << 8) |
                                      std::uint32_t{conn.rx_buffer[3]};
            if (len > kMaxFrame) {
                // Hostile or corrupt framing: drop the connection.
                tcp_conns_.erase(it);
                ::close(fd);
                return;
            }
            if (conn.rx_buffer.size() < 4 + len) return;
            payload.assign(conn.rx_buffer.begin() + 4, conn.rx_buffer.begin() + 4 + len);
            conn.rx_buffer.erase(conn.rx_buffer.begin(), conn.rx_buffer.begin() + 4 + len);

            if (!conn.remote_known) {
                // First frame: the peer's endpoint label.
                if (payload.size() == 6) {
                    conn.remote.host = (std::uint32_t{payload[0]} << 24) |
                                       (std::uint32_t{payload[1]} << 16) |
                                       (std::uint32_t{payload[2]} << 8) |
                                       std::uint32_t{payload[3]};
                    conn.remote.port =
                        static_cast<std::uint16_t>((payload[4] << 8) | payload[5]);
                    conn.remote_known = true;
                }
                continue;  // hello consumed; look for the next frame
            }
            from = conn.remote;
            const auto bit = bindings_.find(conn.local);
            if (bit != bindings_.end()) handler = bit->second.handler;
        }
        if (inst_.frames_in) inst_.frames_in->inc();
        if (inst_.bytes_in) inst_.bytes_in->inc(payload.size());
        if (handler != nullptr) handler->on_reliable(from, payload);
    }
}

void PosixTransport::loop() {
    while (running_) {
        std::vector<pollfd> fds;
        std::vector<Endpoint> udp_owner;     // parallel to fds for UDP entries
        std::vector<Endpoint> listen_owner;  // for listeners
        enum class Kind : std::uint8_t { kWake, kUdp, kListen, kTcp };
        std::vector<Kind> kinds;
        std::vector<Endpoint> owners;
        std::vector<int> tcp_fds;

        DurationUs timeout_us = 100 * kMillisecond;  // idle tick
        {
            std::scoped_lock lock(mutex_);
            fds.push_back({wake_pipe_[0], POLLIN, 0});
            kinds.push_back(Kind::kWake);
            owners.push_back(Endpoint{});
            for (const auto& [ep, binding] : bindings_) {
                fds.push_back({binding.udp_fd, POLLIN, 0});
                kinds.push_back(Kind::kUdp);
                owners.push_back(ep);
                fds.push_back({binding.listen_fd, POLLIN, 0});
                kinds.push_back(Kind::kListen);
                owners.push_back(ep);
            }
            for (const auto& [fd, conn] : tcp_conns_) {
                fds.push_back({fd, POLLIN, 0});
                kinds.push_back(Kind::kTcp);
                owners.push_back(Endpoint{});
            }
            if (!timers_.empty()) {
                timeout_us = std::max<DurationUs>(0, timers_.front().deadline - wall_now());
            }
        }

        const int timeout_ms =
            static_cast<int>(std::min<DurationUs>(timeout_us / 1000 + 1, 1000));
        const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
        if (!running_) break;

        // Fire due timers (outside the poll, outside the lock).
        while (true) {
            std::function<void()> task;
            {
                std::scoped_lock lock(mutex_);
                if (timers_.empty() || timers_.front().deadline > wall_now()) break;
                std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
                task = std::move(timers_.back().task);
                timers_.pop_back();
            }
            task();
        }

        if (ready <= 0) continue;
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
            switch (kinds[i]) {
                case Kind::kWake: {
                    char drain[64];
                    while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
                    }
                    break;
                }
                case Kind::kUdp: {
                    int udp_fd = -1;
                    MessageHandler* handler = nullptr;
                    {
                        std::scoped_lock lock(mutex_);
                        const auto it = bindings_.find(owners[i]);
                        if (it != bindings_.end()) {
                            udp_fd = it->second.udp_fd;
                            handler = it->second.handler;
                        }
                    }
                    if (handler != nullptr) handle_udp_readable(udp_fd, handler);
                    break;
                }
                case Kind::kListen: {
                    int listen_fd = -1;
                    {
                        std::scoped_lock lock(mutex_);
                        const auto it = bindings_.find(owners[i]);
                        if (it != bindings_.end()) listen_fd = it->second.listen_fd;
                    }
                    if (listen_fd >= 0) handle_accept(listen_fd, owners[i]);
                    break;
                }
                case Kind::kTcp:
                    handle_tcp_readable(fds[i].fd);
                    break;
            }
        }
    }
}

std::uint16_t PosixTransport::find_free_port(std::uint16_t start) {
    for (std::uint16_t port = start; port < 65500; ++port) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        const sockaddr_in addr = loopback_addr(port);
        const bool ok =
            ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
        ::close(fd);
        if (ok) return port;
    }
    throw std::runtime_error("no free loopback port found");
}

void PosixTransport::set_observability(obs::MetricsRegistry* metrics, const std::string& node) {
    inst_ = {};
    if (metrics == nullptr) return;
    inst_.bytes_in = &metrics->counter("transport_bytes_in", node);
    inst_.bytes_out = &metrics->counter("transport_bytes_out", node);
    inst_.frames_in = &metrics->counter("transport_frames_in", node);
    inst_.frames_out = &metrics->counter("transport_frames_out", node);
}

}  // namespace narada::transport
