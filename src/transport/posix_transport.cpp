#include "transport/posix_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <sched.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <system_error>

#include "common/log.hpp"

// UDP segmentation/receive offload: present since Linux 4.18/5.0 but the
// libc headers in minimal toolchains may not carry the constants.
#ifndef SOL_UDP
#define SOL_UDP 17
#endif
#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif

namespace narada::transport {
namespace {

constexpr std::size_t kMaxDatagram = 64 * 1024;
/// Kernel caps a GSO send at UDP_MAX_SEGMENTS segments...
constexpr std::size_t kMaxGsoSegments = 64;
/// ...and the summed payload must fit the u16 UDP length field.
constexpr std::size_t kMaxGsoBytes = 65000;

bool same_dest(const sockaddr_in& a, const sockaddr_in& b) {
    return a.sin_port == b.sin_port && a.sin_addr.s_addr == b.sin_addr.s_addr;
}
constexpr std::uint32_t kMaxFrame = 16 * 1024 * 1024;
/// Compact a TCP rx buffer once this much consumed prefix accumulates
/// (until then parsing advances rx_head with no memmove at all).
constexpr std::size_t kRxCompactThreshold = 64 * 1024;

void set_nonblocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

}  // namespace

/// Loop-thread-only scratch: mmsghdr/iovec arrays sized to the batch knob,
/// a raw receive slab (batch x 64 KiB slices), and the reusable delivery
/// buffers handlers borrow. Allocated once at construction — the receive
/// path never touches the heap after warm-up.
struct PosixTransport::IoScratch {
    explicit IoScratch(std::size_t batch)
        : rx_raw(new std::uint8_t[batch * kMaxDatagram]),
          rx_msgs(batch),
          rx_iovs(batch),
          rx_addrs(batch),
          tx_msgs(batch),
          tx_iovs(batch),
          tx_ctrl(batch),
          rx_ctrl(batch),
          events(64) {
        tx_batch.reserve(batch);
        tx_groups.reserve(batch);
        udp_delivery.reserve(kMaxDatagram);
        tcp_delivery.reserve(kMaxDatagram);
        // The mmsghdr/iovec wiring never changes: set it up once instead of
        // re-initializing `batch` headers on every syscall. Only the fields
        // the kernel rewrites (rx msg_namelen) and the per-batch payload
        // pointers (tx iov/name) are touched per call.
        for (std::size_t i = 0; i < batch; ++i) {
            rx_iovs[i].iov_base = rx_raw.get() + i * kMaxDatagram;
            rx_iovs[i].iov_len = kMaxDatagram;
            std::memset(&rx_msgs[i], 0, sizeof(mmsghdr));
            rx_msgs[i].msg_hdr.msg_name = &rx_addrs[i];
            rx_msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
            rx_msgs[i].msg_hdr.msg_iov = &rx_iovs[i];
            rx_msgs[i].msg_hdr.msg_iovlen = 1;
            std::memset(&tx_msgs[i], 0, sizeof(mmsghdr));
            tx_msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
            tx_msgs[i].msg_hdr.msg_iov = &tx_iovs[i];
            tx_msgs[i].msg_hdr.msg_iovlen = 1;
        }
    }

    std::unique_ptr<std::uint8_t[]> rx_raw;
    std::vector<mmsghdr> rx_msgs;
    std::vector<iovec> rx_iovs;
    std::vector<sockaddr_in> rx_addrs;
    std::vector<mmsghdr> tx_msgs;
    std::vector<iovec> tx_iovs;
    std::vector<OutDatagram> tx_batch;  ///< entries mid-sendmmsg
    /// A GSO group: `count` consecutive tx_batch entries from `start`,
    /// same destination and equal payload size, sent as one message.
    struct TxGroup {
        std::size_t start;
        std::size_t count;
    };
    std::vector<TxGroup> tx_groups;
    /// Per-message cmsg storage (UDP_SEGMENT on tx, UDP_GRO on rx).
    struct alignas(cmsghdr) CtrlBuf {
        char data[CMSG_SPACE(sizeof(int))];
    };
    std::vector<CtrlBuf> tx_ctrl;
    std::vector<CtrlBuf> rx_ctrl;
    Bytes udp_delivery;                 ///< borrowed by on_datagram
    Bytes tcp_delivery;                 ///< borrowed by on_reliable
    /// Lock-free snapshot of port_to_endpoint_ for per-packet source
    /// resolution; refreshed when port_map_gen_ moves (bind/unbind).
    std::unordered_map<std::uint16_t, Endpoint> port_cache;
    std::uint64_t port_cache_gen = ~std::uint64_t{0};
    std::vector<Endpoint> udp_work;     ///< swap target for dirty_udp_
    std::vector<int> tcp_work;          ///< swap target for dirty_tcp_
    std::vector<epoll_event> events;
    std::uint8_t tcp_read_buf[64 * 1024];
};

PosixTransport::PosixTransport(PosixTransportOptions options)
    : options_(options),
      pool_(options.pool_buffers, kMaxDatagram) {
    options_.udp_batch = std::clamp<std::size_t>(options_.udp_batch, 1, 64);
    if (options_.udp_gso) {
        // Probe UDP_SEGMENT support once on a throwaway socket; a kernel
        // without it returns ENOPROTOOPT and the datapath stays plain.
        const int probe = ::socket(AF_INET, SOCK_DGRAM, 0);
        if (probe >= 0) {
            const int zero = 0;
            gso_ok_ = setsockopt(probe, SOL_UDP, UDP_SEGMENT, &zero, sizeof(zero)) == 0;
            ::close(probe);
        }
    }
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
        throw std::system_error(errno, std::generic_category(), "epoll_create1");
    }
    if (pipe(wake_pipe_) != 0) {
        const int saved = errno;
        ::close(epoll_fd_);
        throw std::system_error(saved, std::generic_category(), "pipe");
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
    scratch_ = std::make_unique<IoScratch>(options_.udp_batch);
    fd_table_[wake_pipe_[0]] = FdEntry{FdKind::kWake, {}};
    epoll_register(wake_pipe_[0]);
    loop_thread_ = std::thread([this] { loop(); });
}

PosixTransport::~PosixTransport() {
    running_ = false;
    wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    std::scoped_lock lock(mutex_);
    for (auto& [ep, binding] : bindings_) {
        if (binding.udp_fd >= 0) ::close(binding.udp_fd);
        if (binding.listen_fd >= 0) ::close(binding.listen_fd);
    }
    for (auto& [fd, conn] : tcp_conns_) ::close(fd);
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    ::close(epoll_fd_);
}

TimeUs PosixTransport::wall_now() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void PosixTransport::wake() {
    const char byte = 'w';
    (void)!::write(wake_pipe_[1], &byte, 1);
}

void PosixTransport::epoll_register(int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void PosixTransport::epoll_update(int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = fd;
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void PosixTransport::epoll_del(int fd) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

Bytes PosixTransport::acquire_buffer() { return pool_.acquire(); }

void PosixTransport::add_external(int fd, std::function<void()> on_ready) {
    {
        std::scoped_lock lock(mutex_);
        external_[fd] = std::make_unique<std::function<void()>>(std::move(on_ready));
        fd_table_[fd] = FdEntry{FdKind::kExternal, {}};
    }
    epoll_register(fd);
}

void PosixTransport::bind(const Endpoint& local, MessageHandler* handler) {
    if (handler == nullptr) throw std::invalid_argument("bind: null handler");
    Binding binding;
    binding.handler = handler;
    binding.endpoint = local;

    const sockaddr_in addr = loopback_addr(local.port);

    binding.udp_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (binding.udp_fd >= 0 && options_.reuseport) {
        // Must precede bind: SO_REUSEPORT lets the shards of a ShardRuntime
        // bind the same port, and the kernel hashes each flow's 4-tuple to
        // pick which shard's socket receives it.
        const int one = 1;
        setsockopt(binding.udp_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    }
    if (binding.udp_fd < 0 ||
        ::bind(binding.udp_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        if (binding.udp_fd >= 0) ::close(binding.udp_fd);
        throw std::system_error(saved, std::generic_category(), "udp bind " + local.str());
    }
    if (options_.udp_sockbuf > 0) {
        // Best-effort: the kernel clamps to net.core.{r,w}mem_max.
        const int sockbuf = static_cast<int>(options_.udp_sockbuf);
        setsockopt(binding.udp_fd, SOL_SOCKET, SO_RCVBUF, &sockbuf, sizeof(sockbuf));
        setsockopt(binding.udp_fd, SOL_SOCKET, SO_SNDBUF, &sockbuf, sizeof(sockbuf));
    }
    if (gso_ok_) {
        // Ask the kernel to coalesce same-flow arrivals; the receive path
        // splits them back on the UDP_GRO cmsg segment size (best-effort —
        // without it every datagram simply arrives individually).
        const int one = 1;
        setsockopt(binding.udp_fd, SOL_UDP, UDP_GRO, &one, sizeof(one));
    }

    binding.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    const int reuse = 1;
    setsockopt(binding.listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    if (options_.reuseport) {
        setsockopt(binding.listen_fd, SOL_SOCKET, SO_REUSEPORT, &reuse, sizeof(reuse));
    }
    if (binding.listen_fd < 0 ||
        ::bind(binding.listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(binding.listen_fd, 64) != 0) {
        const int saved = errno;
        ::close(binding.udp_fd);
        if (binding.listen_fd >= 0) ::close(binding.listen_fd);
        throw std::system_error(saved, std::generic_category(), "tcp bind " + local.str());
    }
    set_nonblocking(binding.udp_fd);
    set_nonblocking(binding.listen_fd);

    const int udp_fd = binding.udp_fd;
    const int listen_fd = binding.listen_fd;
    {
        std::scoped_lock lock(mutex_);
        // Rebinding replaces the handler but keeps sockets if same port.
        if (const auto it = bindings_.find(local); it != bindings_.end()) {
            ::close(binding.udp_fd);
            ::close(binding.listen_fd);
            it->second.handler = handler;
            return;
        }
        port_to_endpoint_[local.port] = local;
        port_map_gen_.fetch_add(1, std::memory_order_relaxed);
        fd_table_[udp_fd] = FdEntry{FdKind::kUdp, local};
        fd_table_[listen_fd] = FdEntry{FdKind::kListen, local};
        bindings_.emplace(local, std::move(binding));
    }
    // epoll_ctl is thread-safe against a concurrent epoll_wait; the loop
    // starts seeing events for these fds immediately, and the fd_table_
    // entries above are already in place.
    epoll_register(udp_fd);
    epoll_register(listen_fd);
}

void PosixTransport::unbind(const Endpoint& local) {
    std::vector<int> to_close;
    {
        std::scoped_lock lock(mutex_);
        const auto it = bindings_.find(local);
        if (it == bindings_.end()) return;
        to_close.push_back(it->second.udp_fd);
        to_close.push_back(it->second.listen_fd);
        fd_table_.erase(it->second.udp_fd);
        fd_table_.erase(it->second.listen_fd);
        bindings_.erase(it);
        port_to_endpoint_.erase(local.port);
        port_map_gen_.fetch_add(1, std::memory_order_relaxed);
        for (auto& [group, members] : groups_) std::erase(members, local);
        // Drop outgoing connections originating here.
        for (auto oit = outgoing_.begin(); oit != outgoing_.end();) {
            if (oit->first.first == local) {
                to_close.push_back(oit->second);
                tcp_conns_.erase(oit->second);
                fd_table_.erase(oit->second);
                oit = outgoing_.erase(oit);
            } else {
                ++oit;
            }
        }
    }
    for (int fd : to_close) {
        if (fd >= 0) {
            epoll_del(fd);
            ::close(fd);
        }
    }
}

void PosixTransport::send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) {
    bool need_wake = false;
    {
        std::scoped_lock lock(mutex_);
        const auto it = bindings_.find(from);
        if (it == bindings_.end()) {
            NARADA_WARN("posix", "send_datagram from unbound endpoint {}", from.str());
            return;
        }
        Binding& b = it->second;
        if (b.send_queue.size() >= options_.max_udp_backlog) {
            if (inst_.udp_backlog_dropped) inst_.udp_backlog_dropped->inc();
            return;  // best-effort, like UDP under pressure
        }
        OutDatagram out;
        out.addr = loopback_addr(to.port);
        out.payload = std::move(data);
        b.send_queue.push_back(std::move(out));
        if (!b.queued) {
            b.queued = true;
            dirty_udp_.push_back(from);
            need_wake = true;  // empty -> non-empty: one wake covers the burst
        }
    }
    if (need_wake) wake();
}

void PosixTransport::drain_udp(const Endpoint& owner) {
    IoScratch& s = *scratch_;
    while (true) {
        int fd = -1;
        std::size_t n = 0;
        {
            std::scoped_lock lock(mutex_);
            const auto it = bindings_.find(owner);
            if (it == bindings_.end()) return;  // unbound mid-flight
            Binding& b = it->second;
            fd = b.udp_fd;
            n = std::min(b.send_queue.size(), options_.udp_batch);
            if (n == 0) {
                b.queued = false;
                if (b.want_write) {
                    b.want_write = false;
                    epoll_update(fd, false);
                }
                return;
            }
            s.tx_batch.clear();
            for (std::size_t i = 0; i < n; ++i) {
                s.tx_batch.push_back(b.send_queue.pop_front());
            }
        }

        // Put unsent entries [from_idx, n) back at the queue front (they are
        // older than anything enqueued meanwhile); optionally arm EPOLLOUT.
        const auto requeue = [&](std::size_t from_idx, bool arm) {
            std::scoped_lock lock(mutex_);
            const auto it = bindings_.find(owner);
            if (it == bindings_.end()) return;
            Binding& b = it->second;
            for (std::size_t i = n; i > from_idx; --i) {
                b.send_queue.push_front(std::move(s.tx_batch[i - 1]));
            }
            if (arm && !b.want_write) {
                b.want_write = true;
                epoll_update(b.udp_fd, true);
            }
            // b.queued stays true: EPOLLOUT (or the retry) resumes the drain.
        };

        // Fold consecutive equal-size datagrams to one destination into GSO
        // groups: each group goes out as a single message with a UDP_SEGMENT
        // cmsg, so the kernel traverses its stack once for the whole run and
        // splits it on the wire. Mixed traffic degenerates to one-datagram
        // groups — exactly the plain sendmmsg path.
        s.tx_groups.clear();
        for (std::size_t i = 0; i < n;) {
            const std::size_t sz = s.tx_batch[i].payload.size();
            std::size_t count = 1;
            if (gso_ok_ && sz > 0) {
                std::size_t total = sz;
                while (i + count < n && count < kMaxGsoSegments &&
                       s.tx_batch[i + count].payload.size() == sz &&
                       total + sz <= kMaxGsoBytes &&
                       same_dest(s.tx_batch[i + count].addr, s.tx_batch[i].addr)) {
                    total += sz;
                    ++count;
                }
            }
            s.tx_groups.push_back({i, count});
            i += count;
        }
        const std::size_t m = s.tx_groups.size();
        bool used_gso = false;
        for (std::size_t g = 0; g < m; ++g) {
            const auto [start, count] = s.tx_groups[g];
            for (std::size_t i = start; i < start + count; ++i) {
                s.tx_iovs[i].iov_base = s.tx_batch[i].payload.data();
                s.tx_iovs[i].iov_len = s.tx_batch[i].payload.size();
            }
            msghdr& mh = s.tx_msgs[g].msg_hdr;
            mh.msg_name = &s.tx_batch[start].addr;
            mh.msg_iov = &s.tx_iovs[start];
            mh.msg_iovlen = count;
            if (count > 1) {
                used_gso = true;
                mh.msg_control = s.tx_ctrl[g].data;
                mh.msg_controllen = CMSG_SPACE(sizeof(std::uint16_t));
                cmsghdr* cm = CMSG_FIRSTHDR(&mh);
                cm->cmsg_level = SOL_UDP;
                cm->cmsg_type = UDP_SEGMENT;
                cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
                const auto seg = static_cast<std::uint16_t>(s.tx_batch[start].payload.size());
                std::memcpy(CMSG_DATA(cm), &seg, sizeof(seg));
            } else {
                // Headers are reused across batches: a stale control block
                // from a previous GSO group must not leak onto this message.
                mh.msg_control = nullptr;
                mh.msg_controllen = 0;
            }
        }
        const int sent_groups = ::sendmmsg(fd, s.tx_msgs.data(), static_cast<unsigned>(m), 0);
        if (inst_.syscalls_send) inst_.syscalls_send->inc();
        if (sent_groups < 0) {
            if (errno == EINTR) {
                requeue(0, false);
                continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (inst_.eagain_stalls) inst_.eagain_stalls->inc();
                requeue(0, true);
                return;
            }
            if (errno == EINVAL && used_gso) {
                // The probe lied (e.g. a device without segmentation support
                // behind the route): drop to plain sends permanently.
                gso_ok_ = false;
                requeue(0, false);
                continue;
            }
            // Hard per-message error (e.g. oversized datagram): UDP is
            // best-effort — drop this batch and keep draining.
            pool_.release_many(s.tx_batch.begin(), s.tx_batch.end(),
                               [](OutDatagram& o) -> Bytes& { return o.payload; });
            continue;
        }
        // Groups are contiguous runs over tx_batch, so the datagrams the
        // kernel consumed are exactly [0, start-of-first-unsent-group).
        const std::size_t sent = static_cast<std::size_t>(sent_groups) == m
                                     ? n
                                     : s.tx_groups[static_cast<std::size_t>(sent_groups)].start;
        if (inst_.send_batch) inst_.send_batch->observe(static_cast<double>(sent));
        for (std::size_t i = 0; i < sent; ++i) {
            if (inst_.frames_out) inst_.frames_out->inc();
            if (inst_.bytes_out) inst_.bytes_out->inc(s.tx_batch[i].payload.size());
        }
        pool_.release_many(s.tx_batch.begin(), s.tx_batch.begin() + sent,
                           [](OutDatagram& o) -> Bytes& { return o.payload; });
        if (sent < n) {
            if (inst_.eagain_stalls) inst_.eagain_stalls->inc();
            requeue(sent, true);
            return;
        }
    }
}

int PosixTransport::outgoing_fd(const Endpoint& from, const Endpoint& to) {
    {
        std::scoped_lock lock(mutex_);
        const auto it = outgoing_.find({from, to});
        if (it != outgoing_.end()) return it->second;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    const sockaddr_in addr = loopback_addr(to.port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    const int nodelay = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    set_nonblocking(fd);

    auto conn = std::make_unique<TcpConn>();
    conn->fd = fd;
    conn->local = from;
    conn->remote = to;
    conn->remote_known = true;  // we initiated; the peer is `to` by construction

    // Hello frame: announce our endpoint label so the peer can attribute
    // inbound messages (TCP source ports are ephemeral). First frame on the
    // output ring, so it precedes every payload frame.
    Bytes hello(6);
    hello[0] = static_cast<std::uint8_t>(from.host >> 24);
    hello[1] = static_cast<std::uint8_t>(from.host >> 16);
    hello[2] = static_cast<std::uint8_t>(from.host >> 8);
    hello[3] = static_cast<std::uint8_t>(from.host);
    hello[4] = static_cast<std::uint8_t>(from.port >> 8);
    hello[5] = static_cast<std::uint8_t>(from.port);

    {
        std::scoped_lock lock(mutex_);
        // Another thread may have raced the connect; keep the first one.
        const auto it = outgoing_.find({from, to});
        if (it != outgoing_.end()) {
            ::close(fd);
            return it->second;
        }
        tcp_conns_.emplace(fd, std::move(conn));
        outgoing_[{from, to}] = fd;
        fd_table_[fd] = FdEntry{FdKind::kTcp, {}};
        (void)enqueue_frame_locked(fd, hello);
    }
    epoll_register(fd);
    wake();
    return fd;
}

int PosixTransport::enqueue_frame_locked(int fd, const Bytes& payload) {
    const auto it = tcp_conns_.find(fd);
    if (it == tcp_conns_.end()) return -1;
    TcpConn& conn = *it->second;
    const std::size_t len = payload.size();
    const std::uint8_t header[4] = {
        static_cast<std::uint8_t>(len >> 24),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len),
    };
    conn.tx_ring.insert(conn.tx_ring.end(), header, header + 4);
    conn.tx_ring.insert(conn.tx_ring.end(), payload.begin(), payload.end());
    if (!conn.queued) {
        conn.queued = true;
        dirty_tcp_.push_back(fd);
        return 1;
    }
    return 0;
}

void PosixTransport::send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) {
    const int fd = outgoing_fd(from, to);
    if (fd < 0) {
        NARADA_DEBUG("posix", "reliable connect {} -> {} failed", from.str(), to.str());
        return;
    }
    int rc = -1;
    {
        std::scoped_lock lock(mutex_);
        rc = enqueue_frame_locked(fd, data);
        if (rc >= 0) {
            // Committed to the ordered ring; count here (the flush is
            // all-or-nothing short of the connection dying).
            if (inst_.frames_out) inst_.frames_out->inc();
            if (inst_.bytes_out) inst_.bytes_out->inc(data.size());
        }
    }
    pool_.release(std::move(data));  // payload was coalesced into the ring
    if (rc == 1) wake();
}

void PosixTransport::flush_tcp_locked(int fd) {
    const auto it = tcp_conns_.find(fd);
    if (it == tcp_conns_.end()) return;
    TcpConn& conn = *it->second;
    while (conn.tx_head < conn.tx_ring.size()) {
        const ssize_t n = ::send(fd, conn.tx_ring.data() + conn.tx_head,
                                 conn.tx_ring.size() - conn.tx_head, MSG_NOSIGNAL);
        if (inst_.syscalls_send) inst_.syscalls_send->inc();
        if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (inst_.eagain_stalls) inst_.eagain_stalls->inc();
                if (!conn.want_write) {
                    conn.want_write = true;
                    epoll_update(fd, true);
                }
                return;  // EPOLLOUT resumes; conn.queued stays true
            }
            close_tcp_locked(fd);
            return;
        }
        conn.tx_head += static_cast<std::size_t>(n);
    }
    conn.tx_ring.clear();
    conn.tx_head = 0;
    conn.queued = false;
    if (conn.want_write) {
        conn.want_write = false;
        epoll_update(fd, false);
    }
}

void PosixTransport::join_multicast(MulticastGroup group, const Endpoint& local) {
    std::scoped_lock lock(mutex_);
    auto& members = groups_[group];
    if (std::find(members.begin(), members.end(), local) == members.end()) {
        members.push_back(local);
    }
}

void PosixTransport::leave_multicast(MulticastGroup group, const Endpoint& local) {
    std::scoped_lock lock(mutex_);
    const auto it = groups_.find(group);
    if (it != groups_.end()) std::erase(it->second, local);
}

void PosixTransport::send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) {
    std::vector<Endpoint> members;
    {
        std::scoped_lock lock(mutex_);
        const auto it = groups_.find(group);
        if (it != groups_.end()) members = it->second;
    }
    for (const Endpoint& member : members) {
        if (member == from) continue;
        send_datagram(from, member, Bytes(data));  // fan-out copy per member
    }
}

TimerHandle PosixTransport::schedule(DurationUs delay, std::function<void()> task) {
    if (delay < 0) delay = 0;
    TimerHandle handle = kInvalidTimerHandle;
    {
        std::scoped_lock lock(mutex_);
        handle = next_timer_++;
        timers_.push_back(Timer{wall_now() + delay, handle, std::move(task)});
        std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
    }
    wake();
    return handle;
}

void PosixTransport::cancel_timer(TimerHandle handle) {
    if (handle == kInvalidTimerHandle) return;
    std::scoped_lock lock(mutex_);
    const auto it = std::find_if(timers_.begin(), timers_.end(),
                                 [handle](const Timer& t) { return t.handle == handle; });
    if (it != timers_.end()) {
        timers_.erase(it);
        std::make_heap(timers_.begin(), timers_.end(), std::greater<>{});
    }
}

void PosixTransport::handle_udp_readable(const Endpoint& owner) {
    IoScratch& s = *scratch_;
    int fd = -1;
    MessageHandler* handler = nullptr;
    {
        std::scoped_lock lock(mutex_);
        const auto it = bindings_.find(owner);
        if (it == bindings_.end()) return;
        fd = it->second.udp_fd;
        handler = it->second.handler;
        // Refresh the lock-free port snapshot while we hold the lock
        // anyway. A bind/unbind racing with this batch can leave one batch
        // of stale source labels — the same window the message itself spent
        // in flight, so protocol-invisible.
        const std::uint64_t gen = port_map_gen_.load(std::memory_order_relaxed);
        if (s.port_cache_gen != gen) {
            s.port_cache.clear();
            s.port_cache.insert(port_to_endpoint_.begin(), port_to_endpoint_.end());
            s.port_cache_gen = gen;
        }
    }
    const std::size_t batch = options_.udp_batch;
    // Consecutive datagrams usually share a source, so resolving
    // port -> endpoint memoizes the previous answer before falling back to
    // the snapshot; no lock, no shared lookup, on the per-packet path.
    std::uint16_t memo_port = 0;
    Endpoint memo_from{};
    bool memo_valid = false;
    while (true) {
        for (std::size_t i = 0; i < batch; ++i) {
            // Fields the kernel rewrites per call: the source-address length
            // and (with GRO) the control block carrying the segment size.
            s.rx_msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
            s.rx_msgs[i].msg_hdr.msg_control = s.rx_ctrl[i].data;
            s.rx_msgs[i].msg_hdr.msg_controllen = sizeof(s.rx_ctrl[i].data);
        }
        const int n = ::recvmmsg(fd, s.rx_msgs.data(), static_cast<unsigned>(batch), 0, nullptr);
        if (inst_.syscalls_recv) inst_.syscalls_recv->inc();
        if (n <= 0) return;  // EWOULDBLOCK or error: drained
        std::size_t delivered = 0;
        for (int i = 0; i < n; ++i) {
            const std::size_t len = s.rx_msgs[i].msg_len;
            const std::uint8_t* data = s.rx_raw.get() + static_cast<std::size_t>(i) * kMaxDatagram;
            const std::uint16_t src_port = ntohs(s.rx_addrs[i].sin_port);
            Endpoint from{0, src_port};
            if (memo_valid && src_port == memo_port) {
                from = memo_from;
            } else {
                const auto pit = s.port_cache.find(src_port);
                if (pit != s.port_cache.end()) from = pit->second;
                memo_port = src_port;
                memo_from = from;
                memo_valid = true;
            }
            // GRO may hand us several coalesced same-flow datagrams as one
            // message; the UDP_GRO cmsg carries the original segment size
            // (every segment equal, except a possibly-short tail), so
            // splitting on it restores the datagram boundaries exactly.
            std::size_t seg = len;
            for (cmsghdr* cm = CMSG_FIRSTHDR(&s.rx_msgs[i].msg_hdr); cm != nullptr;
                 cm = CMSG_NXTHDR(&s.rx_msgs[i].msg_hdr, cm)) {
                if (cm->cmsg_level == SOL_UDP && cm->cmsg_type == UDP_GRO) {
                    int gro_size = 0;
                    std::memcpy(&gro_size, CMSG_DATA(cm), sizeof(gro_size));
                    if (gro_size > 0) seg = static_cast<std::size_t>(gro_size);
                    break;
                }
            }
            if (seg == 0) seg = len > 0 ? len : 1;
            std::size_t off = 0;
            do {
                const std::size_t piece = std::min(seg, len - off);
                if (inst_.frames_in) inst_.frames_in->inc();
                if (inst_.bytes_in) inst_.bytes_in->inc(piece);
                // One reusable delivery buffer: assign() copies into
                // retained capacity, so the handler borrow costs zero
                // allocations.
                s.udp_delivery.assign(data + off, data + off + piece);
                handler->on_datagram(from, s.udp_delivery);
                ++delivered;
                off += piece;
            } while (off < len);
        }
        // The batch histogram counts datagrams (post-GRO-split) per syscall:
        // that is the amortization the knob controls.
        if (inst_.recv_batch) inst_.recv_batch->observe(static_cast<double>(delivered));
        if (static_cast<std::size_t>(n) < batch) return;  // drained
    }
}

void PosixTransport::handle_accept(int listen_fd, const Endpoint& local) {
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        set_nonblocking(fd);
        const int nodelay = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
        auto conn = std::make_unique<TcpConn>();
        conn->fd = fd;
        conn->local = local;
        conn->remote_known = false;  // until the hello frame arrives
        {
            std::scoped_lock lock(mutex_);
            tcp_conns_.emplace(fd, std::move(conn));
            fd_table_[fd] = FdEntry{FdKind::kTcp, {}};
        }
        epoll_register(fd);
    }
}

void PosixTransport::close_tcp_locked(int fd) {
    tcp_conns_.erase(fd);
    fd_table_.erase(fd);
    for (auto it = outgoing_.begin(); it != outgoing_.end();) {
        it = (it->second == fd) ? outgoing_.erase(it) : std::next(it);
    }
    epoll_del(fd);
    ::close(fd);
}

void PosixTransport::close_tcp(int fd) {
    std::scoped_lock lock(mutex_);
    close_tcp_locked(fd);
}

void PosixTransport::handle_tcp_readable(int fd) {
    IoScratch& s = *scratch_;
    while (true) {
        const ssize_t n = ::read(fd, s.tcp_read_buf, sizeof(s.tcp_read_buf));
        if (inst_.syscalls_recv) inst_.syscalls_recv->inc();
        if (n == 0) {
            close_tcp(fd);
            return;
        }
        if (n < 0) break;  // drained (EWOULDBLOCK) or transient error
        std::scoped_lock lock(mutex_);
        const auto it = tcp_conns_.find(fd);
        if (it == tcp_conns_.end()) return;
        Bytes& rx = it->second->rx_buffer;
        rx.insert(rx.end(), s.tcp_read_buf, s.tcp_read_buf + n);
    }

    // Extract complete frames. Parsing advances rx_head; the buffer is only
    // compacted when the consumed prefix grows past the threshold (no
    // erase-front per frame).
    const auto compact = [](TcpConn& conn) {
        if (conn.rx_head == conn.rx_buffer.size()) {
            conn.rx_buffer.clear();
            conn.rx_head = 0;
        } else if (conn.rx_head > kRxCompactThreshold) {
            conn.rx_buffer.erase(conn.rx_buffer.begin(),
                                 conn.rx_buffer.begin() + static_cast<std::ptrdiff_t>(conn.rx_head));
            conn.rx_head = 0;
        }
    };
    while (true) {
        Endpoint from;
        MessageHandler* handler = nullptr;
        {
            std::scoped_lock lock(mutex_);
            const auto it = tcp_conns_.find(fd);
            if (it == tcp_conns_.end()) return;
            TcpConn& conn = *it->second;
            const std::size_t avail = conn.rx_buffer.size() - conn.rx_head;
            if (avail < 4) {
                compact(conn);
                return;
            }
            const std::uint8_t* p = conn.rx_buffer.data() + conn.rx_head;
            const std::uint32_t len = (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
                                      (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
            if (len > kMaxFrame) {
                // Hostile or corrupt framing: drop the connection.
                close_tcp_locked(fd);
                return;
            }
            if (avail < 4 + static_cast<std::size_t>(len)) {
                compact(conn);
                return;
            }
            const std::uint8_t* payload = p + 4;
            if (!conn.remote_known) {
                // First frame: the peer's endpoint label.
                if (len == 6) {
                    conn.remote.host = (std::uint32_t{payload[0]} << 24) |
                                       (std::uint32_t{payload[1]} << 16) |
                                       (std::uint32_t{payload[2]} << 8) | std::uint32_t{payload[3]};
                    conn.remote.port =
                        static_cast<std::uint16_t>((payload[4] << 8) | payload[5]);
                    conn.remote_known = true;
                }
                conn.rx_head += 4 + len;
                continue;  // hello consumed; look for the next frame
            }
            s.tcp_delivery.assign(payload, payload + len);
            conn.rx_head += 4 + len;
            from = conn.remote;
            const auto bit = bindings_.find(conn.local);
            if (bit != bindings_.end()) handler = bit->second.handler;
        }
        if (inst_.frames_in) inst_.frames_in->inc();
        if (inst_.bytes_in) inst_.bytes_in->inc(s.tcp_delivery.size());
        if (handler != nullptr) handler->on_reliable(from, s.tcp_delivery);
    }
}

void PosixTransport::loop() {
    IoScratch& s = *scratch_;
    if (options_.pin_cpu >= 0) {
        // Best-effort: a pin past the online-CPU count simply fails and the
        // scheduler keeps placing the thread.
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(options_.pin_cpu), &set);
        (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }
    // Runs before the first epoll_wait, so it precedes every timer, handler
    // and external callback this loop will ever invoke.
    if (options_.loop_start) options_.loop_start();
    while (running_) {
        DurationUs timeout_us = 100 * kMillisecond;  // idle tick
        {
            std::scoped_lock lock(mutex_);
            if (!timers_.empty()) {
                timeout_us = std::max<DurationUs>(0, timers_.front().deadline - wall_now());
            }
        }
        // A due timer must not park the loop: the seed's `us/1000 + 1`
        // rounding put a 1 ms bubble on every already-due deadline.
        const int timeout_ms =
            timeout_us <= 0
                ? 0
                : static_cast<int>(std::min<DurationUs>(timeout_us / 1000 + 1, 1000));
        const int nev = ::epoll_wait(epoll_fd_, s.events.data(),
                                     static_cast<int>(s.events.size()), timeout_ms);
        if (!running_) break;

        // Fire timers due as of this instant (outside the wait, outside the
        // lock). The ceiling is captured once: a task that reschedules
        // itself with a zero delay lands past it and fires next iteration,
        // so self-rescheduling timers cannot livelock the loop away from
        // I/O events.
        const TimeUs fire_ceiling = wall_now();
        while (true) {
            std::function<void()> task;
            {
                std::scoped_lock lock(mutex_);
                if (timers_.empty() || timers_.front().deadline > fire_ceiling) break;
                std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
                task = std::move(timers_.back().task);
                timers_.pop_back();
            }
            task();
        }

        for (int i = 0; i < nev; ++i) {
            const int fd = s.events[i].data.fd;
            const std::uint32_t ev = s.events[i].events;
            FdEntry entry;
            {
                std::scoped_lock lock(mutex_);
                const auto it = fd_table_.find(fd);
                if (it == fd_table_.end()) continue;  // unbound/closed meanwhile
                entry = it->second;
            }
            switch (entry.kind) {
                case FdKind::kWake: {
                    char drain[64];
                    while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
                    }
                    break;
                }
                case FdKind::kUdp:
                    if (ev & (EPOLLIN | EPOLLERR)) handle_udp_readable(entry.owner);
                    if (ev & EPOLLOUT) drain_udp(entry.owner);
                    break;
                case FdKind::kListen:
                    handle_accept(fd, entry.owner);
                    break;
                case FdKind::kTcp:
                    if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) handle_tcp_readable(fd);
                    if (ev & EPOLLOUT) {
                        std::scoped_lock lock(mutex_);
                        flush_tcp_locked(fd);
                    }
                    break;
                case FdKind::kExternal: {
                    // Entries are never removed while the loop runs, so the
                    // pointer fetched under the lock stays valid for the call
                    // (made outside the lock: the callback may re-enter the
                    // transport, e.g. to deliver a forwarded datagram).
                    std::function<void()>* cb = nullptr;
                    {
                        std::scoped_lock lock(mutex_);
                        const auto eit = external_.find(fd);
                        if (eit != external_.end()) cb = eit->second.get();
                    }
                    if (cb != nullptr) (*cb)();
                    break;
                }
            }
        }

        // Drain send queues that turned non-empty since the last pass
        // (including sends issued by the handlers above).
        {
            std::scoped_lock lock(mutex_);
            s.udp_work.swap(dirty_udp_);
            s.tcp_work.swap(dirty_tcp_);
        }
        for (const Endpoint& ep : s.udp_work) drain_udp(ep);
        if (!s.tcp_work.empty()) {
            std::scoped_lock lock(mutex_);
            for (int fd : s.tcp_work) flush_tcp_locked(fd);
        }
        s.udp_work.clear();
        s.tcp_work.clear();
    }
}

std::uint16_t PosixTransport::find_free_port(std::uint16_t start) {
    for (std::uint16_t port = start; port < 65500; ++port) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        const sockaddr_in addr = loopback_addr(port);
        const bool ok =
            ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
        ::close(fd);
        if (ok) return port;
    }
    throw std::runtime_error("no free loopback port found");
}

void PosixTransport::set_observability(obs::MetricsRegistry* metrics, const std::string& node) {
    inst_ = {};
    if (metrics == nullptr) {
        pool_.set_instruments(nullptr, nullptr, nullptr);
        return;
    }
    inst_.bytes_in = &metrics->counter("transport_bytes_in", node);
    inst_.bytes_out = &metrics->counter("transport_bytes_out", node);
    inst_.frames_in = &metrics->counter("transport_frames_in", node);
    inst_.frames_out = &metrics->counter("transport_frames_out", node);
    inst_.syscalls_recv = &metrics->counter("transport_syscalls_recv", node);
    inst_.syscalls_send = &metrics->counter("transport_syscalls_send", node);
    inst_.eagain_stalls = &metrics->counter("transport_eagain_stalls", node);
    inst_.udp_backlog_dropped = &metrics->counter("transport_udp_backlog_dropped", node);
    inst_.recv_batch = &metrics->histogram("transport_recv_batch", node, obs::batch_buckets());
    inst_.send_batch = &metrics->histogram("transport_send_batch", node, obs::batch_buckets());
    pool_.set_instruments(&metrics->counter("transport_pool_hits", node),
                          &metrics->counter("transport_pool_misses", node),
                          &metrics->gauge("transport_pool_hwm", node));
}

}  // namespace narada::transport
