// Real-socket transport backend (loopback).
//
// Implements the same Transport + Scheduler interfaces as the simulator,
// over actual POSIX sockets on 127.0.0.1, so the identical protocol stack
// (brokers, BDNs, discovery clients, NTP) runs over real networking:
//
//   * datagrams  -> UDP sockets (genuinely lossy under pressure);
//   * reliable   -> TCP connections with u32 length-prefixed frames; the
//     first frame on each connection announces the sender's bound endpoint
//     (TCP source ports are ephemeral and would not identify the sender);
//   * multicast  -> process-local group fan-out over UDP (documented
//     emulation: realm scoping is a WAN property the loopback has not got);
//   * timers     -> a wall-clock timer heap.
//
// Datapath (see DESIGN.md "Real-socket datapath"): a level-triggered epoll
// reactor with an fd -> handler table replaces the poll()-over-every-socket
// loop, UDP is batched with recvmmsg/sendmmsg through per-socket send
// queues, TCP writes coalesce into a per-connection output ring flushed on
// writability, and receive/encode buffers recycle through a lock-light
// free-list pool (BufferPool) so the steady state allocates nothing per
// packet.
//
// Concurrency model (CP.2/CP.3): ONE internal event-loop thread runs the
// reactor and fires due timers, so all MessageHandler and timer callbacks
// are serialized exactly as on the simulator's virtual-time kernel —
// protocol objects need no locks. send_* and schedule() may be called from
// any thread (including from within callbacks): they enqueue under the
// transport mutex and wake the loop only on an empty -> non-empty queue
// transition, so a burst of sends costs one pipe write, not one per send.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include <netinet/in.h>

#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "transport/buffer_pool.hpp"
#include "transport/transport.hpp"

namespace narada::transport {

/// Datapath tuning knobs. The defaults suit the loopback benches; tests
/// shrink them to force backlog/EAGAIN paths.
struct PosixTransportOptions {
    std::size_t udp_batch = 32;          ///< recvmmsg/sendmmsg batch size (>= 1)
    std::size_t pool_buffers = 64;       ///< free-list capacity of the buffer pool
    std::size_t max_udp_backlog = 4096;  ///< queued datagrams per socket before drops
    /// SO_RCVBUF/SO_SNDBUF requested for UDP sockets (0 = kernel default).
    /// A sendmmsg burst can land a whole batch ahead of the receiver's
    /// next recvmmsg; the default ~208 KiB rcvbuf overflows after ~90
    /// 1-KiB datagrams, so the datapath asks for more headroom.
    std::size_t udp_sockbuf = 1 << 20;
    /// Use UDP generic segmentation/receive offload when the kernel has it:
    /// consecutive equal-size datagrams to one destination leave as a single
    /// UDP_SEGMENT send, and UDP_GRO coalesces arrivals so one stack
    /// traversal carries a whole batch each way. Falls back transparently
    /// (probed once at construction, and disabled on the first EINVAL).
    bool udp_gso = true;
    /// Set SO_REUSEPORT on the UDP socket and TCP listener before bind, so
    /// several transports (the shards of a ShardRuntime) can bind the same
    /// port and the kernel spreads flows across them by 4-tuple hash.
    bool reuseport = false;
    /// Pin the event-loop thread to this CPU (-1 = no pinning). Used by the
    /// sharded runtime's thread-per-core mode.
    int pin_cpu = -1;
    /// Runs on the event-loop thread before its first iteration — before
    /// any timer, handler or external callback can fire. The sharded
    /// runtime uses it to stamp the thread-local shard identity.
    std::function<void()> loop_start;
};

class PosixTransport final : public Transport, public Scheduler {
public:
    /// Starts the event-loop thread.
    explicit PosixTransport(PosixTransportOptions options = {});
    /// Stops the loop and closes every socket.
    ~PosixTransport() override;

    PosixTransport(const PosixTransport&) = delete;
    PosixTransport& operator=(const PosixTransport&) = delete;

    // --- Transport ----------------------------------------------------------
    /// Binds a UDP socket and a TCP listener on 127.0.0.1:port. The
    /// Endpoint's host id is an application-level label (all traffic is
    /// loopback); the port must be unique within the process/machine.
    /// Throws std::system_error on bind failure.
    void bind(const Endpoint& local, MessageHandler* handler) override;
    void unbind(const Endpoint& local) override;
    void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void join_multicast(MulticastGroup group, const Endpoint& local) override;
    void leave_multicast(MulticastGroup group, const Endpoint& local) override;
    void send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) override;
    /// Borrow an encode buffer from the recycling pool (returned to the
    /// pool after the bytes hit the wire when passed back via send_*).
    Bytes acquire_buffer() override;
    /// Return a buffer obtained from acquire_buffer() that will NOT travel
    /// through send_* (e.g. a cross-shard delivery payload after the
    /// borrowing handler returned). Safe from any thread.
    void release_buffer(Bytes buf) { pool_.release(std::move(buf)); }
    /// The recycling pool (sizing/occupancy introspection for snapshots).
    [[nodiscard]] const BufferPool& buffer_pool() const { return pool_; }

    /// Register an external event fd (eventfd/pipe read end): whenever it
    /// polls readable, `on_ready` runs on the event-loop thread — the
    /// cross-shard handoff wakeup of the sharded runtime. `on_ready` must
    /// drain the fd itself. The callback may not be unregistered while the
    /// loop runs; it is dropped (not invoked) at destruction.
    void add_external(int fd, std::function<void()> on_ready);

    // --- Scheduler ----------------------------------------------------------
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override;
    void cancel_timer(TimerHandle handle) override;

    /// Find a free port by probing bind() upward from `start` (test helper).
    static std::uint16_t find_free_port(std::uint16_t start);

    /// Mirror datapath instruments (traffic totals, syscall/batch/pool/
    /// backlog counters) into a metrics registry. MUST be called before the
    /// first bind(): the instrument pointers are read by the event-loop
    /// thread without synchronization, so they may only be written while no
    /// sockets exist. Updates themselves are relaxed atomics and safe from
    /// every thread.
    void set_observability(obs::MetricsRegistry* metrics, const std::string& node = "posix");

private:
    /// A queued outbound datagram (pooled payload, pre-resolved address).
    struct OutDatagram {
        sockaddr_in addr{};
        Bytes payload;
    };

    /// FIFO of outbound datagrams: a power-of-two ring over a vector.
    /// Unlike std::deque it never allocates in steady state — slots (and
    /// the pooled Bytes capacity inside them) recycle in place; growth only
    /// happens when the depth exceeds every previous high-water mark.
    class DatagramRing {
    public:
        [[nodiscard]] std::size_t size() const { return size_; }
        [[nodiscard]] bool empty() const { return size_ == 0; }

        void push_back(OutDatagram&& out) {
            if (size_ == slots_.size()) grow();
            slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(out);
            ++size_;
        }
        /// Put an entry back at the front (requeue after a partial
        /// sendmmsg); the pop that handed it out guarantees room.
        void push_front(OutDatagram&& out) {
            if (size_ == slots_.size()) grow();
            head_ = (head_ + slots_.size() - 1) & (slots_.size() - 1);
            slots_[head_] = std::move(out);
            ++size_;
        }
        OutDatagram pop_front() {
            OutDatagram out = std::move(slots_[head_]);
            head_ = (head_ + 1) & (slots_.size() - 1);
            --size_;
            return out;
        }

    private:
        void grow() {
            std::vector<OutDatagram> bigger(slots_.empty() ? 16 : slots_.size() * 2);
            for (std::size_t i = 0; i < size_; ++i) {
                bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
            }
            slots_ = std::move(bigger);
            head_ = 0;
        }

        std::vector<OutDatagram> slots_;
        std::size_t head_ = 0;
        std::size_t size_ = 0;
    };

    struct Binding {
        MessageHandler* handler = nullptr;
        Endpoint endpoint;
        int udp_fd = -1;
        int listen_fd = -1;
        DatagramRing send_queue;  ///< drained in sendmmsg batches
        bool queued = false;      ///< on dirty_udp_ or mid-drain (wake elision)
        bool want_write = false;  ///< EPOLLOUT registered after EAGAIN
    };

    /// An accepted or initiated TCP connection carrying framed messages.
    struct TcpConn {
        int fd = -1;
        Endpoint local;        ///< our endpoint label
        Endpoint remote;       ///< peer label (learned from its hello frame)
        bool remote_known = false;
        Bytes rx_buffer;       ///< partial frame accumulation
        std::size_t rx_head = 0;  ///< consumed prefix (compacted lazily)
        Bytes tx_ring;         ///< coalesced outbound frames (header+payload)
        std::size_t tx_head = 0;  ///< flushed prefix of tx_ring
        bool queued = false;      ///< on dirty_tcp_ or mid-flush
        bool want_write = false;  ///< EPOLLOUT registered after EAGAIN
    };

    /// What the reactor knows about a registered fd: dispatch without
    /// scanning any container.
    enum class FdKind : std::uint8_t { kWake, kUdp, kListen, kTcp, kExternal };
    struct FdEntry {
        FdKind kind;
        Endpoint owner;  ///< bound endpoint for kUdp/kListen
    };

    struct Timer {
        TimeUs deadline;
        TimerHandle handle;
        std::function<void()> task;
        bool operator>(const Timer& other) const { return deadline > other.deadline; }
    };

    /// Loop-thread-only scratch for recvmmsg/sendmmsg (msghdr/iovec arrays
    /// and the raw receive slab); defined in the .cpp to keep <sys/socket.h>
    /// internals out of this header.
    struct IoScratch;

    void loop();
    void wake();
    /// epoll_ctl wrappers (fd_table_ entries are managed by the callers,
    /// under the same mutex_ hold as the owning container update).
    void epoll_register(int fd, bool want_write = false);
    void epoll_update(int fd, bool want_write);
    void epoll_del(int fd);
    void handle_udp_readable(const Endpoint& owner);
    /// Drain a binding's send queue in sendmmsg batches until empty or the
    /// kernel pushes back (then EPOLLOUT resumes it).
    void drain_udp(const Endpoint& owner);
    void handle_accept(int listen_fd, const Endpoint& local);
    void handle_tcp_readable(int fd);
    /// Flush a connection's output ring; expects mutex_ held.
    void flush_tcp_locked(int fd);
    void close_tcp(int fd);
    void close_tcp_locked(int fd);
    /// Get or create the outgoing connection from `from` to `to`.
    int outgoing_fd(const Endpoint& from, const Endpoint& to);
    /// Append a length-prefixed frame to a connection's output ring and put
    /// it on the dirty list; expects mutex_ held. Returns -1 if the fd is
    /// unknown, 1 if the caller must wake the loop, 0 otherwise.
    int enqueue_frame_locked(int fd, const Bytes& payload);
    [[nodiscard]] static TimeUs wall_now();

    PosixTransportOptions options_;
    BufferPool pool_;

    std::mutex mutex_;  // guards every container below
    std::map<Endpoint, Binding> bindings_;
    std::unordered_map<int, std::unique_ptr<TcpConn>> tcp_conns_;     // by fd
    std::unordered_map<int, FdEntry> fd_table_;                       // reactor dispatch
    std::map<std::pair<Endpoint, Endpoint>, int> outgoing_;           // (from,to) -> fd
    std::map<MulticastGroup, std::vector<Endpoint>> groups_;
    /// External-fd callbacks (add_external). Entries are never erased while
    /// the loop runs, so the loop may call through a raw pointer fetched
    /// under mutex_ without holding the lock across the call.
    std::unordered_map<int, std::unique_ptr<std::function<void()>>> external_;
    std::map<std::uint16_t, Endpoint> port_to_endpoint_;
    /// Bumped (under mutex_) whenever port_to_endpoint_ changes; the loop
    /// thread keeps a lock-free snapshot in its scratch and refreshes it on
    /// a generation mismatch, so the per-packet source-endpoint resolution
    /// on the receive path takes no lock (see handle_udp_readable).
    std::atomic<std::uint64_t> port_map_gen_{0};
    std::vector<Endpoint> dirty_udp_;  ///< bindings with newly non-empty queues
    std::vector<int> dirty_tcp_;       ///< conns with newly non-empty rings

    std::vector<Timer> timers_;  // min-heap by deadline
    TimerHandle next_timer_ = 1;

    /// Kernel supports UDP_SEGMENT (probed in the constructor). Written in
    /// the constructor and by the loop thread on an EINVAL fallback; only
    /// the loop thread reads it afterwards.
    bool gso_ok_ = false;

    int epoll_fd_ = -1;
    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> running_{true};
    std::unique_ptr<IoScratch> scratch_;  // loop-thread only
    std::thread loop_thread_;

    // Observability (optional; written once before any bind, see
    // set_observability).
    struct Instruments {
        obs::Counter* bytes_in = nullptr;
        obs::Counter* bytes_out = nullptr;
        obs::Counter* frames_in = nullptr;
        obs::Counter* frames_out = nullptr;
        obs::Counter* syscalls_recv = nullptr;   ///< recvmmsg/read calls
        obs::Counter* syscalls_send = nullptr;   ///< sendmmsg/send calls
        obs::Counter* eagain_stalls = nullptr;   ///< kernel pushed back; EPOLLOUT armed
        obs::Counter* udp_backlog_dropped = nullptr;
        obs::Histogram* recv_batch = nullptr;    ///< datagrams per recvmmsg
        obs::Histogram* send_batch = nullptr;    ///< datagrams per sendmmsg
    } inst_;
};

}  // namespace narada::transport
