// Real-socket transport backend (loopback).
//
// Implements the same Transport + Scheduler interfaces as the simulator,
// over actual POSIX sockets on 127.0.0.1, so the identical protocol stack
// (brokers, BDNs, discovery clients, NTP) runs over real networking:
//
//   * datagrams  -> UDP sockets (genuinely lossy under pressure);
//   * reliable   -> TCP connections with u32 length-prefixed frames; the
//     first frame on each connection announces the sender's bound endpoint
//     (TCP source ports are ephemeral and would not identify the sender);
//   * multicast  -> process-local group fan-out over UDP (documented
//     emulation: realm scoping is a WAN property the loopback has not got);
//   * timers     -> a wall-clock timer heap.
//
// Concurrency model (CP.2/CP.3): ONE internal event-loop thread runs
// poll() over every socket plus a wake pipe and fires due timers, so all
// MessageHandler and timer callbacks are serialized exactly as on the
// simulator's virtual-time kernel — protocol objects need no locks.
// send_* and schedule() may be called from any thread (including from
// within callbacks).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "transport/transport.hpp"

namespace narada::transport {

class PosixTransport final : public Transport, public Scheduler {
public:
    /// Starts the event-loop thread.
    PosixTransport();
    /// Stops the loop and closes every socket.
    ~PosixTransport() override;

    PosixTransport(const PosixTransport&) = delete;
    PosixTransport& operator=(const PosixTransport&) = delete;

    // --- Transport ----------------------------------------------------------
    /// Binds a UDP socket and a TCP listener on 127.0.0.1:port. The
    /// Endpoint's host id is an application-level label (all traffic is
    /// loopback); the port must be unique within the process/machine.
    /// Throws std::system_error on bind failure.
    void bind(const Endpoint& local, MessageHandler* handler) override;
    void unbind(const Endpoint& local) override;
    void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void join_multicast(MulticastGroup group, const Endpoint& local) override;
    void leave_multicast(MulticastGroup group, const Endpoint& local) override;
    void send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) override;

    // --- Scheduler ----------------------------------------------------------
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override;
    void cancel_timer(TimerHandle handle) override;

    /// Find a free port by probing bind() upward from `start` (test helper).
    static std::uint16_t find_free_port(std::uint16_t start);

    /// Mirror traffic totals (bytes/frames in and out) into a metrics
    /// registry. MUST be called before the first bind(): the instrument
    /// pointers are read by the event-loop thread without synchronization,
    /// so they may only be written while no sockets exist. Updates
    /// themselves are relaxed atomics and safe from every thread.
    void set_observability(obs::MetricsRegistry* metrics, const std::string& node = "posix");

private:
    struct Binding {
        MessageHandler* handler = nullptr;
        Endpoint endpoint;
        int udp_fd = -1;
        int listen_fd = -1;
    };

    /// An accepted or initiated TCP connection carrying framed messages.
    struct TcpConn {
        int fd = -1;
        Endpoint local;        ///< our endpoint label
        Endpoint remote;       ///< peer label (learned from its hello frame)
        bool remote_known = false;
        Bytes rx_buffer;       ///< partial frame accumulation
    };

    struct Timer {
        TimeUs deadline;
        TimerHandle handle;
        std::function<void()> task;
        bool operator>(const Timer& other) const { return deadline > other.deadline; }
    };

    void loop();
    void wake();
    void handle_udp_readable(int udp_fd, MessageHandler* handler);
    void handle_accept(int listen_fd, const Endpoint& local);
    void handle_tcp_readable(int fd);
    void close_tcp(int fd);
    /// Get or create the outgoing connection from `from` to `to`.
    int outgoing_fd(const Endpoint& from, const Endpoint& to);
    static void send_frame(int fd, const Bytes& payload);
    [[nodiscard]] static TimeUs wall_now();

    std::mutex mutex_;  // guards every container below
    std::map<Endpoint, Binding> bindings_;
    std::unordered_map<int, std::unique_ptr<TcpConn>> tcp_conns_;     // by fd
    std::map<std::pair<Endpoint, Endpoint>, int> outgoing_;           // (from,to) -> fd
    std::map<MulticastGroup, std::vector<Endpoint>> groups_;
    std::map<std::uint16_t, Endpoint> port_to_endpoint_;

    std::vector<Timer> timers_;  // min-heap by deadline
    TimerHandle next_timer_ = 1;

    int wake_pipe_[2] = {-1, -1};
    std::atomic<bool> running_{true};
    std::thread loop_thread_;

    // Observability (optional; written once before any bind, see
    // set_observability).
    struct Instruments {
        obs::Counter* bytes_in = nullptr;
        obs::Counter* bytes_out = nullptr;
        obs::Counter* frames_in = nullptr;
        obs::Counter* frames_out = nullptr;
    } inst_;
};

}  // namespace narada::transport
