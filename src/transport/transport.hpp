// Transport abstraction.
//
// The paper uses three kinds of communication (§3, §5, §7):
//   * reliable connection-oriented messages (TCP) — broker↔broker links and
//     optionally the request to the BDN;
//   * unreliable datagrams (UDP) — discovery responses and pings, where the
//     loss of many-hop packets is *deliberately exploited* to filter remote
//     brokers (§5.2);
//   * multicast — the BDN-less fallback, which only reaches brokers in the
//     sender's network realm (§7, §9).
//
// Both backends implement this interface: sim::SimNetwork (deterministic
// virtual time) and transport::PosixTransport (real sockets). Protocol code
// is written once against it.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace narada::transport {

/// Receives inbound messages for a bound endpoint. Implementations must not
/// assume any particular thread: the sim delivers on the kernel's thread,
/// the POSIX backend on its receive thread.
class MessageHandler {
public:
    virtual ~MessageHandler() = default;

    /// An unreliable datagram arrived (UDP semantics).
    virtual void on_datagram(const Endpoint& from, const Bytes& data) = 0;

    /// A reliable, ordered message arrived (TCP-link semantics). Defaults
    /// to the datagram path since most nodes treat both uniformly.
    virtual void on_reliable(const Endpoint& from, const Bytes& data) { on_datagram(from, data); }
};

/// Identifier of a multicast group (maps to a group address).
using MulticastGroup = std::uint32_t;

/// Well-known group used for BDN-less discovery (§7).
constexpr MulticastGroup kDiscoveryMulticastGroup = 1;

class Transport {
public:
    virtual ~Transport() = default;

    /// Attach `handler` to a local endpoint. The handler must outlive the
    /// binding; rebinding an endpoint replaces its handler.
    virtual void bind(const Endpoint& local, MessageHandler* handler) = 0;
    virtual void unbind(const Endpoint& local) = 0;

    /// Fire-and-forget datagram. May be silently lost; never blocks.
    virtual void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) = 0;

    /// Reliable ordered message. Never lost while both endpoints live;
    /// FIFO per (from, to) pair.
    virtual void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) = 0;

    /// Multicast membership and send. Delivery scope is realm-limited in
    /// the simulator and emulated locally by the POSIX backend.
    virtual void join_multicast(MulticastGroup group, const Endpoint& local) = 0;
    virtual void leave_multicast(MulticastGroup group, const Endpoint& local) = 0;
    virtual void send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) = 0;

    /// Borrow an encode buffer from the transport's recycling pool, if it
    /// has one. Encode into it (wire::ByteWriter's recycle constructor
    /// keeps the capacity) and pass the result back through send_* — the
    /// POSIX backend returns the buffer to its pool once the bytes hit the
    /// wire, so a steady-state sender allocates nothing per message. The
    /// default returns an empty buffer (simulated paths just allocate).
    virtual Bytes acquire_buffer() { return {}; }
};

}  // namespace narada::transport
