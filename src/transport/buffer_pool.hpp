// Lock-light free-list buffer pool for the real-socket datapath.
//
// Receive buffers, encode buffers and queued send payloads cycle through
// one pool so the steady state of the transport allocates nothing per
// packet: a datagram is received into a pooled buffer, handed to the
// handler as a borrowed reference, and the buffer is reused for the next
// batch; an outgoing message is encoded into a pooled buffer
// (Transport::acquire_buffer), moved through the send queue, and released
// back here after sendmmsg puts it on the wire.
//
// "Lock-light": acquire/release are one uncontended mutex acquisition
// around a vector push/pop — no allocation, no syscalls, and the mutex is
// only ever contended between a sender thread and the event loop for the
// duration of that push/pop. Hit/miss counters are optional relaxed
// atomics (see obs::Counter) wired by the owning transport.
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace narada::transport {

class BufferPool {
public:
    /// `max_buffers` bounds the idle free list (excess releases free their
    /// memory); `buffer_capacity` is the capacity fresh buffers reserve so
    /// a pooled buffer can hold any datagram without growing.
    explicit BufferPool(std::size_t max_buffers = 64,
                        std::size_t buffer_capacity = 64 * 1024)
        : max_buffers_(max_buffers), buffer_capacity_(buffer_capacity) {
        // The free list itself must never grow mid-flight: a release on the
        // event loop would pay vector growth right on the datapath.
        free_.reserve(max_buffers_);
    }

    /// Pop a recycled buffer (cleared, capacity retained) or allocate a
    /// fresh one reserving `buffer_capacity` bytes.
    Bytes acquire() {
        {
            std::scoped_lock lock(mu_);
            note_acquire_locked();
            if (!free_.empty()) {
                Bytes buf = std::move(free_.back());
                free_.pop_back();
                if (hits_ != nullptr) hits_->inc();
                buf.clear();
                return buf;
            }
        }
        if (misses_ != nullptr) misses_->inc();
        Bytes buf;
        buf.reserve(buffer_capacity_);
        return buf;
    }

    /// Return a buffer to the free list. Buffers beyond `max_buffers` (or
    /// with no capacity worth keeping) are simply freed.
    void release(Bytes buf) {
        if (buf.capacity() == 0) return;
        std::scoped_lock lock(mu_);
        if (outstanding_ > 0) --outstanding_;
        if (free_.size() >= max_buffers_) return;  // dropped: pool is full
        free_.push_back(std::move(buf));
    }

    /// Return a whole batch under one lock acquisition — the event loop
    /// recycles every payload of a sendmmsg batch at once, and one mutex
    /// round-trip per batch beats one per buffer. `proj` maps an element to
    /// the Bytes to recycle (identity for plain Bytes ranges).
    template <typename It, typename Proj = std::identity>
    void release_many(It first, It last, Proj proj = {}) {
        std::scoped_lock lock(mu_);
        for (; first != last; ++first) {
            Bytes& buf = proj(*first);
            if (buf.capacity() == 0) continue;
            if (outstanding_ > 0) --outstanding_;
            if (free_.size() >= max_buffers_) continue;  // pool full: drop this one
            free_.push_back(std::move(buf));
        }
    }

    /// Optional hit/miss counters and high-watermark gauge (relaxed
    /// atomics; any may be null). Wire before concurrent use — the pointers
    /// themselves are unsynchronized. The gauge tracks the peak number of
    /// buffers simultaneously out of the pool: the pool size a shard would
    /// need to never mint a fresh buffer.
    void set_instruments(obs::Counter* hits, obs::Counter* misses,
                         obs::Gauge* high_watermark = nullptr) {
        hits_ = hits;
        misses_ = misses;
        hwm_ = high_watermark;
        if (hwm_ != nullptr) {
            std::scoped_lock lock(mu_);
            hwm_->set(static_cast<double>(peak_outstanding_));
        }
    }

    [[nodiscard]] std::size_t idle() const {
        std::scoped_lock lock(mu_);
        return free_.size();
    }
    /// Peak count of buffers simultaneously held outside the pool.
    [[nodiscard]] std::size_t peak_outstanding() const {
        std::scoped_lock lock(mu_);
        return peak_outstanding_;
    }
    [[nodiscard]] std::size_t buffer_capacity() const { return buffer_capacity_; }
    [[nodiscard]] std::size_t max_buffers() const { return max_buffers_; }

private:
    void note_acquire_locked() {
        ++outstanding_;
        if (outstanding_ > peak_outstanding_) {
            peak_outstanding_ = outstanding_;
            if (hwm_ != nullptr) hwm_->set(static_cast<double>(peak_outstanding_));
        }
    }

    mutable std::mutex mu_;
    std::vector<Bytes> free_;
    std::size_t max_buffers_;
    std::size_t buffer_capacity_;
    /// Buffers currently out of the pool. Releases of buffers acquired
    /// elsewhere (cross-shard handoffs return payloads to the producing
    /// pool, external callers may hand in their own vectors) clamp at zero
    /// rather than underflow.
    std::size_t outstanding_ = 0;
    std::size_t peak_outstanding_ = 0;
    obs::Counter* hits_ = nullptr;
    obs::Counter* misses_ = nullptr;
    obs::Gauge* hwm_ = nullptr;
};

}  // namespace narada::transport
