// Thread-per-core sharded real-socket datapath.
//
// A ShardRuntime runs N PosixTransport reactors ("shards"), each with its
// own epoll loop thread, BufferPool, DatagramRing send queues, timer heap
// and recv/send scratch — strictly share-nothing on the hot path. Every
// endpoint bound through the runtime is bound on every shard with
// SO_REUSEPORT, so the kernel hashes each flow's 4-tuple and spreads the
// inbound datagram load across the reactors with no user-space
// coordination at all: a datagram is received, parsed and (usually)
// answered entirely on one core that touches no shared lock.
//
// Serialization contract. Protocol objects (Broker, Bdn, RudpChannel …)
// are single-threaded by design — on the sim they ride the virtual-time
// kernel, on one PosixTransport they ride its loop thread. The sharded
// runtime preserves that contract with *home shards*: port(i) hands out a
// ShardPort (a Transport + Scheduler facade) whose bind() pins the
// endpoint's handler to shard i. Datagrams the kernel lands on the home
// shard are delivered directly; datagrams landing elsewhere hop once over
// a bounded lock-free SPSC ring (one per ordered shard pair, eventfd
// wakeup) and are delivered on the home thread. Timers scheduled through a
// ShardPort fire on its shard's thread. The result: a protocol object
// homed on shard i only ever executes on shard i's thread, locklessly,
// while the runtime as a whole scales across cores.
//
// Cross-shard rules (DESIGN.md "Threading model"):
//   * forwarded payloads are copied into a buffer from the *arrival*
//     shard's pool and released back to that pool after delivery, so pools
//     never leak buffers across shards;
//   * rings are bounded: a full ring sheds datagrams (UDP semantics,
//     counted) and falls back to a heap-allocating timer post for tasks
//     (never lost);
//   * send_reliable is flow-hashed over (from, to) no matter the calling
//     thread, preserving per-pair FIFO through a single TCP connection.
//
// shards = 1 degenerates to a plain PosixTransport (no SO_REUSEPORT, no
// rings, direct delivery) — the virtual-time sim is untouched either way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/scheduler.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "transport/posix_transport.hpp"
#include "transport/spsc_ring.hpp"
#include "transport/transport.hpp"

namespace narada::transport {

struct ShardRuntimeOptions {
    /// Reactor thread count (clamped to >= 1).
    std::size_t shards = 1;
    /// Optional CPU pins, one per shard (shorter vectors pin a prefix; -1
    /// entries skip that shard).
    std::vector<int> pin_cpus;
    /// Capacity of each cross-shard handoff ring (rounded up to a power of
    /// two by SpscRing).
    std::size_t handoff_depth = 1024;
    /// Per-shard datapath knobs (reuseport/pin_cpu/loop_start are managed
    /// by the runtime and overwritten).
    PosixTransportOptions transport;
};

class ShardRuntime;

/// Per-shard Transport + Scheduler facade. bind() homes the endpoint's
/// handler on this shard (all callbacks and timers on one thread); sends
/// route through the calling shard's own sockets when already on a shard
/// thread. Obtained from ShardRuntime::port(i); copyable handles, owned by
/// the runtime.
class ShardPort final : public Transport, public Scheduler {
public:
    // --- Transport ----------------------------------------------------------
    void bind(const Endpoint& local, MessageHandler* handler) override;
    void unbind(const Endpoint& local) override;
    void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void join_multicast(MulticastGroup group, const Endpoint& local) override;
    void leave_multicast(MulticastGroup group, const Endpoint& local) override;
    void send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) override;
    Bytes acquire_buffer() override;

    // --- Scheduler (fires on this shard's thread) ---------------------------
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override;
    void cancel_timer(TimerHandle handle) override;

    [[nodiscard]] std::size_t shard() const { return shard_; }

private:
    friend class ShardRuntime;
    ShardPort() = default;

    ShardRuntime* rt_ = nullptr;
    std::size_t shard_ = 0;
};

class ShardRuntime final : public Transport, public Scheduler {
public:
    explicit ShardRuntime(ShardRuntimeOptions options = {});
    ~ShardRuntime() override;

    ShardRuntime(const ShardRuntime&) = delete;
    ShardRuntime& operator=(const ShardRuntime&) = delete;

    [[nodiscard]] std::size_t shards() const { return shards_.size(); }
    /// The per-shard facade: bind a protocol object through port(i) to home
    /// it (handler callbacks + timers) on shard i's thread.
    [[nodiscard]] ShardPort& port(std::size_t i) { return ports_[i]; }
    /// Shard i's underlying transport (pool introspection in tests).
    [[nodiscard]] const PosixTransport& shard_transport(std::size_t i) const {
        return *shards_[i];
    }

    // --- Transport ----------------------------------------------------------
    /// Homes the handler on shard 0 — drop-in PosixTransport semantics
    /// (everything serialized on one thread). Spread protocol objects over
    /// port(i) to use more cores.
    void bind(const Endpoint& local, MessageHandler* handler) override;
    void unbind(const Endpoint& local) override;
    void send_datagram(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void send_reliable(const Endpoint& from, const Endpoint& to, Bytes data) override;
    void join_multicast(MulticastGroup group, const Endpoint& local) override;
    void leave_multicast(MulticastGroup group, const Endpoint& local) override;
    void send_multicast(MulticastGroup group, const Endpoint& from, Bytes data) override;
    Bytes acquire_buffer() override;

    /// Homes the handler on shard `home`: datagrams landing on other shards
    /// are forwarded over the handoff rings and delivered on shard `home`'s
    /// thread, so `handler` needs no synchronization.
    void bind_home(const Endpoint& local, MessageHandler* handler, std::size_t home);
    /// No home: deliver on whichever shard the kernel picked, concurrently.
    /// `handler` must be thread-safe (packet-level counters, stateless
    /// reflectors — the bench uses this to measure raw spread).
    void bind_spread(const Endpoint& local, MessageHandler* handler);

    // --- Scheduler (fires on shard 0) ---------------------------------------
    TimerHandle schedule(DurationUs delay, std::function<void()> task) override;
    void cancel_timer(TimerHandle handle) override;

    /// Run `fn(arg)` on shard `target`'s thread. From another shard of this
    /// runtime this is a zero-alloc ring handoff; from shard `target`
    /// itself it runs inline; from any other thread it falls back to a
    /// zero-delay timer (allocates). Never lost: a full ring also falls
    /// back to the timer path.
    void run_on(std::size_t target, void (*fn)(void*), void* arg);

    /// Per-shard instruments under node labels "<node>#0".."<node>#N-1",
    /// plus runtime-level sharded handoff counters under `node`. MUST be
    /// called before the first bind (same contract as PosixTransport).
    void set_observability(obs::MetricsRegistry* metrics, const std::string& node = "sharded");
    /// One-line JSON: shard count, handoff totals, per-shard pool sizing
    /// (idle + high-watermark).
    [[nodiscard]] std::string debug_snapshot() const;

    /// The shard index the calling thread belongs to, or -1 if the caller
    /// is not one of this runtime's reactor threads.
    [[nodiscard]] int current_shard() const;

private:
    friend class ShardPort;

    /// One unit crossing a shard boundary: a forwarded datagram/reliable
    /// frame (pooled payload owned by `producer`'s pool) or a raw task.
    struct Handoff {
        enum class Kind : std::uint8_t { kDatagram, kReliable, kTask };
        Kind kind = Kind::kDatagram;
        std::uint8_t producer = 0;  ///< shard whose pool owns `payload`
        Endpoint from;
        MessageHandler* handler = nullptr;
        Bytes payload;
        void (*fn)(void*) = nullptr;
        void* arg = nullptr;
    };

    /// Per-shard MessageHandler wrapper installed on the underlying
    /// transports: delivers directly on the home shard, forwards otherwise.
    struct DeliveryProxy final : MessageHandler {
        void on_datagram(const Endpoint& from, const Bytes& data) override;
        void on_reliable(const Endpoint& from, const Bytes& data) override;

        ShardRuntime* rt = nullptr;
        std::size_t shard = 0;     ///< which shard this proxy is bound on
        MessageHandler* target = nullptr;
        int home = -1;             ///< -1 = spread (deliver in place)
    };

    struct BoundEndpoint {
        MessageHandler* target = nullptr;
        int home = -1;
        std::vector<std::unique_ptr<DeliveryProxy>> proxies;  ///< one per shard
    };

    static constexpr unsigned kTimerShardShift = 56;
    [[nodiscard]] static TimerHandle encode_timer(std::size_t shard, TimerHandle inner) {
        return (static_cast<TimerHandle>(shard + 1) << kTimerShardShift) | inner;
    }

    void do_bind(const Endpoint& local, MessageHandler* handler, int home);
    /// Shard whose sockets/pool a call on the current thread should use:
    /// the caller's own shard on a reactor thread, shard 0 otherwise.
    [[nodiscard]] std::size_t route_shard() const;
    /// Deterministic flow shard for (from, to) — FIFO for send_reliable.
    [[nodiscard]] std::size_t flow_shard(const Endpoint& from, const Endpoint& to) const;
    [[nodiscard]] SpscRing<Handoff>& ring(std::size_t producer, std::size_t consumer) {
        return *rings_[producer * shards_.size() + consumer];
    }
    /// Forward one unit from `producer` to `consumer`; returns false (ring
    /// full) without signaling — `h` is left intact for the caller to
    /// reclaim.
    bool forward(std::size_t producer, std::size_t consumer, Handoff&& h);
    /// Copy an inbound frame into `producer`'s pool and forward it to the
    /// home shard (sheds + counts on a full ring).
    void forward_frame(std::size_t producer, std::size_t consumer, const Endpoint& from,
                       const Bytes& data, bool reliable, MessageHandler* target);
    void signal(std::size_t consumer);
    /// eventfd callback on shard c: drain the fd, then pop + dispatch every
    /// producer ring into c.
    void drain_handoffs(std::size_t consumer);

    TimerHandle schedule_on(std::size_t shard, DurationUs delay, std::function<void()> task);
    void cancel_encoded(TimerHandle handle);

    ShardRuntimeOptions options_;
    std::vector<std::unique_ptr<PosixTransport>> shards_;
    std::unique_ptr<ShardPort[]> ports_;  ///< one per shard (private ctor)
    std::vector<std::unique_ptr<SpscRing<Handoff>>> rings_;  ///< producer*N + consumer
    std::vector<int> eventfds_;  ///< consumer-side wakeup, one per shard

    std::mutex mutex_;  ///< control plane only: bind/unbind bookkeeping
    std::map<Endpoint, BoundEndpoint> bound_;

    struct Instruments {
        obs::ShardedCounter* forwarded = nullptr;  ///< producer-slot increments
        obs::ShardedCounter* dropped = nullptr;    ///< ring-full sheds (producer slot)
        obs::ShardedCounter* delivered = nullptr;  ///< consumer-slot increments
        obs::ShardedHistogram* drain_batch = nullptr;  ///< handoffs per wakeup
    } inst_;
};

}  // namespace narada::transport
