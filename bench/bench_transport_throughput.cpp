// UDP datapath throughput: the seed's loop shape vs. the epoll/mmsg
// datapath, measured over real loopback sockets (ISSUE PR 4 acceptance
// gate: >= 2x datagrams/sec at 64 B and 1 KiB payloads).
//
// The "legacy" side reproduces the pre-change datapath faithfully, in-bench
// (the real code was rewritten, so the baseline lives here):
//   * send: one ::sendto per datagram, payload constructed per message;
//   * receive: ::poll over a pollfd set rebuilt from the binding maps under
//     the mutex every iteration, then one ::recvfrom per datagram into a
//     stack slab, a fresh heap copy per packet (`Bytes(buffer, buffer+n)`),
//     and a mutex-guarded port->endpoint lookup per packet — exactly the
//     seed's handle_udp_readable.
//
// The "batched" side is the shipping PosixTransport: pooled encode buffers
// (acquire_buffer), per-socket send rings drained with sendmmsg + UDP GSO,
// recvmmsg + UDP GRO into a reused slab, zero steady-state allocations (see
// test_datapath_alloc for the allocation proof; this bench proves rate).
//
// Workload shape: each side sprays from its best faithful vantage point.
// The batched sender runs as a zero-delay timer on the transport's loop
// thread — where protocol traffic originates in the real stack (brokers
// and BDNs send from on_datagram and timer callbacks) — so bursts
// accumulate in the send ring and leave in sendmmsg/GSO batches. The
// legacy sender sprays from the caller thread, the seed's natural fast
// path: its send_datagram was a direct ::sendto from whatever thread
// called it, and driving it from its timer heap instead would be slower
// still (the seed's `us/1000 + 1` poll rounding parks a due timer for a
// millisecond). Both pacers keep at most kWindow datagrams outstanding and
// forgive the balance after a stall so kernel drops cannot wedge the
// window shut; unpaced spraying would overflow the socket buffer and
// measure scheduler noise, not the datapath. Delivered datagrams/sec then
// measures the end-to-end per-packet CPU cost, which is exactly what the
// epoll/mmsg/GSO rework reduces.
//
// The sharded section sweeps the same credit-paced spray over a
// ShardRuntime at several reactor counts (--shards, default {1,2,4,8}
// capped at twice the hardware concurrency): one pacer per shard runs as a
// zero-delay timer on that shard's own loop thread, spraying from several
// per-shard source endpoints round-robin so SO_REUSEPORT's 4-tuple hash
// spreads the deliveries across the whole reactor group, into a single
// bind_spread counting sink (thread-safe, delivered in place — no handoff
// on this path, so the sweep measures raw kernel-spread scaling). Every
// sample also records process CPU utilization over its measurement window
// (getrusage), so the results show cores burned next to datagrams/sec.
//
// Results go to stdout (NARADA_JSON lines + a table) and to
// BENCH_transport.json in the working directory — the repo's perf
// trajectory record; CI uploads it from the bench-smoke job and validates
// the shard_sweep schema.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "transport/posix_transport.hpp"
#include "transport/shard_runtime.hpp"

using namespace narada;
using SteadyClock = std::chrono::steady_clock;

namespace {

constexpr int kSprayMs = 400;              // measurement window per run
constexpr int kWarmupMs = 50;              // pools/rings/caches settle
constexpr std::uint64_t kWindow = 128;     // max datagrams in flight
constexpr auto kStallTimeout = std::chrono::milliseconds(2);
constexpr std::size_t kMaxDatagram = 64 * 1024;

struct PathSample {
    double dps = 0;        ///< delivered datagrams/sec
    double cpu_cores = 0;  ///< process CPU-seconds per wall-second over the window
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
};

/// Process CPU time (user + system, every thread) — deltas over a
/// measurement window give utilization in units of cores.
double cpu_seconds() {
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    const auto tv = [](const timeval& t) {
        return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

/// Credit-based pacing state, ticked from the owning loop thread: refill
/// the window up to kWindow outstanding; if nothing was delivered for
/// kStallTimeout, the balance was dropped by the kernel — forgive it so the
/// window reopens.
struct Pacer {
    std::uint64_t sent = 0;
    std::uint64_t forgiven = 0;
    std::uint64_t last_received = 0;
    SteadyClock::time_point last_progress = SteadyClock::now();

    template <typename SendOne>
    void tick(std::uint64_t received, SendOne&& send_one) {
        const auto now = SteadyClock::now();
        if (received != last_received) {
            last_received = received;
            last_progress = now;
        } else if (now - last_progress > kStallTimeout) {
            forgiven = sent - received;
            last_progress = now;
        }
        std::uint64_t inflight = sent - received - forgiven;
        while (inflight < kWindow) {
            send_one(sent);
            ++sent;
            ++inflight;
        }
    }
};

/// Measurement protocol for a pacer running on another thread: let it warm
/// up for kWarmupMs, then count deliveries over spray_ms.
PathSample measure_window(int spray_ms, const std::function<std::uint64_t()>& received) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kWarmupMs));
    const std::uint64_t base = received();
    const double cpu_base = cpu_seconds();
    const auto start = SteadyClock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(spray_ms));
    const std::uint64_t delivered = received() - base;
    const double cpu_used = cpu_seconds() - cpu_base;
    const double elapsed = std::chrono::duration<double>(SteadyClock::now() - start).count();
    PathSample sample;
    sample.received = delivered;
    sample.dps = static_cast<double>(delivered) / elapsed;
    sample.cpu_cores = cpu_used / elapsed;
    return sample;
}

/// Caller-thread spray (the legacy sender): tick the pacer in a tight loop
/// for kWarmupMs + spray_ms, yielding when the window is full, and measure
/// deliveries over the post-warmup stretch.
PathSample caller_spray(int spray_ms, const std::function<std::uint64_t()>& received,
                        const std::function<void(std::uint64_t seq)>& send_one) {
    Pacer pacer;
    const auto warm_end = SteadyClock::now() + std::chrono::milliseconds(kWarmupMs);
    while (SteadyClock::now() < warm_end) {
        pacer.tick(received(), send_one);
        std::this_thread::yield();
    }
    const std::uint64_t base = received();
    const double cpu_base = cpu_seconds();
    const auto start = SteadyClock::now();
    const auto deadline = start + std::chrono::milliseconds(spray_ms);
    while (SteadyClock::now() < deadline) {
        pacer.tick(received(), send_one);
        // Yield instead of sleeping: on small machines the receiver is a
        // sibling thread on the same core, and a timed sleep would put its
        // latency on every window turnaround.
        std::this_thread::yield();
    }
    const double cpu_used = cpu_seconds() - cpu_base;
    const double elapsed = std::chrono::duration<double>(SteadyClock::now() - start).count();
    PathSample sample;
    sample.sent = pacer.sent;
    sample.received = received() - base;
    sample.dps = static_cast<double>(sample.received) / elapsed;
    sample.cpu_cores = cpu_used / elapsed;
    return sample;
}

// --- Legacy datapath (the seed's transport, reproduced in-bench) ---------
//
// Both sides of the comparison run the realsock testbed's process shape:
// kEndpoints bound endpoints (each a UDP socket plus a TCP listener, as
// the transport always creates), traffic flowing between two of them. The
// seed's loop pays for every binding on every iteration — it rebuilds the
// pollfd/kind/owner vectors from the binding and connection maps under the
// mutex, polls the full fd set, and linearly scans the results — which is
// precisely the O(sockets) tax the epoll reactor's fd->handler table
// removes.

constexpr std::size_t kEndpoints = 8;  // bench_realsock: 5 brokers + BDN + client + NTP

struct LegacyBinding {
    Endpoint endpoint;
    int udp_fd = -1;
    int listen_fd = -1;
};

int legacy_udp_socket(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        std::perror("bench: legacy udp bind");
        std::exit(1);
    }
    return fd;
}

int legacy_listen_socket(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    const int reuse = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        std::perror("bench: legacy tcp bind");
        std::exit(1);
    }
    return fd;
}

PathSample legacy_rate(std::size_t payload_size, int spray_ms) {
    std::mutex mutex;  // the seed's transport mutex
    std::map<Endpoint, LegacyBinding> bindings;
    std::map<std::uint16_t, Endpoint> port_to_endpoint;

    std::uint16_t probe = 46000;
    for (std::size_t i = 0; i < kEndpoints; ++i) {
        probe = transport::PosixTransport::find_free_port(probe);
        LegacyBinding b;
        b.endpoint = Endpoint{static_cast<HostId>(i + 1), probe};
        b.udp_fd = legacy_udp_socket(probe);
        b.listen_fd = legacy_listen_socket(probe);
        port_to_endpoint[probe] = b.endpoint;
        bindings[b.endpoint] = b;
        ++probe;
    }
    const Endpoint tx_ep = bindings.begin()->second.endpoint;
    const Endpoint rx_ep = std::next(bindings.begin())->second.endpoint;
    const int rx_udp_fd = bindings[rx_ep].udp_fd;

    int wake_pipe[2] = {-1, -1};
    if (::pipe(wake_pipe) != 0) std::exit(1);

    sockaddr_in dst{};
    dst.sin_family = AF_INET;
    dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    dst.sin_port = htons(rx_ep.port);

    std::atomic<std::uint64_t> received{0};
    std::atomic<bool> stop{false};
    std::thread loop([&] {
        // The seed's loop(), minus timers: per iteration it re-derives the
        // full pollfd set from the maps under the mutex, then scans the
        // poll results.
        enum class Kind : std::uint8_t { kWake, kUdp, kListen };
        std::uint8_t buffer[kMaxDatagram];
        std::uint64_t consumed = 0;  // keeps the per-packet copy observable
        while (!stop.load(std::memory_order_relaxed)) {
            std::vector<pollfd> fds;
            std::vector<Kind> kinds;
            std::vector<Endpoint> owners;
            {
                std::scoped_lock lock(mutex);
                fds.push_back({wake_pipe[0], POLLIN, 0});
                kinds.push_back(Kind::kWake);
                owners.push_back(Endpoint{});
                for (const auto& [ep, binding] : bindings) {
                    fds.push_back({binding.udp_fd, POLLIN, 0});
                    kinds.push_back(Kind::kUdp);
                    owners.push_back(ep);
                    fds.push_back({binding.listen_fd, POLLIN, 0});
                    kinds.push_back(Kind::kListen);
                    owners.push_back(ep);
                }
            }
            const int ready = ::poll(fds.data(), fds.size(), 1);
            if (ready <= 0) continue;
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
                if (kinds[i] != Kind::kUdp) continue;
                int udp_fd = -1;
                {
                    std::scoped_lock lock(mutex);
                    const auto it = bindings.find(owners[i]);
                    if (it != bindings.end()) udp_fd = it->second.udp_fd;
                }
                if (udp_fd < 0) continue;
                while (true) {
                    sockaddr_in src{};
                    socklen_t src_len = sizeof(src);
                    const ssize_t n =
                        ::recvfrom(udp_fd, buffer, sizeof(buffer), 0,
                                   reinterpret_cast<sockaddr*>(&src), &src_len);
                    if (n < 0) break;  // EWOULDBLOCK: drained
                    Endpoint from{0, ntohs(src.sin_port)};
                    {
                        std::scoped_lock lock(mutex);
                        const auto pit = port_to_endpoint.find(from.port);
                        if (pit != port_to_endpoint.end()) from = pit->second;
                    }
                    const Bytes delivered(buffer, buffer + n);  // per-packet copy
                    consumed += delivered.size() + from.port;
                    if (udp_fd == rx_udp_fd) {
                        received.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }
        }
        if (consumed == 0) std::printf("legacy receiver: nothing consumed\n");
    });

    const PathSample sample = caller_spray(
        spray_ms, [&] { return received.load(std::memory_order_relaxed); },
        [&](std::uint64_t seq) {
            // Payload construction per message, binding lookup under the
            // mutex, one sendto per message — the seed's send_datagram.
            const Bytes payload(payload_size, static_cast<std::uint8_t>(seq));
            int fd = -1;
            {
                std::scoped_lock lock(mutex);
                const auto it = bindings.find(tx_ep);
                if (it != bindings.end()) fd = it->second.udp_fd;
            }
            (void)::sendto(fd, payload.data(), payload.size(), 0,
                           reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
        });

    stop.store(true, std::memory_order_relaxed);
    loop.join();
    for (auto& [ep, b] : bindings) {
        ::close(b.udp_fd);
        ::close(b.listen_fd);
    }
    ::close(wake_pipe[0]);
    ::close(wake_pipe[1]);
    return sample;
}

// --- Batched datapath (the shipping PosixTransport) ----------------------

class CountingSink final : public transport::MessageHandler {
public:
    void on_datagram(const Endpoint&, const Bytes&) override {
        received_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t received() const {
        return received_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> received_{0};
};

PathSample batched_rate(std::size_t payload_size, int spray_ms,
                        obs::MetricsRegistry& registry) {
    // Everything the loop-thread pacer touches outlives the transport:
    // declared first so the transport (and with it the loop thread and any
    // pending timer) is destroyed before the state the timer captures.
    CountingSink noop;
    CountingSink sink;
    Pacer pacer;  // loop-thread only after the first schedule()
    std::atomic<std::uint64_t> sent_published{0};
    std::atomic<bool> stop{false};
    std::vector<Endpoint> endpoints;
    std::function<void()> tick;

    // One transport, all bindings on it: the realistic process shape (a
    // broker binds every endpoint to one transport).
    transport::PosixTransportOptions options;
    options.pool_buffers = kWindow * 3;  // window + both loops' scratch stay pooled
    transport::PosixTransport transport(options);
    transport.set_observability(&registry, "bench");

    // Same process shape as the legacy measurement: kEndpoints bound
    // endpoints, traffic between the first two. The reactor's fd table
    // makes the idle ones free; the seed's loop paid for them every wake.
    std::uint16_t probe = 46500;
    for (std::size_t i = 0; i < kEndpoints; ++i) {
        probe = transport::PosixTransport::find_free_port(probe);
        const Endpoint ep{static_cast<HostId>(i + 1), probe};
        transport.bind(ep, i == 1 ? &sink : &noop);
        endpoints.push_back(ep);
        ++probe;
    }
    const Endpoint a = endpoints[0];
    const Endpoint b = endpoints[1];

    // The pacer runs as a self-rescheduling zero-delay timer on the
    // transport's own loop thread — the thread protocol sends come from.
    // Each tick enqueues a burst; the loop drains it in sendmmsg/GSO
    // batches on the same iteration and delivers it through recvmmsg/GRO
    // on the next, so the pipeline never crosses threads.
    tick = [&] {
        if (stop.load(std::memory_order_relaxed)) return;
        pacer.tick(sink.received(), [&](std::uint64_t seq) {
            Bytes buf = transport.acquire_buffer();
            buf.resize(payload_size, static_cast<std::uint8_t>(seq));
            transport.send_datagram(a, b, std::move(buf));
        });
        sent_published.store(pacer.sent, std::memory_order_relaxed);
        transport.schedule(0, tick);  // a copy holding only references
    };
    transport.schedule(0, tick);

    PathSample sample = measure_window(spray_ms, [&] { return sink.received(); });
    stop.store(true, std::memory_order_relaxed);
    sample.sent = sent_published.load(std::memory_order_relaxed);
    return sample;  // transport dtor joins the loop before locals go away
}

// --- Sharded datapath (ShardRuntime: SO_REUSEPORT reactor group) ---------

/// Flows per shard-local sender: the kernel's reuseport hash is per
/// 4-tuple, so a handful of distinct source ports per sender keeps the
/// receive load statistically balanced across the reactor group.
constexpr std::size_t kFlowsPerSender = 4;

/// bind_spread sink: deliveries arrive concurrently on every reactor
/// thread, so the counters are atomic — one padded slot per sender (the
/// sender index rides in payload byte 0) so each pacer can track its own
/// deliveries for credit pacing.
class SpreadSink final : public transport::MessageHandler {
public:
    explicit SpreadSink(std::size_t senders) : slots_(senders) {}
    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (!data.empty() && data[0] < slots_.size()) {
            slots_[data[0]].count.fetch_add(1, std::memory_order_relaxed);
        }
    }
    [[nodiscard]] std::uint64_t from_sender(std::size_t i) const {
        return slots_[i].count.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t total() const {
        std::uint64_t sum = 0;
        for (const Slot& s : slots_) sum += s.count.load(std::memory_order_relaxed);
        return sum;
    }

private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> count{0};
    };
    std::vector<Slot> slots_;
};

/// Aggregate delivered datagrams/sec over a ShardRuntime with `nshards`
/// reactors: one credit-paced sender per shard (a self-rescheduling
/// zero-delay timer homed on that shard, so its acquire/send cycle stays
/// inside the shard's own pool and sendmmsg ring), all spraying into one
/// spread-bound sink that the kernel fans across the reactor group.
PathSample sharded_rate(std::size_t nshards, std::size_t payload_size, int spray_ms) {
    struct Sender {
        Pacer pacer;  // touched only on its shard's loop thread
        std::size_t next_flow = 0;
        std::vector<Endpoint> sources;
    };

    // Everything the shard threads touch outlives the runtime: declared
    // first so the runtime (and with it every reactor thread and pending
    // timer) is destroyed before the state the pacers capture.
    CountingSink noop;
    SpreadSink sink(nshards);
    std::atomic<bool> stop{false};
    std::vector<Sender> senders(nshards);
    std::vector<std::function<void()>> ticks(nshards);

    PathSample sample;
    {
        transport::ShardRuntimeOptions options;
        options.shards = nshards;
        options.transport.pool_buffers = kWindow * 3;  // window + loop scratch per shard
        transport::ShardRuntime rt(options);

        std::uint16_t probe = transport::PosixTransport::find_free_port(47000);
        const Endpoint rx{1, probe};
        rt.bind_spread(rx, &sink);
        ++probe;
        for (std::size_t i = 0; i < nshards; ++i) {
            for (std::size_t f = 0; f < kFlowsPerSender; ++f) {
                probe = transport::PosixTransport::find_free_port(probe);
                const Endpoint src{static_cast<HostId>(2 + i), probe};
                rt.port(i).bind(src, &noop);
                senders[i].sources.push_back(src);
                ++probe;
            }
        }

        for (std::size_t i = 0; i < nshards; ++i) {
            ticks[i] = [&, i, rx] {
                if (stop.load(std::memory_order_relaxed)) return;
                Sender& s = senders[i];
                s.pacer.tick(sink.from_sender(i), [&](std::uint64_t seq) {
                    Bytes buf = rt.acquire_buffer();  // shard i's pool: we run on shard i
                    buf.resize(std::max<std::size_t>(payload_size, 1),
                               static_cast<std::uint8_t>(seq));
                    buf[0] = static_cast<std::uint8_t>(i);  // sender tag for pacing
                    rt.send_datagram(s.sources[s.next_flow], rx, std::move(buf));
                    s.next_flow = (s.next_flow + 1) % s.sources.size();
                });
                rt.port(i).schedule(0, ticks[i]);
            };
            rt.port(i).schedule(0, ticks[i]);
        }

        sample = measure_window(spray_ms, [&] { return sink.total(); });
        stop.store(true, std::memory_order_relaxed);
    }  // runtime dtor joins every reactor thread before the pacers go away
    for (const Sender& s : senders) sample.sent += s.pacer.sent;
    return sample;
}

/// `--shards 1,2,4[,8]` — explicit sweep points. Default: {1,2,4,8} capped
/// at twice the hardware concurrency (oversubscribing further measures the
/// scheduler, not the datapath); 1 is always kept as the baseline.
std::vector<std::size_t> parse_shards(int argc, char** argv, std::size_t hw_cores) {
    std::string spec;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            spec = argv[i + 1];
        } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
            spec = argv[i] + 9;
        }
    }
    std::vector<std::size_t> shards;
    if (spec.empty()) {
        for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
            if (n == 1 || n <= 2 * hw_cores) shards.push_back(n);
        }
        return shards;
    }
    std::size_t value = 0;
    bool in_number = false;
    for (const char c : spec + ",") {
        if (c >= '0' && c <= '9') {
            value = value * 10 + static_cast<std::size_t>(c - '0');
            in_number = true;
        } else {
            if (in_number && value > 0) shards.push_back(value);
            value = 0;
            in_number = false;
        }
    }
    if (shards.empty()) shards.push_back(1);
    return shards;
}

struct PayloadResult {
    std::size_t payload_bytes = 0;
    double legacy_dps = 0;   ///< best run
    double batched_dps = 0;  ///< best run
    double legacy_mean = 0;
    double batched_mean = 0;
    double legacy_cpu = 0;   ///< CPU cores of the best run
    double batched_cpu = 0;  ///< CPU cores of the best run
    double speedup = 0;      ///< best/best
};

struct ShardResult {
    std::size_t shards = 0;
    double dps = 0;       ///< best run
    double mean_dps = 0;
    double cpu_cores = 0;  ///< CPU cores of the best run
    double scaling = 0;    ///< best vs. the 1-shard best
};

}  // namespace

int main(int argc, char** argv) {
    const int kRuns = bench::parse_runs(argc, argv, 5);
    const std::size_t hw_cores = std::max(1u, std::thread::hardware_concurrency());
    const std::vector<std::size_t> shard_counts = parse_shards(argc, argv, hw_cores);
    obs::MetricsRegistry registry;

    std::vector<PayloadResult> results;
    for (const std::size_t payload : {std::size_t{64}, std::size_t{1024}}) {
        SampleSet legacy_dps, batched_dps;
        PayloadResult r;
        r.payload_bytes = payload;
        for (int run = 0; run < kRuns; ++run) {
            const PathSample legacy = legacy_rate(payload, kSprayMs);
            const PathSample batched = batched_rate(payload, kSprayMs, registry);
            legacy_dps.add(legacy.dps);
            batched_dps.add(batched.dps);
            if (legacy.dps > r.legacy_dps) {
                r.legacy_dps = legacy.dps;
                r.legacy_cpu = legacy.cpu_cores;
            }
            if (batched.dps > r.batched_dps) {
                r.batched_dps = batched.dps;
                r.batched_cpu = batched.cpu_cores;
            }
        }
        r.legacy_mean = legacy_dps.mean();
        r.batched_mean = batched_dps.mean();
        r.speedup = r.legacy_dps > 0 ? r.batched_dps / r.legacy_dps : 0;
        results.push_back(r);
    }

    bench::print_heading("UDP throughput: seed loop vs. epoll + mmsg + GSO datapath");
    std::printf("%-10s %16s %16s %9s %16s\n", "payload", "legacy kdps", "batched kdps",
                "speedup", "cpu (leg/bat)");
    for (const PayloadResult& r : results) {
        std::printf("%7zu B %9.1f (best) %9.1f (best) %8.2fx %7.2f /%5.2f\n",
                    r.payload_bytes, r.legacy_dps / 1e3, r.batched_dps / 1e3, r.speedup,
                    r.legacy_cpu, r.batched_cpu);
        std::printf("%10s %9.1f (mean) %9.1f (mean)\n", "", r.legacy_mean / 1e3,
                    r.batched_mean / 1e3);
        bench::print_json_record(
            "transport_throughput",
            {{"payload_bytes", static_cast<double>(r.payload_bytes)},
             {"legacy_kdps", r.legacy_dps / 1e3},
             {"batched_kdps", r.batched_dps / 1e3},
             {"legacy_mean_kdps", r.legacy_mean / 1e3},
             {"batched_mean_kdps", r.batched_mean / 1e3},
             {"legacy_cpu_cores", r.legacy_cpu},
             {"batched_cpu_cores", r.batched_cpu},
             {"speedup", r.speedup}});
    }

    // The shard sweep: aggregate 64 B throughput over the reactor group at
    // each configured shard count, scaling reported against the 1-shard
    // baseline of the same sweep.
    std::vector<ShardResult> sweep;
    for (const std::size_t n : shard_counts) {
        SampleSet dps_samples;
        ShardResult sr;
        sr.shards = n;
        for (int run = 0; run < kRuns; ++run) {
            const PathSample s = sharded_rate(n, 64, kSprayMs);
            dps_samples.add(s.dps);
            if (s.dps > sr.dps) {
                sr.dps = s.dps;
                sr.cpu_cores = s.cpu_cores;
            }
        }
        sr.mean_dps = dps_samples.mean();
        sweep.push_back(sr);
    }
    double base_dps = 0;
    for (const ShardResult& sr : sweep) {
        if (sr.shards == 1) base_dps = sr.dps;
    }
    for (ShardResult& sr : sweep) {
        sr.scaling = base_dps > 0 ? sr.dps / base_dps : 0;
    }

    bench::print_heading("Sharded datapath: SO_REUSEPORT reactor-group sweep (64 B)");
    std::printf("(%zu hardware cores)\n", hw_cores);
    std::printf("%-7s %12s %12s %10s %8s\n", "shards", "best kdps", "mean kdps",
                "cpu cores", "scaling");
    for (const ShardResult& sr : sweep) {
        std::printf("%7zu %12.1f %12.1f %10.2f %7.2fx\n", sr.shards, sr.dps / 1e3,
                    sr.mean_dps / 1e3, sr.cpu_cores, sr.scaling);
        bench::print_json_record("transport_shard_sweep",
                                 {{"shards", static_cast<double>(sr.shards)},
                                  {"kdps", sr.dps / 1e3},
                                  {"mean_kdps", sr.mean_dps / 1e3},
                                  {"cpu_cores", sr.cpu_cores},
                                  {"scaling", sr.scaling},
                                  {"hw_cores", static_cast<double>(hw_cores)}});
    }

    // BENCH_transport.json: the machine-readable perf-trajectory record.
    {
        obs::JsonWriter w;
        w.begin_object()
            .field("bench", "transport_throughput")
            .field("runs", kRuns)
            .field("spray_ms", kSprayMs)
            .field("window", static_cast<std::uint64_t>(kWindow))
            .field("hw_cores", static_cast<std::uint64_t>(hw_cores))
            .key("results")
            .begin_array();
        for (const PayloadResult& r : results) {
            w.begin_object()
                .field("payload_bytes", static_cast<std::uint64_t>(r.payload_bytes))
                .field("legacy_dps", r.legacy_dps, 1)
                .field("batched_dps", r.batched_dps, 1)
                .field("legacy_mean_dps", r.legacy_mean, 1)
                .field("batched_mean_dps", r.batched_mean, 1)
                .field("legacy_cpu_cores", r.legacy_cpu, 3)
                .field("batched_cpu_cores", r.batched_cpu, 3)
                .field("speedup", r.speedup, 3)
                .end_object();
        }
        w.end_array().key("shard_sweep").begin_array();
        for (const ShardResult& sr : sweep) {
            w.begin_object()
                .field("shards", static_cast<std::uint64_t>(sr.shards))
                .field("dps", sr.dps, 1)
                .field("mean_dps", sr.mean_dps, 1)
                .field("cpu_cores", sr.cpu_cores, 3)
                .field("scaling", sr.scaling, 3)
                .end_object();
        }
        w.end_array().end_object();
        if (std::FILE* f = std::fopen("BENCH_transport.json", "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nwrote BENCH_transport.json\n");
        } else {
            std::perror("bench: BENCH_transport.json");
        }
    }

    bench::print_metrics_snapshot(registry);

    // Regression guard: the acceptance target is 2x; gate the exit code at
    // a lower bar so a noisy shared runner cannot flake the CI job, while a
    // real datapath regression still fails it.
    bool ok = true;
    for (const PayloadResult& r : results) {
        if (r.speedup < 1.2) {
            std::printf("FAIL: %zu B speedup %.2fx below the 1.2x regression gate\n",
                        r.payload_bytes, r.speedup);
            ok = false;
        } else if (r.speedup < 2.0) {
            std::printf("warn: %zu B speedup %.2fx below the 2x target\n",
                        r.payload_bytes, r.speedup);
        }
    }

    // Shard-scaling guard: the acceptance target is >= 3x aggregate at 4
    // shards vs. 1 on a >= 4-core machine; gate the exit code at 2x so a
    // noisy shared runner cannot flake CI, skip entirely on small machines
    // (there is nothing to scale across).
    double dps1 = 0, dps4 = 0;
    for (const ShardResult& sr : sweep) {
        if (sr.shards == 1) dps1 = sr.dps;
        if (sr.shards == 4) dps4 = sr.dps;
    }
    if (hw_cores >= 4 && dps1 > 0 && dps4 > 0) {
        const double scaling = dps4 / dps1;
        if (scaling < 2.0) {
            std::printf("FAIL: 4-shard scaling %.2fx below the 2x regression gate\n",
                        scaling);
            ok = false;
        } else if (scaling < 3.0) {
            std::printf("warn: 4-shard scaling %.2fx below the 3x target\n", scaling);
        }
    } else {
        std::printf("note: shard-scaling gate skipped (%zu hardware cores, "
                    "sweep needs 1- and 4-shard points and >= 4 cores)\n",
                    hw_cores);
    }
    return ok ? 0 : 1;
}
