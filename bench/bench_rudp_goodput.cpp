// Reliable-UDP bulk lane: goodput vs. packet loss on the virtual-time
// kernel. Sweeps the data-path loss rate over {0, 10, 30, 50}% and measures
// how fast a fixed bulk payload crosses the link — goodput is computed from
// *virtual* completion time, so the numbers are deterministic per seed and
// independent of the machine running the bench.
//
// Results go to stdout (NARADA_JSON lines + a table) and to BENCH_rudp.json
// in the working directory; the CI bench-smoke job runs `--runs 3`,
// validates the JSON and uploads it next to BENCH_transport.json.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "sim/kernel.hpp"
#include "sim/network.hpp"
#include "transport/rudp_channel.hpp"
#include "wire/codec.hpp"

namespace narada::transport {
namespace {

constexpr std::size_t kPayloadBytes = 2 * 1024 * 1024;
constexpr double kLossPoints[] = {0.0, 0.10, 0.30, 0.50};

Bytes bulk_payload(std::size_t size) {
    Bytes payload(size);
    std::uint32_t x = 0x9E3779B9u;
    for (std::size_t i = 0; i < size; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        payload[i] = static_cast<std::uint8_t>(x);
    }
    return payload;
}

class Router final : public MessageHandler {
public:
    void attach(RudpChannel* channel) { channel_ = channel; }
    void on_datagram(const Endpoint&, const Bytes& data) override {
        if (channel_ == nullptr || data.empty()) return;
        wire::ByteReader reader(data);
        const std::uint8_t type = reader.u8();
        channel_->handle_frame(type, reader);
    }

private:
    RudpChannel* channel_ = nullptr;
};

struct TransferSample {
    bool completed = false;
    double seconds = 0;          ///< virtual completion time
    double goodput_kibps = 0;    ///< payload KiB per virtual second
    double retransmit_ratio = 0; ///< retransmits / segments_sent
};

/// One transfer: fresh kernel + network per run so every sample is an
/// independent draw from the loss process.
TransferSample run_transfer(std::uint64_t seed, double loss) {
    sim::Kernel kernel;
    sim::SimNetwork net(kernel, seed);
    const HostId host_a = net.add_host({"a", "S", "r", 0});
    const HostId host_b = net.add_host({"b", "S", "r", 0});
    net.set_default_link({from_ms(2), from_ms(1), 1});
    const Endpoint end_a{host_a, 9000};
    const Endpoint end_b{host_b, 9000};
    Router router_a, router_b;
    net.bind(end_a, &router_a);
    net.bind(end_b, &router_b);

    RudpOptions options;
    options.abandon_after = 120 * kSecond;  // heavy loss must degrade, not die
    RudpChannel chan_a(kernel, net, net.host_clock(host_a), end_a, end_b, options, "a");
    RudpChannel chan_b(kernel, net, net.host_clock(host_b), end_b, end_a, options, "b");
    router_a.attach(&chan_a);
    router_b.attach(&chan_b);

    std::size_t delivered = 0;
    chan_b.on_deliver([&delivered](Bytes) { ++delivered; });
    if (loss > 0) net.set_directed_loss(host_a, host_b, loss);

    const TimeUs start = kernel.now();
    chan_a.send_bulk(bulk_payload(kPayloadBytes));
    while (delivered == 0 && kernel.now() - start < 600 * kSecond &&
           chan_a.state() != RudpChannel::State::kAbandoned) {
        kernel.run_until(kernel.now() + from_ms(50));
    }

    TransferSample sample;
    sample.completed = delivered == 1;
    if (!sample.completed) return sample;
    sample.seconds = static_cast<double>(kernel.now() - start) / 1e6;
    sample.goodput_kibps = static_cast<double>(kPayloadBytes) / 1024.0 / sample.seconds;
    const auto& tx = chan_a.stats();
    sample.retransmit_ratio =
        tx.segments_sent > 0
            ? static_cast<double>(tx.retransmits) / static_cast<double>(tx.segments_sent)
            : 0.0;
    return sample;
}

struct LossPointResult {
    double loss = 0;
    SampleSet goodput_kibps;
    SampleSet seconds;
    SampleSet retransmit_ratio;
    std::size_t failures = 0;
};

}  // namespace
}  // namespace narada::transport

int main(int argc, char** argv) {
    using namespace narada;
    using namespace narada::transport;

    const int kRuns = bench::parse_runs(argc, argv, 5);

    std::vector<LossPointResult> results;
    for (const double loss : kLossPoints) {
        LossPointResult r;
        r.loss = loss;
        for (int run = 0; run < kRuns; ++run) {
            // Distinct seeds per (loss, run); the 7919 stride matches the
            // harness's run_series convention.
            const auto seed = static_cast<std::uint64_t>(
                1000.0 * loss + 1 + static_cast<double>(run) * 7919.0);
            const TransferSample sample = run_transfer(seed, loss);
            if (!sample.completed) {
                ++r.failures;
                continue;
            }
            r.goodput_kibps.add(sample.goodput_kibps);
            r.seconds.add(sample.seconds);
            r.retransmit_ratio.add(sample.retransmit_ratio);
        }
        results.push_back(std::move(r));
    }

    bench::print_heading("RUDP bulk lane: goodput vs. data-path loss (2 MiB, virtual time)");
    std::printf("%-6s %14s %14s %14s %12s %9s\n", "loss", "mean KiB/s", "min KiB/s",
                "max KiB/s", "mean sec", "rtx/seg");
    for (const LossPointResult& r : results) {
        if (r.goodput_kibps.empty()) {
            std::printf("%4.0f%% %14s (all %zu runs failed to complete)\n", r.loss * 100,
                        "-", r.failures);
            continue;
        }
        std::printf("%4.0f%% %14.1f %14.1f %14.1f %12.3f %9.3f\n", r.loss * 100,
                    r.goodput_kibps.mean(), r.goodput_kibps.min(), r.goodput_kibps.max(),
                    r.seconds.mean(), r.retransmit_ratio.mean());
        bench::print_json_record(
            "rudp_goodput",
            {{"loss", r.loss},
             {"payload_bytes", static_cast<double>(kPayloadBytes)},
             {"goodput_kibps_mean", r.goodput_kibps.mean()},
             {"goodput_kibps_min", r.goodput_kibps.min()},
             {"goodput_kibps_max", r.goodput_kibps.max()},
             {"seconds_mean", r.seconds.mean()},
             {"retransmit_ratio_mean", r.retransmit_ratio.mean()},
             {"failures", static_cast<double>(r.failures)}});
    }

    // BENCH_rudp.json: the machine-readable goodput-vs-loss record.
    {
        obs::JsonWriter w;
        w.begin_object()
            .field("bench", "rudp_goodput")
            .field("runs", kRuns)
            .field("payload_bytes", static_cast<std::uint64_t>(kPayloadBytes))
            .key("results")
            .begin_array();
        for (const LossPointResult& r : results) {
            w.begin_object()
                .field("loss", r.loss, 2)
                .field("completed", static_cast<std::uint64_t>(r.goodput_kibps.size()))
                .field("failures", static_cast<std::uint64_t>(r.failures))
                .field("goodput_kibps_mean",
                       r.goodput_kibps.empty() ? 0.0 : r.goodput_kibps.mean(), 1)
                .field("goodput_kibps_min",
                       r.goodput_kibps.empty() ? 0.0 : r.goodput_kibps.min(), 1)
                .field("goodput_kibps_max",
                       r.goodput_kibps.empty() ? 0.0 : r.goodput_kibps.max(), 1)
                .field("seconds_mean", r.seconds.empty() ? 0.0 : r.seconds.mean(), 3)
                .field("retransmit_ratio_mean",
                       r.retransmit_ratio.empty() ? 0.0 : r.retransmit_ratio.mean(), 3)
                .end_object();
        }
        w.end_array().end_object();
        if (std::FILE* f = std::fopen("BENCH_rudp.json", "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nwrote BENCH_rudp.json\n");
        } else {
            std::perror("bench: BENCH_rudp.json");
        }
    }

    // Regression gates: every run must complete (the lane's whole point is
    // surviving 50% loss), goodput must fall monotonically-ish with loss
    // (clean-link goodput strictly above the 50%-loss goodput), and the
    // clean link must not be retransmitting.
    bool ok = true;
    for (const LossPointResult& r : results) {
        if (r.failures > 0 || r.goodput_kibps.empty()) {
            std::printf("FAIL: %zu incomplete transfers at %.0f%% loss\n", r.failures,
                        r.loss * 100);
            ok = false;
        }
    }
    if (ok && results.front().goodput_kibps.mean() <= results.back().goodput_kibps.mean()) {
        std::printf("FAIL: clean-link goodput not above 50%%-loss goodput\n");
        ok = false;
    }
    if (ok && results.front().retransmit_ratio.mean() > 0.01) {
        std::printf("FAIL: clean link retransmitted (%.3f per segment)\n",
                    results.front().retransmit_ratio.mean());
        ok = false;
    }
    return ok ? 0 : 1;
}
