// Ablation A4 — usage-metric weighting and load balancing (paper §8).
//
// Paper claim 3: "Since broker discovery responses include the usage
// metric, a newly added broker within a cluster would be preferentially
// utilized by the discovery algorithms." We build a two-broker Bloomington
// cluster — one heavily loaded, one fresh — plus remote brokers, and
// compare load-aware weights against latency-only weights across many
// arriving clients.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

struct Outcome {
    int fresh = 0;
    int loaded = 0;
    int remote = 0;
};

Outcome run_arrivals(bool load_aware, int arrivals) {
    Outcome outcome;
    for (int run = 0; run < arrivals; ++run) {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        // Brokers 0 and 1 are the Bloomington cluster; 2-4 remote.
        opts.broker_sites = {sim::Site::kBloomington, sim::Site::kBloomington,
                             sim::Site::kNcsa, sim::Site::kFsu, sim::Site::kCardiff};
        opts.seed = 1300 + static_cast<std::uint64_t>(run) * 7919;
        if (!load_aware) {
            // Latency-only selection: zero the usage-metric weights.
            opts.discovery.weights.free_to_total_memory = 0;
            opts.discovery.weights.total_memory_mb = 0;
            opts.discovery.weights.num_links = 0;
            opts.discovery.weights.cpu_load = 0;
        }
        // Selection must come from the weighted shortlist, not the ping
        // tie-break: with two same-site brokers, restrict the target set.
        opts.discovery.target_set_size = 1;

        scenario::Scenario s(opts);
        // Broker 0 is saturated (the established cluster member), broker 1
        // is the newly added idle machine.
        s.set_broker_load(0, std::make_shared<broker::StaticLoadModel>(
                                 0.95, 512ull << 20, 16ull << 20));
        s.set_broker_load(1, std::make_shared<broker::StaticLoadModel>(
                                 0.03, 512ull << 20, 460ull << 20));
        const auto report = s.run_discovery();
        if (!report.success) continue;
        const auto* chosen = report.selected_candidate();
        const Endpoint chosen_ep = chosen->response.endpoint;
        if (chosen_ep.host == s.broker_host(1)) {
            ++outcome.fresh;
        } else if (chosen_ep.host == s.broker_host(0)) {
            ++outcome.loaded;
        } else {
            ++outcome.remote;
        }
    }
    return outcome;
}

}  // namespace

int main(int argc, char** argv) {
    const int kArrivals = parse_runs(argc, argv, 60);
    std::printf("Load-balancing ablation: Bloomington cluster with one saturated and\n");
    std::printf("one newly added idle broker; %d client arrivals per policy\n\n", kArrivals);
    std::printf("%-26s %10s %10s %10s\n", "selection policy", "fresh", "loaded", "remote");

    const Outcome aware = run_arrivals(/*load_aware=*/true, kArrivals);
    const Outcome blind = run_arrivals(/*load_aware=*/false, kArrivals);
    std::printf("%-26s %10d %10d %10d\n", "load-aware (paper §9)", aware.fresh, aware.loaded,
                aware.remote);
    std::printf("%-26s %10d %10d %10d\n", "latency-only", blind.fresh, blind.loaded,
                blind.remote);

    std::printf(
        "\nShape check: with usage metrics in the score the fresh broker absorbs\n"
        "the arrivals (paper §8 claim 3); latency-only selection splits them\n"
        "blindly across the cluster: %s\n",
        (aware.fresh > blind.fresh && aware.loaded < std::max(1, kArrivals / 4))
            ? "HOLDS"
            : "VIOLATED");
    return 0;
}
