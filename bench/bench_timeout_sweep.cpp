// Ablation A1 — the response-collection timeout trade-off (paper §9).
//
// "A small timeout period would decrease the total time in arriving at a
// decision, however we risk collecting only few broker responses ... A
// large timeout value implies more time is spent waiting" — we sweep the
// window with max_responses disabled and report responses collected vs
// total discovery time.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 40);
    const double windows_ms[] = {25, 50, 100, 200, 400, 800, 1600, 3200, 4500};

    std::printf("Timeout sweep, star topology, five brokers, client in Bloomington\n");
    std::printf("(40 runs per point; max_responses disabled so the window governs)\n\n");
    std::printf("%12s %18s %18s %14s\n", "window (ms)", "mean responses", "mean total (ms)",
                "failures");

    for (const double window : windows_ms) {
        scenario::ScenarioOptions opts = star_options();
        opts.discovery.response_window = from_ms(window);
        opts.discovery.max_responses = 0;  // wait the window out

        double responses_acc = 0;
        SampleSet totals;
        int failures = 0;
        for (int run = 0; run < kRuns; ++run) {
            opts.seed = 100 + static_cast<std::uint64_t>(run) * 7919;
            scenario::Scenario s(opts);
            const auto report = s.run_discovery();
            if (!report.success) {
                ++failures;
                continue;
            }
            responses_acc += static_cast<double>(report.candidates.size());
            totals.add(to_ms(report.total_duration));
        }
        const int successes = kRuns - failures;
        std::printf("%12.0f %18.2f %18.2f %14d\n", window,
                    successes ? responses_acc / successes : 0.0, totals.mean(), failures);
        print_json_record("timeout_sweep",
                          {{"window_ms", window},
                           {"mean_responses", successes ? responses_acc / successes : 0.0},
                           {"mean_total_ms", totals.mean()},
                           {"p99_total_ms", totals.percentile(99)},
                           {"failures", static_cast<double>(failures)}});
    }

    std::printf(
        "\nShape check: a too-small window collects fewer responses; beyond the\n"
        "point where every broker has answered, extra window time only inflates\n"
        "the total (paper: 'unnecessarily increase the time of discovery').\n");
    return 0;
}
