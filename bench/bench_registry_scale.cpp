// Federated registry plane at scale: selection quality and per-discovery
// latency of the sharded BDN registry at 10k / 100k / 1M advertisements.
//
// The full simulator cannot hold a million advertising brokers, so this
// bench isolates the scatter/gather computational kernel: a real ShardRing
// (8 members, 64 vnodes, R = 2) partitions a synthetic advertisement table,
// every query fans out to the owning shards, each shard answers with its
// `shard_reply_limit` lowest-RTT matches, and the coordinator merges and
// selects exactly as the BDN gather path does. Selection quality compares
// the federated pick against a monolithic oracle that scans the whole
// table — both on a full gather and with one shard dropped (the partial
// degradation path), at R = 2 and at an R = 1 control ring to show what
// replication buys.
//
// Results go to stdout (NARADA_JSON lines + a table) and to
// BENCH_registry_scale.json; the CI bench-smoke job runs `--runs 3` and
// validates the JSON schema.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "discovery/registry_shard.hpp"
#include "harness.hpp"

namespace narada::discovery {
namespace {

constexpr std::size_t kScales[] = {10'000, 100'000, 1'000'000};
constexpr std::size_t kRingMembers = 8;
constexpr std::uint32_t kVnodes = 64;
constexpr std::uint32_t kReplication = 2;
constexpr std::uint32_t kShardReplyLimit = 8;  // BdnConfig::shard_reply_limit default
constexpr std::uint32_t kTopics = 512;
constexpr std::uint64_t kBaseSeed = 0x52454753u;  // "REGS"

struct Ad {
    Uuid id;
    std::uint32_t topic = 0;
    double rtt_ms = 0;
};

/// One member's slice of the table: indices of the ads it owns under the
/// ring, exactly what Bdn::local_candidates() iterates.
using ShardTable = std::vector<std::uint32_t>;

struct Federation {
    ShardRing ring;
    std::vector<ShardTable> shards;  ///< one per ring member
    double build_ms = 0;
};

std::vector<Endpoint> make_group() {
    std::vector<Endpoint> group;
    for (std::size_t i = 0; i < kRingMembers; ++i) {
        group.push_back(Endpoint{static_cast<HostId>(100 + i), 7100});
    }
    return group;
}

std::vector<Ad> make_ads(std::size_t count, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Ad> ads(count);
    for (Ad& ad : ads) {
        ad.id = Uuid::random(rng);
        ad.topic = static_cast<std::uint32_t>(rng.next() % kTopics);
        ad.rtt_ms = 1.0 + rng.uniform() * 250.0;  // 1-251 ms, uniform
    }
    return ads;
}

Federation build_federation(const std::vector<Ad>& ads, std::uint32_t replication) {
    Federation fed;
    const auto start = std::chrono::steady_clock::now();
    fed.ring = ShardRing(make_group(), {kVnodes, replication});
    fed.shards.resize(fed.ring.size());
    std::vector<std::size_t> member_index(fed.ring.size());
    for (std::size_t i = 0; i < fed.ring.size(); ++i) member_index[i] = i;
    for (std::uint32_t i = 0; i < ads.size(); ++i) {
        for (const Endpoint& owner : fed.ring.owners(ads[i].id)) {
            const auto it = std::lower_bound(fed.ring.members().begin(),
                                             fed.ring.members().end(), owner);
            fed.shards[static_cast<std::size_t>(it - fed.ring.members().begin())]
                .push_back(i);
        }
    }
    fed.build_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return fed;
}

/// One shard's reply: its `kShardReplyLimit` lowest-RTT ads matching the
/// topic, found by a linear scan of its table (the Bdn gather path does the
/// same over its registry map).
void shard_reply(const std::vector<Ad>& ads, const ShardTable& table,
                 std::uint32_t topic, std::vector<std::uint32_t>& out) {
    out.clear();
    for (const std::uint32_t idx : table) {
        if (ads[idx].topic != topic) continue;
        out.push_back(idx);
    }
    const std::size_t keep = std::min<std::size_t>(out.size(), kShardReplyLimit);
    std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(keep),
                      out.end(), [&ads](std::uint32_t a, std::uint32_t b) {
                          return ads[a].rtt_ms < ads[b].rtt_ms;
                      });
    out.resize(keep);
}

/// Coordinator merge: best RTT across the shard replies, deduplicated by ad
/// index. Returns -1 when no shard produced a candidate.
double gather_best(const std::vector<Ad>& ads, const Federation& fed,
                   std::uint32_t topic, std::size_t dropped_shard,
                   std::vector<std::uint32_t>& scratch) {
    double best = -1;
    for (std::size_t m = 0; m < fed.shards.size(); ++m) {
        if (m == dropped_shard) continue;
        shard_reply(ads, fed.shards[m], topic, scratch);
        for (const std::uint32_t idx : scratch) {
            if (best < 0 || ads[idx].rtt_ms < best) best = ads[idx].rtt_ms;
        }
    }
    return best;
}

/// Monolithic oracle: lowest RTT for the topic over the whole table.
double oracle_best(const std::vector<Ad>& ads, std::uint32_t topic) {
    double best = -1;
    for (const Ad& ad : ads) {
        if (ad.topic != topic) continue;
        if (best < 0 || ad.rtt_ms < best) best = ad.rtt_ms;
    }
    return best;
}

struct ScaleResult {
    std::size_t ad_count = 0;
    std::size_t queries = 0;
    double build_ms = 0;
    SampleSet gather_us;              ///< wall-clock per full gather
    double quality_full = 0;          ///< oracle rtt / federated rtt, full gather
    double quality_degraded_r2 = 0;   ///< one shard dropped, R = 2
    double quality_degraded_r1 = 0;   ///< one shard dropped, R = 1 control
    std::size_t empty_gathers = 0;    ///< queries where no shard had a match
};

ScaleResult run_scale(std::size_t ad_count, std::size_t queries) {
    ScaleResult result;
    result.ad_count = ad_count;
    result.queries = queries;
    const std::vector<Ad> ads = make_ads(ad_count, kBaseSeed + ad_count);
    const Federation fed = build_federation(ads, kReplication);
    const Federation fed_r1 = build_federation(ads, 1);
    result.build_ms = fed.build_ms;

    Rng query_rng(kBaseSeed ^ 0xABCDu);
    std::vector<std::uint32_t> scratch;
    scratch.reserve(ad_count);
    double acc_full = 0, acc_r2 = 0, acc_r1 = 0;
    std::size_t scored = 0;
    for (std::size_t q = 0; q < queries; ++q) {
        const auto topic = static_cast<std::uint32_t>(query_rng.next() % kTopics);
        const std::size_t dropped = q % fed.shards.size();

        const auto start = std::chrono::steady_clock::now();
        const double federated = gather_best(ads, fed, topic, fed.shards.size(), scratch);
        result.gather_us.add(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());

        const double oracle = oracle_best(ads, topic);
        if (oracle < 0) {  // topic unused at this scale; nothing to score
            ++result.empty_gathers;
            continue;
        }
        const double degraded_r2 = gather_best(ads, fed, topic, dropped, scratch);
        const double degraded_r1 = gather_best(ads, fed_r1, topic, dropped, scratch);
        acc_full += federated > 0 ? oracle / federated : 0.0;
        acc_r2 += degraded_r2 > 0 ? oracle / degraded_r2 : 0.0;
        acc_r1 += degraded_r1 > 0 ? oracle / degraded_r1 : 0.0;
        ++scored;
    }
    if (scored > 0) {
        result.quality_full = acc_full / static_cast<double>(scored);
        result.quality_degraded_r2 = acc_r2 / static_cast<double>(scored);
        result.quality_degraded_r1 = acc_r1 / static_cast<double>(scored);
    }
    return result;
}

}  // namespace
}  // namespace narada::discovery

int main(int argc, char** argv) {
    using namespace narada;
    using namespace narada::discovery;

    // `--runs N` scales the query batch (CI smoke passes 3); the default
    // batch is 64 queries per run unit, capped so the 1M-ad sweep stays
    // a few seconds of linear scans.
    const int kRuns = bench::parse_runs(argc, argv, 5);
    const auto queries_for = [kRuns](std::size_t ads) {
        const std::size_t q = static_cast<std::size_t>(kRuns) * 64;
        return ads >= 1'000'000 ? std::min<std::size_t>(q, 128) : q;
    };

    std::vector<ScaleResult> results;
    for (const std::size_t scale : kScales) {
        results.push_back(run_scale(scale, queries_for(scale)));
    }

    bench::print_heading(
        "Federated registry: selection quality & gather latency vs. scale "
        "(8 members, R=2)");
    std::printf("%10s %8s %10s %10s %10s %10s %12s %12s\n", "ads", "queries",
                "build ms", "q(full)", "q(-1,R2)", "q(-1,R1)", "gather p50us",
                "gather p99us");
    for (const ScaleResult& r : results) {
        std::printf("%10zu %8zu %10.1f %10.4f %10.4f %10.4f %12.1f %12.1f\n",
                    r.ad_count, r.queries, r.build_ms, r.quality_full,
                    r.quality_degraded_r2, r.quality_degraded_r1,
                    r.gather_us.percentile(50), r.gather_us.percentile(99));
        bench::print_json_record(
            "registry_scale",
            {{"ads", static_cast<double>(r.ad_count)},
             {"queries", static_cast<double>(r.queries)},
             {"build_ms", r.build_ms},
             {"selection_quality", r.quality_full},
             {"selection_quality_one_shard_down", r.quality_degraded_r2},
             {"selection_quality_one_shard_down_r1", r.quality_degraded_r1},
             {"gather_p50_us", r.gather_us.percentile(50)},
             {"gather_p99_us", r.gather_us.percentile(99)},
             {"gather_mean_us", r.gather_us.mean()}});
    }

    {
        obs::JsonWriter w;
        w.begin_object()
            .field("bench", "registry_scale")
            .field("runs", kRuns)
            .field("ring_members", static_cast<std::uint64_t>(kRingMembers))
            .field("vnodes", static_cast<std::uint64_t>(kVnodes))
            .field("replication", static_cast<std::uint64_t>(kReplication))
            .field("shard_reply_limit", static_cast<std::uint64_t>(kShardReplyLimit))
            .key("results")
            .begin_array();
        for (const ScaleResult& r : results) {
            w.begin_object()
                .field("ads", static_cast<std::uint64_t>(r.ad_count))
                .field("queries", static_cast<std::uint64_t>(r.queries))
                .field("build_ms", r.build_ms, 2)
                .field("selection_quality", r.quality_full, 5)
                .field("selection_quality_one_shard_down", r.quality_degraded_r2, 5)
                .field("selection_quality_one_shard_down_r1", r.quality_degraded_r1, 5)
                .field("gather_p50_us", r.gather_us.percentile(50), 2)
                .field("gather_p99_us", r.gather_us.percentile(99), 2)
                .field("gather_mean_us", r.gather_us.mean(), 2)
                .field("empty_gathers", static_cast<std::uint64_t>(r.empty_gathers))
                .end_object();
        }
        w.end_array().end_object();
        if (std::FILE* f = std::fopen("BENCH_registry_scale.json", "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nwrote BENCH_registry_scale.json\n");
        } else {
            std::perror("bench: BENCH_registry_scale.json");
        }
    }

    // Regression gates. A full gather must match the monolithic oracle to
    // within the ISSUE's floor (each shard's top-k necessarily contains the
    // global best held by that shard, so this should be ~1.0); dropping one
    // shard at R = 2 must not cost quality (the surviving replica still
    // answers); and the R = 1 control must not beat R = 2, or replication
    // is buying nothing.
    bool ok = true;
    for (const ScaleResult& r : results) {
        if (r.quality_full < 0.9) {
            std::printf("FAIL: selection quality %.4f < 0.9 at %zu ads\n",
                        r.quality_full, r.ad_count);
            ok = false;
        }
        if (r.quality_degraded_r2 < 0.9) {
            std::printf("FAIL: one-shard-down quality %.4f < 0.9 at %zu ads (R=2)\n",
                        r.quality_degraded_r2, r.ad_count);
            ok = false;
        }
        if (r.quality_degraded_r2 + 1e-9 < r.quality_degraded_r1) {
            std::printf("FAIL: R=2 degraded quality below R=1 control at %zu ads\n",
                        r.ad_count);
            ok = false;
        }
        if (r.gather_us.empty() || r.gather_us.percentile(99) <= 0) {
            std::printf("FAIL: no gather latency samples at %zu ads\n", r.ad_count);
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
