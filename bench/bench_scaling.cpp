// Ablation A6 — discovery time vs broker-network size (paper §9).
//
// "As the number of brokers increases we face the problem of scalability
// as waiting for more brokers would badly affect the total time in making
// a decision." We grow the network per topology and measure the wait for
// the full response set, showing the unconnected BDN fan-out degrading
// linearly while the star stays nearly flat and the chain grows with
// depth.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

std::vector<sim::Site> sites_for(std::size_t n) {
    const sim::Site pool[] = {sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn,
                              sim::Site::kFsu, sim::Site::kCardiff};
    std::vector<sim::Site> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(pool[i % std::size(pool)]);
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 20);
    std::printf("Scaling: mean wait-for-all-responses (ms) vs broker count\n");
    std::printf("(20 runs per point, max_responses = N so the client waits for all)\n\n");
    std::printf("%10s %14s %14s %14s\n", "brokers", "unconnected", "star", "linear");

    for (const std::size_t n : {3u, 5u, 10u, 20u, 40u}) {
        double means[3] = {0, 0, 0};
        int column = 0;
        for (const auto topo : {scenario::Topology::kUnconnected, scenario::Topology::kStar,
                                scenario::Topology::kLinear}) {
            scenario::ScenarioOptions opts;
            opts.topology = topo;
            opts.broker_sites = sites_for(n);
            opts.discovery.max_responses = static_cast<std::uint32_t>(n);
            opts.discovery.response_window = from_ms(8000);
            // Isolate dissemination latency: with loss on, waiting for ALL
            // N responses is dominated by P(any response lost) ~ 1-(1-p)^N
            // full-window tails rather than by the topology.
            opts.per_hop_loss = 0.0;
            // A 40-deep chain needs more than the default TTL of 32.
            opts.broker.propagation_ttl = 2 * static_cast<std::uint32_t>(n) + 8;
            if (topo == scenario::Topology::kUnconnected) {
                opts.bdn.injection = config::InjectionStrategy::kAll;
            }
            if (topo == scenario::Topology::kLinear) {
                opts.register_with_bdn = 1;
            }
            SampleSet collect;
            for (int run = 0; run < kRuns; ++run) {
                opts.seed = 7000 + static_cast<std::uint64_t>(run) * 7919;
                scenario::Scenario s(opts);
                const auto report = s.run_discovery();
                if (report.success) collect.add(to_ms(report.collection_duration));
            }
            means[column++] = collect.mean();
        }
        std::printf("%10zu %14.2f %14.2f %14.2f\n", n, means[0], means[1], means[2]);
    }

    std::printf(
        "\nShape check: unconnected grows ~linearly with N (sequential BDN\n"
        "sends); linear grows with chain depth; star stays nearly flat —\n"
        "matching the paper's scalability discussion in §9.\n");
    return 0;
}
