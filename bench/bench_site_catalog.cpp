// Table 1 — the simulated analogue of the paper's machine inventory.
//
// Prints the site catalog (machines, locations, realms) and the calibrated
// one-way latency matrix the WAN simulation uses.
#include <cstdio>

#include "sim/site_catalog.hpp"

int main() {
    std::printf("%s\n", narada::sim::render_site_catalog().c_str());
    std::printf(
        "Substitution note: the paper ran on five physical machines (Table 1).\n"
        "This catalog drives the deterministic WAN simulation; latencies are\n"
        "calibrated to 2005-era RTTs between the paper's sites.\n");
    return 0;
}
