// Figures 13 and 14 — security costs.
//
// Figure 13: "Time required in validating a X.509 Certificate" — we build
// a CA -> client chain and time verify_chain over 120 iterations.
// Figure 14: "Time required to digitally sign and encrypt and later
// extract the BrokerDiscoveryRequest" — we encode a realistic
// DiscoveryRequest, seal it (RSA-sign + AES-encrypt + RSA key wrap) and
// open it (decrypt + verify), timing each phase.
//
// The paper measured JDK 1.4 PKI on a 2.0 GHz Pentium M with 512 MB RAM;
// absolute numbers differ here (from-scratch BigInt RSA), but the shape —
// validation and signing dominated by the RSA private/public operations,
// costs "acceptable in most systems" — carries over.
// The secured-vs-plain curve below goes further than the paper: with the
// session-key cache (discovery/security.hpp) the RSA cost is paid once per
// peer, so warm secured throughput must stay within 2x of plain — the
// regression gate BENCH_security.json records and CI enforces.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "broker/dedup_cache.hpp"
#include "common/clock.hpp"
#include "common/stats.hpp"
#include "config/node_config.hpp"
#include "discovery/security.hpp"
#include "harness.hpp"
#include "crypto/aes.hpp"
#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"
#include "discovery/messages.hpp"
#include "transport/posix_transport.hpp"
#include "wire/msg_types.hpp"

using namespace narada;
using namespace narada::crypto;

namespace {

double elapsed_ms(const std::chrono::steady_clock::time_point& start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

Bytes sample_request_bytes(Rng& rng) {
    discovery::DiscoveryRequest request;
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "client.gf1.ucs.indiana.edu";
    request.reply_to = {2, 7200};
    request.protocols = {"tcp", "udp", "multicast"};
    request.credential = "x509:client.gf1";
    request.realm = "iu-lab";
    wire::ByteWriter writer;
    request.encode(writer);
    return writer.take();
}

}  // namespace

int main(int argc, char** argv) {
    constexpr std::size_t kRsaBits = 1024;
    const int kRuns = bench::parse_runs(argc, argv, 120);
    const int kKeep = bench::default_keep(kRuns);

    Rng rng(0x5EC5EC);
    std::printf("Generating %zu-bit RSA keys (CA, client, broker)...\n", kRsaBits);
    const RsaKeyPair ca_keys = rsa_generate(rng, kRsaBits);
    const RsaKeyPair client_keys = rsa_generate(rng, kRsaBits);
    const RsaKeyPair broker_keys = rsa_generate(rng, kRsaBits);

    const Certificate root = make_self_signed("narada-root-ca", ca_keys, 0, 1ll << 60, 1);
    const Certificate client_cert =
        issue_certificate("client.gf1.ucs.indiana.edu", client_keys.public_key,
                          "narada-root-ca", ca_keys.private_key, 0, 1ll << 60, 2);
    const std::vector<Certificate> chain = {client_cert, root};
    const std::vector<Certificate> roots = {root};

    // --- Figure 13: X.509 validation ---------------------------------------
    SampleSet validate_ms;
    for (int i = 0; i < kRuns; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const CertStatus status = verify_chain(chain, roots, /*now=*/1000);
        if (status != CertStatus::kOk) {
            std::printf("UNEXPECTED: chain validation failed: %s\n", to_string(status));
            return 1;
        }
        validate_ms.add(elapsed_ms(start));
    }
    std::printf("\n== Figure 13: Time required in validating a X.509 Certificate ==\n");
    std::fputs(validate_ms.trim_outliers(kKeep).metric_table().c_str(), stdout);

    // --- Figure 14: sign + encrypt, then decrypt + extract -------------------
    const Bytes request_bytes = sample_request_bytes(rng);
    std::printf("\nBrokerDiscoveryRequest payload: %zu bytes\n", request_bytes.size());

    SampleSet seal_ms, open_ms, total_ms;
    for (int i = 0; i < kRuns; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto envelope = seal(request_bytes, "client.gf1", client_keys.private_key,
                                   broker_keys.public_key, "broker-7", rng);
        if (!envelope) {
            std::printf("UNEXPECTED: seal failed\n");
            return 1;
        }
        const double t_seal = elapsed_ms(t0);

        const auto t1 = std::chrono::steady_clock::now();
        const auto opened = open(*envelope, broker_keys.private_key, client_keys.public_key);
        if (!opened || !opened->signature_valid || opened->payload != request_bytes) {
            std::printf("UNEXPECTED: open failed\n");
            return 1;
        }
        const double t_open = elapsed_ms(t1);

        seal_ms.add(t_seal);
        open_ms.add(t_open);
        total_ms.add(t_seal + t_open);
    }
    std::printf(
        "\n== Figure 14: Time required to digitally sign and encrypt and later extract the "
        "BrokerDiscoveryRequest ==\n");
    std::fputs(total_ms.trim_outliers(kKeep).metric_table().c_str(), stdout);
    std::printf("\nPhase split (mean): sign+encrypt %.3f ms, decrypt+verify %.3f ms\n",
                seal_ms.mean(), open_ms.mean());
    std::printf(
        "Shape check: costs are per-message milliseconds -> acceptable for systems that "
        "need the feature (paper conclusion): %s\n",
        total_ms.mean() < 1000.0 ? "HOLDS" : "VIOLATED");

    // --- Secured-vs-plain discovery throughput curve -------------------------
    //
    // What the paper could not do: amortize the RSA cost. Each point drives
    // real UDP datagrams over loopback (the deployment receive path: socket,
    // recvmmsg drain, decode, duplicate cache) with the security modes
    // wrapped around it:
    //   plain      no crypto (baseline, relative 1.0)
    //   *_cold     every datagram re-handshakes (the paper's per-message
    //              RSA cost, Figure 14 as a throughput number)
    //   *_warm     one handshake, then the session-key cache fast path
    const Bytes inner_frame = [&] {
        wire::ByteWriter w;
        w.u8(wire::kMsgDiscoveryRequest);
        w.raw(request_bytes.data(), request_bytes.size());
        return w.take();
    }();

    struct CurvePoint {
        const char* mode;
        double dps = 0;
        double relative = 0;
        std::uint64_t iters = 0;
        std::uint64_t handshakes = 0;
    };
    std::vector<CurvePoint> curve;

    // The BDN-shaped receive sink: opens envelopes when a context is
    // attached, then decodes the request and probes the duplicate cache.
    // Everything here runs on the transport's reactor thread.
    class CurveSink final : public transport::MessageHandler {
    public:
        void attach(discovery::SecurityContext* security) { security_ = security; }
        void on_datagram(const Endpoint&, const Bytes& data) override {
            wire::ByteReader r(data);
            std::span<const std::uint8_t> frame{data.data(), data.size()};
            const std::uint8_t type = r.u8();
            if (type == wire::kMsgSecureEnvelope) {
                const auto opened = security_->open_datagram(r);
                if (!opened.ok()) {
                    open_failures_.fetch_add(1, std::memory_order_relaxed);
                    received_.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                frame = opened.payload;
                wire::ByteReader inner(frame);
                if (inner.u8() != wire::kMsgDiscoveryRequest) std::abort();
                consume(inner);
            } else if (type == wire::kMsgDiscoveryRequest) {
                consume(r);
            }
            received_.fetch_add(1, std::memory_order_relaxed);
        }
        void consume(wire::ByteReader& r) {
            const auto req = discovery::DiscoveryRequest::decode(r);
            dedup_.insert(req.request_id);
            sink_ += req.realm.size() + req.requester_hostname.size();
        }
        [[nodiscard]] std::uint64_t received() const {
            return received_.load(std::memory_order_relaxed);
        }
        [[nodiscard]] std::uint64_t open_failures() const {
            return open_failures_.load(std::memory_order_relaxed);
        }
        bool wait_for(std::uint64_t target, int timeout_ms = 10000) const {
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(timeout_ms);
            while (received() < target) {
                if (std::chrono::steady_clock::now() > deadline) return false;
            }
            return true;
        }

    private:
        discovery::SecurityContext* security_ = nullptr;
        broker::DedupCache dedup_{1024};
        std::uint64_t sink_ = 0;  // defeats dead-code elimination
        std::atomic<std::uint64_t> received_{0};
        std::atomic<std::uint64_t> open_failures_{0};
    };

    transport::PosixTransport curve_transport;
    const std::uint16_t base_port = transport::PosixTransport::find_free_port(48100);
    const Endpoint client_ep{1, base_port};
    const Endpoint bdn_ep{2, static_cast<std::uint16_t>(base_port + 1)};
    CurveSink curve_sink;
    CurveSink idle;
    curve_transport.bind(client_ep, &idle);
    curve_transport.bind(bdn_ep, &curve_sink);

    const auto warm_iters = static_cast<std::uint64_t>(kRuns) * 100;
    const auto cold_iters = static_cast<std::uint64_t>(std::min(kRuns, 24));
    constexpr std::uint64_t kBurst = 16;  // stays inside loopback socket buffers

    // Pump `iters` datagrams (each built by `fill`) through the socket pair
    // in paced bursts; returns datagrams/second, or a negative value when
    // delivery stalled (loopback drop — the measurement is void, retry).
    const auto pump = [&](std::uint64_t iters, std::uint64_t burst, auto&& fill) -> double {
        const std::uint64_t start_count = curve_sink.received();
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t sent = 0;
        while (sent < iters) {
            const std::uint64_t n = std::min(burst, iters - sent);
            for (std::uint64_t i = 0; i < n; ++i) {
                wire::ByteWriter w(curve_transport.acquire_buffer());
                fill(w);
                curve_transport.send_datagram(client_ep, bdn_ep, w.take());
            }
            sent += n;
            if (!curve_sink.wait_for(start_count + sent)) return -1.0;
        }
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return static_cast<double>(iters) / seconds;
    };
    // One warm-up pass (pool growth, socket buffers) plus up to three
    // attempts: a loopback drop voids the attempt rather than the bench.
    const auto measure = [&](const char* name, std::uint64_t iters, std::uint64_t burst,
                             std::uint64_t handshakes, auto&& fill) {
        double dps = -1.0;
        (void)pump(std::min<std::uint64_t>(iters, 4 * kBurst), burst, fill);
        for (int attempt = 0; attempt < 3 && dps < 0; ++attempt) {
            dps = pump(iters, burst, fill);
        }
        if (dps < 0) {
            std::printf("UNEXPECTED: %s stalled (loopback loss)\n", name);
            std::exit(1);
        }
        curve.push_back({name, dps, 0, iters, handshakes});
    };

    // Plain baseline.
    measure("plain", warm_iters, kBurst, 0,
            [&](wire::ByteWriter& w) { w.raw(inner_frame.data(), inner_frame.size()); });

    ManualClock curve_clock(0);
    Rng curve_rng(0xC0FFEE);
    const auto run_mode = [&](config::SecurityConfig::Mode mode, const char* cold_name,
                              const char* warm_name) {
        config::SecurityConfig cfg;
        cfg.mode = mode;
        cfg.session_cache_size = 64;
        cfg.rekey_interval = 0;
        discovery::SecurityContext sender("client.gf1.ucs.indiana.edu", client_keys,
                                          {client_cert, root}, {root}, cfg, curve_clock,
                                          curve_rng);
        discovery::SecurityContext receiver("bdn-1", broker_keys, {}, {root}, cfg,
                                            curve_clock, curve_rng);
        sender.add_peer_key("bdn-1", broker_keys.public_key);
        curve_sink.attach(&receiver);

        const std::span<const std::uint8_t> payload{inner_frame.data(), inner_frame.size()};
        const auto seal_into = [&](wire::ByteWriter& w, bool force) {
            if (!sender.seal_datagram(payload, "bdn-1", w, force)) std::abort();
        };
        // Cold: the paper's shape — full RSA handshake per datagram (burst
        // of 1: each handshake costs tens of milliseconds anyway).
        measure(cold_name, cold_iters, 1, cold_iters,
                [&](wire::ByteWriter& w) { seal_into(w, true); });
        // Warm: the session established above carries everything.
        measure(warm_name, warm_iters, kBurst, 0,
                [&](wire::ByteWriter& w) { seal_into(w, false); });
        curve_sink.attach(nullptr);
    };

    run_mode(config::SecurityConfig::Mode::kSign, "sign_cold", "sign_warm");
    run_mode(config::SecurityConfig::Mode::kSeal, "seal_cold", "seal_warm");
    if (curve_sink.open_failures() != 0) {
        std::printf("UNEXPECTED: %llu envelopes failed to open\n",
                    static_cast<unsigned long long>(curve_sink.open_failures()));
        return 1;
    }

    const double plain_dps = curve[0].dps;
    for (CurvePoint& p : curve) p.relative = p.dps / plain_dps;

    const bool aesni = Aes128::accelerated();
    std::printf("\n== Secured-vs-plain discovery throughput (receive-path work, %zu-byte "
                "request, AES-NI %s) ==\n",
                inner_frame.size(), aesni ? "on" : "off");
    std::printf("%-10s %14s %10s\n", "mode", "datagrams/s", "relative");
    for (const CurvePoint& p : curve) {
        std::printf("%-10s %14.0f %9.3fx\n", p.mode, p.dps, p.relative);
        bench::print_json_record("security_curve",
                                 {{"dps", p.dps},
                                  {"relative", p.relative},
                                  {"iters", static_cast<double>(p.iters)}});
    }

    // BENCH_security.json: the machine-readable curve the CI smoke job
    // schema-validates, plus the warm-cache floor.
    double warm_seal_relative = 0;
    for (const CurvePoint& p : curve) {
        if (std::strcmp(p.mode, "seal_warm") == 0) warm_seal_relative = p.relative;
    }
    {
        obs::JsonWriter w;
        w.begin_object()
            .field("bench", "security_curve")
            .field("rsa_bits", static_cast<std::uint64_t>(kRsaBits))
            .field("payload_bytes", static_cast<std::uint64_t>(inner_frame.size()))
            .field("aesni", aesni)
            .field("warm_seal_relative", warm_seal_relative, 4)
            .key("results")
            .begin_array();
        for (const CurvePoint& p : curve) {
            w.begin_object()
                .field("mode", p.mode)
                .field("dps", p.dps, 1)
                .field("relative", p.relative, 4)
                .field("handshakes", p.handshakes)
                .end_object();
        }
        w.end_array().end_object();
        if (std::FILE* f = std::fopen("BENCH_security.json", "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nwrote BENCH_security.json\n");
        } else {
            std::perror("bench: BENCH_security.json");
        }
    }

    // Regression gate (ISSUE acceptance): with the session cache warm and
    // hardware AES, secured discovery sustains at least half of plain-mode
    // throughput. Software AES boxes report but do not gate.
    std::printf("Warm-cache floor (seal_warm >= 0.5x plain%s): %s (%.3fx)\n",
                aesni ? "" : ", advisory without AES-NI",
                warm_seal_relative >= 0.5 || !aesni ? "HOLDS" : "VIOLATED",
                warm_seal_relative);
    if (aesni && warm_seal_relative < 0.5) return 1;
    return 0;
}
