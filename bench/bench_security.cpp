// Figures 13 and 14 — security costs.
//
// Figure 13: "Time required in validating a X.509 Certificate" — we build
// a CA -> client chain and time verify_chain over 120 iterations.
// Figure 14: "Time required to digitally sign and encrypt and later
// extract the BrokerDiscoveryRequest" — we encode a realistic
// DiscoveryRequest, seal it (RSA-sign + AES-encrypt + RSA key wrap) and
// open it (decrypt + verify), timing each phase.
//
// The paper measured JDK 1.4 PKI on a 2.0 GHz Pentium M with 512 MB RAM;
// absolute numbers differ here (from-scratch BigInt RSA), but the shape —
// validation and signing dominated by the RSA private/public operations,
// costs "acceptable in most systems" — carries over.
#include <chrono>
#include <cstdio>

#include "common/stats.hpp"
#include "harness.hpp"
#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"
#include "discovery/messages.hpp"

using namespace narada;
using namespace narada::crypto;

namespace {

double elapsed_ms(const std::chrono::steady_clock::time_point& start) {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
        .count();
}

Bytes sample_request_bytes(Rng& rng) {
    discovery::DiscoveryRequest request;
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "client.gf1.ucs.indiana.edu";
    request.reply_to = {2, 7200};
    request.protocols = {"tcp", "udp", "multicast"};
    request.credential = "x509:client.gf1";
    request.realm = "iu-lab";
    wire::ByteWriter writer;
    request.encode(writer);
    return writer.take();
}

}  // namespace

int main(int argc, char** argv) {
    constexpr std::size_t kRsaBits = 1024;
    const int kRuns = bench::parse_runs(argc, argv, 120);
    const int kKeep = bench::default_keep(kRuns);

    Rng rng(0x5EC5EC);
    std::printf("Generating %zu-bit RSA keys (CA, client, broker)...\n", kRsaBits);
    const RsaKeyPair ca_keys = rsa_generate(rng, kRsaBits);
    const RsaKeyPair client_keys = rsa_generate(rng, kRsaBits);
    const RsaKeyPair broker_keys = rsa_generate(rng, kRsaBits);

    const Certificate root = make_self_signed("narada-root-ca", ca_keys, 0, 1ll << 60, 1);
    const Certificate client_cert =
        issue_certificate("client.gf1.ucs.indiana.edu", client_keys.public_key,
                          "narada-root-ca", ca_keys.private_key, 0, 1ll << 60, 2);
    const std::vector<Certificate> chain = {client_cert, root};
    const std::vector<Certificate> roots = {root};

    // --- Figure 13: X.509 validation ---------------------------------------
    SampleSet validate_ms;
    for (int i = 0; i < kRuns; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const CertStatus status = verify_chain(chain, roots, /*now=*/1000);
        if (status != CertStatus::kOk) {
            std::printf("UNEXPECTED: chain validation failed: %s\n", to_string(status));
            return 1;
        }
        validate_ms.add(elapsed_ms(start));
    }
    std::printf("\n== Figure 13: Time required in validating a X.509 Certificate ==\n");
    std::fputs(validate_ms.trim_outliers(kKeep).metric_table().c_str(), stdout);

    // --- Figure 14: sign + encrypt, then decrypt + extract -------------------
    const Bytes request_bytes = sample_request_bytes(rng);
    std::printf("\nBrokerDiscoveryRequest payload: %zu bytes\n", request_bytes.size());

    SampleSet seal_ms, open_ms, total_ms;
    for (int i = 0; i < kRuns; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto envelope = seal(request_bytes, "client.gf1", client_keys.private_key,
                                   broker_keys.public_key, "broker-7", rng);
        if (!envelope) {
            std::printf("UNEXPECTED: seal failed\n");
            return 1;
        }
        const double t_seal = elapsed_ms(t0);

        const auto t1 = std::chrono::steady_clock::now();
        const auto opened = open(*envelope, broker_keys.private_key, client_keys.public_key);
        if (!opened || !opened->signature_valid || opened->payload != request_bytes) {
            std::printf("UNEXPECTED: open failed\n");
            return 1;
        }
        const double t_open = elapsed_ms(t1);

        seal_ms.add(t_seal);
        open_ms.add(t_open);
        total_ms.add(t_seal + t_open);
    }
    std::printf(
        "\n== Figure 14: Time required to digitally sign and encrypt and later extract the "
        "BrokerDiscoveryRequest ==\n");
    std::fputs(total_ms.trim_outliers(kKeep).metric_table().c_str(), stdout);
    std::printf("\nPhase split (mean): sign+encrypt %.3f ms, decrypt+verify %.3f ms\n",
                seal_ms.mean(), open_ms.mean());
    std::printf(
        "Shape check: costs are per-message milliseconds -> acceptable for systems that "
        "need the feature (paper conclusion): %s\n",
        total_ms.mean() < 1000.0 ? "HOLDS" : "VIOLATED");
    return 0;
}
