// Overload resilience — request storms against a bounded-ingest BDN.
//
// Sweeps storm intensity against a star overlay whose primary BDN runs
// bounded ingest with per-source quotas, while the client runs circuit
// breakers with a healthy secondary BDN to fail over to. Reports the BDN
// shed rate, time-to-first-response and end-to-end selection latency per
// intensity, then measures what the adaptive (quiesce-based) response
// window saves over a fixed window. All figures are emitted as
// NARADA_JSON records for the CI artifact pipeline.
#include <memory>

#include "discovery/bdn.hpp"
#include "harness.hpp"
#include "scenario/chaos.hpp"
#include "sim/fault_plan.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

scenario::ScenarioOptions storm_options(std::uint64_t seed) {
    scenario::ScenarioOptions opts = star_options();
    opts.seed = seed;
    opts.broker_sites.assign(8, sim::Site::kIndianapolis);
    opts.bdn.ingest_queue_limit = 16;
    opts.bdn.request_service_cost = from_ms(2);
    opts.bdn.per_source_rate = 4.0;
    opts.bdn.per_source_burst = 8.0;
    opts.discovery.response_window = from_ms(1200);
    opts.discovery.retransmit_interval = from_ms(400);
    opts.discovery.max_responses = 5;
    opts.discovery.breaker_failure_threshold = 1;
    opts.discovery.breaker_open_initial = 4 * kSecond;
    return opts;
}

struct StormPoint {
    double shed_rate = 0;  ///< shed / received at the primary BDN
    SampleSet first_response;
    SampleSet selection;
    int failures = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t forced_probes = 0;
    std::uint64_t queue_peak = 0;
};

StormPoint measure_storm(std::uint32_t storm_clients, int runs) {
    StormPoint point;
    std::uint64_t shed = 0;
    std::uint64_t received = 0;
    for (int run = 0; run < runs; ++run) {
        scenario::Scenario s(storm_options(300 + static_cast<std::uint64_t>(run) * 7919));
        s.warm_up();
        auto& kernel = s.kernel();
        auto& net = s.network();

        const HostId backup = net.add_host({"bdn2.backup.net", "BACKUP", "", 0});
        discovery::Bdn secondary(kernel, net, Endpoint{backup, 7100},
                                 net.host_clock(backup), config::BdnConfig{},
                                 "secondary-bdn");
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            secondary.register_broker(s.plugin_at(i).advertisement());
        }
        secondary.start();
        s.client().mutable_config().bdns.push_back(secondary.endpoint());
        kernel.run_until(kernel.now() + 2 * kSecond);

        sim::ChaosInjector chaos(kernel, net);
        chaos.run(scenario::request_storm_plan(s, 0, storm_clients, from_ms(20),
                                               30 * kSecond));
        kernel.run_until(kernel.now() + 1 * kSecond);  // the storm ramps up

        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto report = s.run_discovery();
            if (!report.success) {
                ++point.failures;
            } else {
                if (report.time_to_first_response >= 0) {
                    point.first_response.add(to_ms(report.time_to_first_response));
                }
                point.selection.add(to_ms(report.total_duration));
            }
            kernel.run_until(kernel.now() + 2 * kSecond);
        }
        shed += s.bdn().stats().requests_shed();
        received += s.bdn().stats().requests_received;
        point.breaker_opens += s.client().bdn_breaker(0).stats().opens;
        point.forced_probes += s.client().stats().forced_probes;
        point.queue_peak = std::max(point.queue_peak, s.bdn().stats().queue_depth_peak);
    }
    point.shed_rate = received ? static_cast<double>(shed) / static_cast<double>(received) : 0.0;
    return point;
}

void adaptive_window_comparison(int runs) {
    print_heading("Adaptive response window (quiet overlay, 4.5 s fixed window)");
    std::printf("%10s %20s %16s\n", "mode", "mean collection (ms)", "adaptive closes");
    for (const bool adaptive : {false, true}) {
        SampleSet collection;
        std::uint64_t closes = 0;
        for (int run = 0; run < runs; ++run) {
            scenario::ScenarioOptions opts = star_options();
            opts.seed = 900 + static_cast<std::uint64_t>(run) * 104729;
            opts.discovery.max_responses = 0;
            opts.discovery.response_window = from_ms(4500);  // the paper's 4-5 s
            opts.discovery.adaptive_window = adaptive;
            opts.discovery.quiesce_ticks = 3;
            opts.discovery.quiesce_tick = from_ms(100);
            opts.discovery.response_window_min = from_ms(200);
            scenario::Scenario s(opts);
            const auto report = s.run_discovery();
            if (!report.success) continue;
            collection.add(to_ms(report.collection_duration));
            if (report.adaptive_close) ++closes;
        }
        std::printf("%10s %20.1f %16llu\n", adaptive ? "adaptive" : "fixed",
                    collection.mean(), static_cast<unsigned long long>(closes));
        print_json_record("adaptive_window",
                          {{"adaptive", adaptive ? 1.0 : 0.0},
                           {"mean_collection_ms", collection.mean()},
                           {"p99_collection_ms", collection.percentile(99)},
                           {"adaptive_closes", static_cast<double>(closes)}});
    }
}

}  // namespace

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 10);
    std::printf("Overload sweep: N storm clients flood the primary BDN every 20 ms;\n");
    std::printf("the client fails over to a healthy secondary through circuit breakers.\n");
    std::printf("(8-broker star, 10 seeds x 3 discoveries per point)\n\n");
    std::printf("%8s %10s %12s %12s %14s %10s %8s\n", "clients", "shed rate", "ttfr p50",
                "ttfr p99", "selection p99", "failures", "opens");

    for (const std::uint32_t clients : {0u, 4u, 16u, 32u}) {
        const StormPoint p = measure_storm(clients, kRuns);
        std::printf("%8u %9.1f%% %10.1fms %10.1fms %12.1fms %10d %8llu\n", clients,
                    p.shed_rate * 100.0, p.first_response.percentile(50),
                    p.first_response.percentile(99), p.selection.percentile(99),
                    p.failures, static_cast<unsigned long long>(p.breaker_opens));
        print_json_record("overload_storm",
                          {{"storm_clients", static_cast<double>(clients)},
                           {"shed_rate", p.shed_rate},
                           {"ttfr_p50_ms", p.first_response.percentile(50)},
                           {"ttfr_p99_ms", p.first_response.percentile(99)},
                           {"selection_p50_ms", p.selection.percentile(50)},
                           {"selection_p99_ms", p.selection.percentile(99)},
                           {"failures", static_cast<double>(p.failures)},
                           {"breaker_opens", static_cast<double>(p.breaker_opens)},
                           {"forced_probes", static_cast<double>(p.forced_probes)},
                           {"queue_depth_peak", static_cast<double>(p.queue_peak)}});
    }

    std::printf("\n");
    adaptive_window_comparison(2 * kRuns);

    std::printf(
        "\nShape check: shed rate climbs with storm intensity while selection p99\n"
        "stays bounded (the breaker diverts to the secondary BDN instead of\n"
        "waiting out retransmits), and the adaptive window cuts collection time\n"
        "well below the fixed 4.5 s bound once responses quiesce.\n");

    // One instrumented run: the metric snapshot and the aggregate debug
    // snapshot land on stdout for the CI artifact pipeline.
    {
        scenario::ScenarioOptions opts = storm_options(424242);
        opts.obs.enabled = true;
        opts.obs.trace_sample_rate = 1.0;
        scenario::Scenario s(opts);
        (void)s.run_discovery();
        print_metrics_snapshot(s.metrics());
        std::printf("NARADA_SNAPSHOT %s\n", s.debug_snapshot().c_str());
    }
    return 0;
}
