// Figure 12 — broker discovery times using ONLY multicast.
//
// Paper setup: the request is multicast instead of routed through a BDN;
// "since multicast was disabled for network traffic outside the lab, the
// multicast requests could only reach those brokers which were in the
// lab". We place two of the five brokers in the client's lab realm
// (Bloomington); multicast is realm-scoped in the simulation, so only
// those two respond.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 120);
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    // Two lab-realm brokers plus three remote ones.
    opts.broker_sites = {sim::Site::kBloomington, sim::Site::kBloomington,
                         sim::Site::kNcsa, sim::Site::kFsu, sim::Site::kCardiff};
    opts.client_site = sim::Site::kBloomington;
    // Multicast-only: no BDNs configured at all (§7).
    opts.discovery.use_multicast = true;
    opts.discovery.bdns.clear();
    opts.discovery.max_responses = 2;  // only the lab brokers can answer
    opts.discovery.response_window = from_ms(1000);

    std::printf("Broker discovery using ONLY multicast (no BDN), client in Bloomington\n");
    std::printf("(five brokers, two inside the lab realm; 120 runs, 100 kept)\n");

    // Scenario fills in the BDN endpoint only when it is needed; here the
    // client's BDN list stays empty because use_multicast is set.
    const SeriesResult result = run_series(opts, kRuns);
    print_metric_table("Figure 12: Broker Discovery times using ONLY multicast",
                       result.total_ms);
    if (result.failures > 0) {
        std::printf("(failures: %zu / %zu runs)\n", result.failures, result.runs);
    }

    // Reachability check: run one instrumented discovery and list realms.
    scenario::Scenario probe(opts);
    const auto report = probe.run_discovery();
    print_heading("Reachability (paper: only lab brokers respond)");
    std::printf("responses received: %zu (expected 2, both realm iu-lab)\n",
                report.candidates.size());
    for (const auto& candidate : report.candidates) {
        std::printf("  %-32s realm=%s\n", candidate.response.broker_name.c_str(),
                    probe.network().realm_of(candidate.response.endpoint.host).c_str());
    }
    return 0;
}
