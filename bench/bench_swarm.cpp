// The canonical scale benchmark: a struct-of-arrays client swarm storms
// the real broker/BDN plane at 10k, 100k and 1M endpoints (a flash crowd
// over 30 s of virtual time, drained for 90 s) and reports the scale
// curve: discovery latency percentiles (p50/p99/p999), BDN shed rate,
// retransmits, breaker trips, per-endpoint swarm memory and wall-clock
// cost. A 10k double-run asserts seed determinism in-process.
//
// Results go to stdout (a table + NARADA_JSON lines) and to
// BENCH_scale.json; the CI bench-smoke job validates the schema and gates
// on the success floor, the 256-byte per-endpoint ceiling and digest
// equality. Exit code 1 on any gate failure, so the bench is its own
// regression test.
//
// This retires bench_scaling (ablation A6): broker-count scaling of the
// response wait is visible here as a side effect of the plane size, and
// the repo keeps exactly one scale benchmark.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "obs/memory.hpp"
#include "scenario/swarm_scenario.hpp"
#include "swarm/client_swarm.hpp"
#include "swarm/workload.hpp"

namespace narada::swarm {
namespace {

constexpr std::uint32_t kScales[] = {10'000, 100'000, 1'000'000};
constexpr std::uint64_t kSeed = 2026;
constexpr DurationUs kRamp = 30 * kSecond;
constexpr DurationUs kDrain = 90 * kSecond;

struct ScaleResult {
    std::uint32_t endpoints = 0;
    std::uint64_t started = 0;
    std::uint32_t connected = 0;
    double success_rate = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double p999_ms = 0;
    double shed_rate = 0;
    std::uint64_t requests = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t failed_runs = 0;
    std::uint64_t breaker_trips = 0;
    double bytes_per_endpoint = 0;
    std::uint64_t rss_delta_bytes = 0;
    std::size_t events = 0;
    double wall_ms = 0;
    std::string digest;
};

scenario::SwarmScenarioOptions options_for(std::uint32_t endpoints, std::uint64_t seed) {
    scenario::SwarmScenarioOptions options;
    options.capacity = endpoints;
    options.broker_count = 8;
    options.bdn_count = 4;
    options.seed = seed;
    return options;
}

ScaleResult run_scale(std::uint32_t endpoints, std::uint64_t seed) {
    const std::uint64_t rss_before = obs::process_rss_bytes();
    const auto wall_start = std::chrono::steady_clock::now();

    scenario::SwarmScenario sc(options_for(endpoints, seed));
    WorkloadPlan plan;
    plan.flash_crowd(0, endpoints, kRamp);
    const std::size_t events = sc.run_plan(plan, kDrain);

    ScaleResult r;
    r.endpoints = endpoints;
    r.events = events;
    r.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          wall_start)
                    .count();
    const SwarmCounters& c = sc.swarm().counters();
    r.started = c.started;
    r.connected = sc.swarm().connected();
    r.success_rate = c.started == 0 ? 0.0
                                    : static_cast<double>(r.connected) /
                                          static_cast<double>(c.started);
    const SampleSet& latency = sc.swarm().discovery_latency_ms();
    if (!latency.empty()) {
        r.p50_ms = latency.percentile(50);
        r.p99_ms = latency.percentile(99);
        r.p999_ms = latency.percentile(99.9);
    }
    r.shed_rate = sc.shed_rate();
    r.requests = c.requests_sent;
    r.retransmits = c.retransmits;
    r.failed_runs = c.failed_runs;
    r.breaker_trips = c.breaker_trips;
    r.bytes_per_endpoint = static_cast<double>(sc.swarm().state_bytes()) /
                           static_cast<double>(endpoints);
    const std::uint64_t rss_after = obs::process_rss_bytes();
    r.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
    r.digest = sc.swarm().metrics_digest_hex();
    return r;
}

/// Same seed, same plan, fresh system: the digests must match.
bool determinism_check(std::string& digest_a, std::string& digest_b) {
    const auto run_once = [] {
        scenario::SwarmScenario sc(options_for(10'000, kSeed));
        WorkloadPlan plan;
        plan.flash_crowd(0, 10'000, 10 * kSecond);
        plan.mobile_churn(12 * kSecond, 0.05, kSecond, 5 * kSecond);
        sc.run_plan(plan, 30 * kSecond);
        return sc.swarm().metrics_digest_hex();
    };
    digest_a = run_once();
    digest_b = run_once();
    return digest_a == digest_b;
}

}  // namespace
}  // namespace narada::swarm

int main(int argc, char** argv) {
    using namespace narada;
    using namespace narada::swarm;

    // `--runs` is accepted for CI smoke uniformity; the scale curve is a
    // fixed sweep (one deterministic run per point), so it only gates
    // whether the 1M point runs (smoke keeps it — it IS the acceptance
    // gate — but a custom quick pass can use --runs 1 to stop at 100k).
    const int runs = bench::parse_runs(argc, argv, 3);
    const bool include_million = runs >= 2;

    std::vector<ScaleResult> results;
    for (const std::uint32_t endpoints : kScales) {
        if (endpoints == 1'000'000 && !include_million) continue;
        results.push_back(run_scale(endpoints, kSeed));
    }

    bench::print_heading("Swarm scale curve: flash crowd vs. endpoint count (8 brokers, 4 BDNs)");
    std::printf("%10s %10s %8s %9s %9s %9s %9s %8s %10s %9s\n", "endpoints", "connected",
                "succ", "p50 ms", "p99 ms", "p99.9 ms", "shed", "B/ep", "events", "wall ms");
    for (const ScaleResult& r : results) {
        std::printf("%10u %10u %7.4f %9.1f %9.1f %9.1f %9.4f %8.1f %10zu %9.0f\n",
                    r.endpoints, r.connected, r.success_rate, r.p50_ms, r.p99_ms, r.p999_ms,
                    r.shed_rate, r.bytes_per_endpoint, r.events, r.wall_ms);
        bench::print_json_record(
            "swarm_scale",
            {{"endpoints", static_cast<double>(r.endpoints)},
             {"connected", static_cast<double>(r.connected)},
             {"success_rate", r.success_rate},
             {"p50_ms", r.p50_ms},
             {"p99_ms", r.p99_ms},
             {"p999_ms", r.p999_ms},
             {"shed_rate", r.shed_rate},
             {"retransmits", static_cast<double>(r.retransmits)},
             {"breaker_trips", static_cast<double>(r.breaker_trips)},
             {"bytes_per_endpoint", r.bytes_per_endpoint},
             {"wall_ms", r.wall_ms}});
    }

    std::string digest_a, digest_b;
    const bool deterministic = determinism_check(digest_a, digest_b);
    std::printf("\ndeterminism (10k, seed %llu): %s (%s vs %s)\n",
                static_cast<unsigned long long>(kSeed), deterministic ? "OK" : "MISMATCH",
                digest_a.c_str(), digest_b.c_str());

    {
        obs::JsonWriter w;
        w.begin_object()
            .field("bench", "swarm_scale")
            .field("seed", static_cast<std::uint64_t>(kSeed))
            .field("ramp_s", static_cast<std::uint64_t>(kRamp / kSecond))
            .field("drain_s", static_cast<std::uint64_t>(kDrain / kSecond))
            .key("results")
            .begin_array();
        for (const ScaleResult& r : results) {
            w.begin_object()
                .field("endpoints", static_cast<std::uint64_t>(r.endpoints))
                .field("started", r.started)
                .field("connected", static_cast<std::uint64_t>(r.connected))
                .field("success_rate", r.success_rate, 5)
                .field("p50_ms", r.p50_ms, 2)
                .field("p99_ms", r.p99_ms, 2)
                .field("p999_ms", r.p999_ms, 2)
                .field("shed_rate", r.shed_rate, 5)
                .field("requests", r.requests)
                .field("retransmits", r.retransmits)
                .field("failed_runs", r.failed_runs)
                .field("breaker_trips", r.breaker_trips)
                .field("bytes_per_endpoint", r.bytes_per_endpoint, 2)
                .field("rss_delta_bytes", r.rss_delta_bytes)
                .field("events", static_cast<std::uint64_t>(r.events))
                .field("wall_ms", r.wall_ms, 1)
                .field("digest", r.digest)
                .end_object();
        }
        w.end_array()
            .key("determinism")
            .begin_object()
            .field("endpoints", static_cast<std::uint64_t>(10'000))
            .field("digest_a", digest_a)
            .field("digest_b", digest_b)
            .field("match", deterministic)
            .end_object()
            .end_object();
        if (std::FILE* f = std::fopen("BENCH_scale.json", "w")) {
            std::fputs(w.str().c_str(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nwrote BENCH_scale.json\n");
        } else {
            std::perror("bench: BENCH_scale.json");
        }
    }

    // Regression gates: the bench is its own pass/fail check in CI.
    bool ok = true;
    for (const ScaleResult& r : results) {
        if (r.success_rate < 0.90) {
            std::printf("FAIL: success rate %.4f < 0.90 at %u endpoints\n", r.success_rate,
                        r.endpoints);
            ok = false;
        }
        if (r.bytes_per_endpoint > 256.0) {
            std::printf("FAIL: %.1f bytes/endpoint > 256 at %u endpoints\n",
                        r.bytes_per_endpoint, r.endpoints);
            ok = false;
        }
        if (r.p99_ms <= 0) {
            std::printf("FAIL: missing latency distribution at %u endpoints\n", r.endpoints);
            ok = false;
        }
    }
    if (!deterministic) {
        std::printf("FAIL: fixed seed produced different metric digests\n");
        ok = false;
    }
    return ok ? 0 : 1;
}
