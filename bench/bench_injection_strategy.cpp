// Ablation A2 — BDN injection strategies (paper §4).
//
// The paper injects each discovery request at the brokers closest and
// farthest from the BDN "to ensure that the broker discovery request
// propagates faster through the broker network". We compare that against
// closest-only, a random injection point, and O(N) direct fan-out, on a
// linear chain (where injection placement matters most).
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 60);
    const struct {
        config::InjectionStrategy strategy;
        const char* label;
    } strategies[] = {
        {config::InjectionStrategy::kClosestAndFarthest, "closest+farthest (paper)"},
        {config::InjectionStrategy::kClosestOnly, "closest only"},
        {config::InjectionStrategy::kRandom, "random single"},
        {config::InjectionStrategy::kAll, "all registered (O(N))"},
    };

    std::printf("Injection-strategy ablation, linear chain of five brokers,\n");
    std::printf("all registered with the BDN, client in Bloomington (60 runs each)\n\n");
    std::printf("%-28s %18s %18s %12s\n", "strategy", "mean collect (ms)", "mean total (ms)",
                "responses");

    for (const auto& entry : strategies) {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kLinear;
        // Unlike Figure 11's setup, register ALL brokers so the strategy
        // has a full distance table to choose from.
        opts.bdn.injection = entry.strategy;

        SampleSet collect, totals;
        double responses = 0;
        int successes = 0;
        for (int run = 0; run < kRuns; ++run) {
            opts.seed = 500 + static_cast<std::uint64_t>(run) * 7919;
            scenario::Scenario s(opts);
            const auto report = s.run_discovery();
            if (!report.success) continue;
            ++successes;
            collect.add(to_ms(report.collection_duration));
            totals.add(to_ms(report.total_duration));
            responses += static_cast<double>(report.candidates.size());
        }
        std::printf("%-28s %18.2f %18.2f %12.2f\n", entry.label, collect.mean(), totals.mean(),
                    successes ? responses / successes : 0.0);
    }

    std::printf(
        "\nShape check: on a chain, injecting at both ends halves the worst-case\n"
        "propagation depth, so closest+farthest beats single-point injection;\n"
        "O(N) fan-out pays the BDN's sequential per-send cost instead.\n");
    return 0;
}
