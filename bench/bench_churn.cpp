// Ablation A8 — discovery under broker churn.
//
// The paper's motivating environment: "broker processes may join and
// leave the broker network at arbitrary times and intervals" (§1.2), and
// the discovery process "should perform its function in such environments"
// (§1.3). We run a stream of discoveries against a full mesh while random
// brokers crash and return, sweeping the churn rate, and report the
// discovery success rate, how often the *selected* broker was actually
// alive at selection time, and the mean discovery latency.
//
// Soft-state machinery under test: periodic re-advertisement (revived
// brokers re-register), BDN registration expiry (dead brokers leave the
// injection pool), peer heartbeats (dead links shed and re-formed).
//
// A second experiment measures *overlay* recovery rather than discovery
// availability: brokers crash under the chaos engine and we time
// crash -> reconverged (the fault reverted, every RejoinSupervisor stood
// down, and the overlay one component again), reporting heal-time
// percentiles and emitting machine-readable NARADA_JSON records.
#include "harness.hpp"
#include "scenario/chaos.hpp"
#include "sim/fault_plan.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

struct ChurnOutcome {
    int attempts = 0;
    int successes = 0;
    int selected_alive = 0;
    SampleSet total_ms;
};

ChurnOutcome run_churn(DurationUs churn_interval, DurationUs down_time, int discoveries) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kFull;
    opts.broker_sites.assign(8, sim::Site::kIndianapolis);
    opts.seed = 0xC0FFEE;
    opts.discovery.response_window = from_ms(800);
    opts.discovery.retransmit_interval = from_ms(400);
    opts.discovery.max_responses = 0;  // take whoever answers in the window
    opts.broker.advertise_interval = 5 * kSecond;
    opts.broker.peer_heartbeat_interval = 2 * kSecond;
    opts.broker.peer_max_missed = 2;
    opts.bdn.ping_refresh_interval = 3 * kSecond;
    opts.bdn.registration_expiry = 10 * kSecond;
    scenario::Scenario s(opts);
    s.warm_up();
    auto& kernel = s.kernel();
    auto& net = s.network();
    Rng churn_rng(0xBADBEEF);

    // The churn process: periodically crash a random broker, then bring it
    // back and re-link it to the mesh.
    std::function<void()> churn_tick = [&] {
        const std::size_t victim = churn_rng.bounded(s.broker_count());
        const HostId host = s.broker_host(victim);
        if (!net.host_down(host)) {
            net.set_host_down(host, true);
            kernel.schedule_after(down_time, [&, victim, host] {
                net.set_host_down(host, false);
                for (std::size_t j = 0; j < s.broker_count(); ++j) {
                    if (j != victim) {
                        s.broker_at(victim).connect_to_peer(s.broker_at(j).endpoint());
                    }
                }
            });
        }
        kernel.schedule_after(churn_interval, churn_tick);
    };
    if (churn_interval > 0) kernel.schedule_after(churn_interval, churn_tick);

    ChurnOutcome outcome;
    const int kDiscoveries = discoveries;
    for (int i = 0; i < kDiscoveries; ++i) {
        ++outcome.attempts;
        const auto report = s.run_discovery();
        if (report.success) {
            ++outcome.successes;
            outcome.total_ms.add(to_ms(report.total_duration));
            const auto* chosen = report.selected_candidate();
            if (!net.host_down(chosen->response.endpoint.host)) ++outcome.selected_alive;
        }
        // Space the arrivals out so churn interleaves with them.
        kernel.run_until(kernel.now() + 2 * kSecond);
    }
    return outcome;
}

struct HealOutcome {
    int rounds = 0;
    int reconverged = 0;
    SampleSet heal_ms;  ///< crash -> overlay reconverged, per round
};

/// Crash a random broker per round (star overlay, rejoin supervision on)
/// and time how long the self-healing machinery needs to reconverge.
///
/// peer_floor = 2 is deliberate: with six brokers and at most one down, a
/// partition into components where every broker still meets a floor of two
/// would need two components of three — impossible with five live nodes —
/// so some supervisor always keeps healing until the overlay is whole.
/// (floor 1 permits stable splits: two pairs of mutually peered brokers
/// both satisfy the floor and nobody heals.)
HealOutcome run_heal_rounds(int rounds, DurationUs down_time) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    opts.broker_sites.assign(6, sim::Site::kIndianapolis);
    opts.seed = 0x48454153;
    opts.enable_rejoin = true;
    opts.rejoin.peer_floor = 2;
    opts.rejoin.backoff_max = 8 * kSecond;
    opts.discovery.response_window = from_ms(800);
    opts.discovery.retransmit_interval = from_ms(400);
    opts.discovery.max_responses = 0;
    opts.broker.advertise_interval = 5 * kSecond;
    opts.broker.peer_heartbeat_interval = 1 * kSecond;
    opts.broker.peer_max_missed = 2;
    opts.bdn.ping_refresh_interval = 3 * kSecond;
    opts.bdn.ad_lease = 15 * kSecond;
    scenario::Scenario s(opts);
    s.warm_up();
    auto& kernel = s.kernel();
    sim::ChaosInjector injector(kernel, s.network());
    Rng victim_rng(0xFA17);

    // The star only gives spokes one peer; let the supervisors fill the
    // floor of two before the crash rounds start.
    auto quiet = [&] {
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            if (s.rejoin_at(i).below_floor() || s.rejoin_at(i).healing()) return false;
        }
        return scenario::overlay_connected(s);
    };
    scenario::run_until(s, 60 * kSecond, quiet);

    HealOutcome outcome;
    for (int round = 0; round < rounds; ++round) {
        ++outcome.rounds;
        const std::size_t victim = victim_rng.bounded(s.broker_count());
        const TimeUs crash_at = kernel.now() + 1 * kSecond;
        sim::FaultPlan plan;
        plan.crash(1 * kSecond, s.broker_host(victim), down_time);
        injector.run(plan);

        auto reconverged = [&] { return injector.done() && quiet(); };
        if (scenario::run_until(s, 120 * kSecond, reconverged)) {
            ++outcome.reconverged;
            outcome.heal_ms.add(to_ms(kernel.now() - crash_at));
        }
        // Breathe between rounds so backoff state fully quiesces.
        kernel.run_until(kernel.now() + 5 * kSecond);
    }
    return outcome;
}

}  // namespace

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 60);
    std::printf("Discovery under broker churn: full mesh of 8 brokers, 60 client\n");
    std::printf("arrivals spaced 2 s apart; a random broker crashes every 'interval'\n");
    std::printf("and returns after 8 s (soft-state: re-ads 5 s, BDN expiry 10 s)\n\n");
    std::printf("%16s %12s %18s %18s\n", "churn interval", "success", "selected alive",
                "mean total (ms)");

    const struct {
        const char* label;
        DurationUs interval;
    } rates[] = {
        {"none", 0},
        {"60 s", 60 * kSecond},
        {"20 s", 20 * kSecond},
        {"10 s", 10 * kSecond},
        {"5 s", 5 * kSecond},
    };
    double success_rates[std::size(rates)] = {};
    std::size_t index = 0;
    for (const auto& rate : rates) {
        const ChurnOutcome outcome = run_churn(rate.interval, 8 * kSecond, kRuns);
        const double success = 100.0 * outcome.successes / outcome.attempts;
        const double alive = outcome.successes
                                 ? 100.0 * outcome.selected_alive / outcome.successes
                                 : 0.0;
        std::printf("%16s %11.1f%% %17.1f%% %18.2f\n", rate.label, success, alive,
                    outcome.total_ms.mean());
        print_json_record("churn_discovery",
                          {{"interval_s", to_ms(rate.interval) / 1000.0},
                           {"success_pct", success},
                           {"selected_alive_pct", alive},
                           {"mean_total_ms", outcome.total_ms.mean()}});
        success_rates[index++] = success;
    }

    std::printf(
        "\nShape check: discovery keeps succeeding under heavy churn (the paper's\n"
        "'dynamic and fluid system', §1.2): every row >= 95%% success: %s\n",
        [&] {
            for (double rate : success_rates) {
                if (rate < 95.0) return "VIOLATED";
            }
            return "HOLDS";
        }());

    // --- overlay heal time under the chaos engine ---------------------------
    std::printf(
        "\nOverlay heal time: star of 6 brokers with rejoin supervision\n"
        "(peer floor 2, backoff 0.5 s -> 8 s); one broker crashes per round\n"
        "and returns after 8 s; heal = crash -> fault reverted, supervisors\n"
        "quiet, overlay one component again.\n");
    const HealOutcome heal = run_heal_rounds(/*rounds=*/std::min(kRuns, 30), /*down_time=*/8 * kSecond);
    std::printf("\n%-28s %10d\n", "rounds", heal.rounds);
    std::printf("%-28s %10d\n", "reconverged", heal.reconverged);
    if (!heal.heal_ms.empty()) {
        std::printf("%-28s %10.0f ms\n", "heal time p50", heal.heal_ms.percentile(50));
        std::printf("%-28s %10.0f ms\n", "heal time p90", heal.heal_ms.percentile(90));
        std::printf("%-28s %10.0f ms\n", "heal time p99", heal.heal_ms.percentile(99));
        std::printf("%-28s %10.0f ms\n", "heal time max", heal.heal_ms.max());
    }
    auto fields = percentile_fields(heal.heal_ms);
    fields.emplace_back("rounds", static_cast<double>(heal.rounds));
    fields.emplace_back("reconverged", static_cast<double>(heal.reconverged));
    print_json_record("overlay_heal_time", fields);

    std::printf("\nShape check: every crash round reconverged: %s\n",
                heal.reconverged == heal.rounds ? "HOLDS" : "VIOLATED");
    return heal.reconverged == heal.rounds ? 0 : 1;
}
