// Ablation A7 — flooding vs subscription routing.
//
// The paper attributes the broker network's dissemination speed to
// "optimized routing" (§9). We compare the default duplicate-suppressed
// flooding against subscription-aware routing (interest announcements +
// per-link forwarding filters) on overlays of growing size: application
// traffic to a single subscriber, plus a check that discovery itself is
// unaffected (every broker is interested in the request topic, so routed
// discovery degenerates to flooding by design).
#include "harness.hpp"

#include "broker/client.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

struct TrafficResult {
    std::uint64_t forwards = 0;
    int delivered = 0;
};

TrafficResult run_traffic(config::RoutingMode mode, std::size_t n, int events) {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kRing;  // cycles stress both modes
    opts.broker_sites.assign(n, sim::Site::kIndianapolis);
    opts.broker.routing_mode = mode;
    opts.per_hop_loss = 0;
    opts.seed = 31337;
    scenario::Scenario s(opts);
    s.warm_up();

    auto& kernel = s.kernel();
    auto& net = s.network();
    broker::PubSubClient sub(kernel, net, Endpoint{s.client_host(), 9100});
    broker::PubSubClient pub(kernel, net, Endpoint{s.client_host(), 9101});
    TrafficResult result;
    sub.on_event([&](const broker::Event&) { ++result.delivered; });
    sub.subscribe("app/ticker");
    sub.connect(s.broker_at(n / 2).endpoint());  // halfway around the ring
    pub.connect(s.broker_at(0).endpoint());
    kernel.run_until(kernel.now() + kSecond);

    // Count only application-event forwards from here on.
    std::uint64_t base = 0;
    for (std::size_t i = 0; i < n; ++i) base += s.broker_at(i).stats().events_forwarded;
    for (int e = 0; e < events; ++e) pub.publish("app/ticker", Bytes{1});
    kernel.run_until(kernel.now() + 2 * kSecond);
    for (std::size_t i = 0; i < n; ++i) {
        result.forwards += s.broker_at(i).stats().events_forwarded;
    }
    result.forwards -= base;
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const int kEvents = parse_runs(argc, argv, 100);
    std::printf("Flooding vs subscription routing: %d events from broker 0 to one\n", kEvents);
    std::printf("subscriber halfway around a ring of N brokers\n\n");
    std::printf("%6s %22s %22s %14s\n", "N", "flood forwards", "routed forwards",
                "saving");

    for (const std::size_t n : {4u, 8u, 16u, 32u}) {
        const TrafficResult flood = run_traffic(config::RoutingMode::kFlood, n, kEvents);
        const TrafficResult routed = run_traffic(config::RoutingMode::kRouted, n, kEvents);
        if (flood.delivered != kEvents || routed.delivered != kEvents) {
            std::printf("DELIVERY MISMATCH at N=%zu (flood %d, routed %d)\n", n,
                        flood.delivered, routed.delivered);
            return 1;
        }
        std::printf("%6zu %22llu %22llu %13.1f%%\n", n,
                    static_cast<unsigned long long>(flood.forwards),
                    static_cast<unsigned long long>(routed.forwards),
                    100.0 * (1.0 - static_cast<double>(routed.forwards) /
                                       static_cast<double>(flood.forwards)));
    }

    // Discovery sanity under routed mode: same candidates, since every
    // broker declares interest in the reserved request topic.
    print_heading("Discovery under routed mode (must match flooding)");
    for (const auto mode : {config::RoutingMode::kFlood, config::RoutingMode::kRouted}) {
        scenario::ScenarioOptions opts = star_options();
        opts.broker.routing_mode = mode;
        opts.seed = 2222;
        scenario::Scenario s(opts);
        const auto report = s.run_discovery();
        std::printf("%-8s success=%d candidates=%zu total=%.2f ms\n",
                    config::to_string(mode).c_str(), report.success,
                    report.candidates.size(), to_ms(report.total_duration));
    }
    std::printf(
        "\nShape check: routing confines each event to the subscriber's side of\n"
        "the ring while flooding covers every link — the unicast-like cost the\n"
        "paper's 'optimized routing' buys the brokering network.\n");
    return 0;
}
