// Figures 3-7 — total discovery time with the client at each site.
//
// Paper protocol: unconnected broker network of five distributed brokers,
// the discovery client runs at FSU, Cardiff, UMN, NCSA and Bloomington;
// each experiment is carried out 120 times and the first 100 results kept
// after removing outliers; {mean, stddev, max, min, std-error} reported.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 120);
    struct SiteCase {
        const char* figure;
        sim::Site site;
        const char* label;
    };
    const SiteCase cases[] = {
        {"Figure 3", sim::Site::kFsu, "Client in FSU, FL"},
        {"Figure 4", sim::Site::kCardiff, "Client in Cardiff, UK"},
        {"Figure 5", sim::Site::kUmn, "Client in UMN, MN"},
        {"Figure 6", sim::Site::kNcsa, "Client in NCSA, UIUC, IL"},
        {"Figure 7", sim::Site::kBloomington, "Client in Bloomington, IN"},
    };

    std::printf("Total broker-discovery time, unconnected topology, five brokers\n");
    std::printf("(120 runs per site, 100 kept after outlier removal)\n");

    for (const SiteCase& c : cases) {
        scenario::ScenarioOptions opts = unconnected_options();
        opts.client_site = c.site;
        const SeriesResult result = run_series(opts, kRuns);
        print_metric_table(std::string(c.figure) + ": Time required for discovery with " +
                               c.label,
                           result.total_ms);
        if (result.failures > 0) {
            std::printf("(failures: %zu / %zu runs)\n", result.failures, result.runs);
        }
    }
    return 0;
}
