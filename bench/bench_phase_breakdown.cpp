// Figures 2, 9 and 11 — percentage of time spent in each sub-activity of
// broker discovery for the unconnected, star and linear topologies.
//
// Paper finding: "in each case, the maximum time is spent in waiting for
// the initial responses" — about 83 % in the unconnected topology; the
// wait drops "significantly" with the star overlay and sits in between for
// the linear chain (the request crawls hop by hop to the last broker).
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 120);
    struct Case {
        const char* figure;
        scenario::ScenarioOptions opts;
    };
    const Case cases[] = {
        {"Figure 2 (unconnected topology)", unconnected_options()},
        {"Figure 9 (star topology)", star_options()},
        {"Figure 11 (linear topology)", linear_options()},
    };

    std::printf("Percentage of time in discovery sub-activities, client in Bloomington\n");
    std::printf("(120 runs per topology, 100 kept after outlier removal)\n");

    double wait_pct[3] = {0, 0, 0};
    double collect_mean[3] = {0, 0, 0};
    int index = 0;
    for (const Case& c : cases) {
        const SeriesResult result = run_series(c.opts, kRuns);
        print_breakdown(c.figure, result.mean_breakdown);
        std::printf("%-40s %6.2f ms\n", "(mean wait for initial responses)",
                    result.collect_ms.mean());
        std::printf("%-40s %6.2f ms\n", "(mean total discovery time)",
                    result.total_ms.mean());
        wait_pct[index] = result.mean_breakdown.wait_responses_pct;
        collect_mean[index] = result.collect_ms.mean();
        ++index;
    }

    print_heading("Shape check (paper ordering)");
    std::printf("wait(star) < wait(linear) < wait(unconnected):  %.1f < %.1f < %.1f ms  %s\n",
                collect_mean[1], collect_mean[2], collect_mean[0],
                (collect_mean[1] < collect_mean[2] && collect_mean[2] < collect_mean[0])
                    ? "HOLDS"
                    : "VIOLATED");
    std::printf("waiting dominates every topology:               %s\n",
                (wait_pct[0] > 50 && wait_pct[1] > 30 && wait_pct[2] > 40) ? "HOLDS"
                                                                           : "VIOLATED");
    return 0;
}
