// Ablation A5 — duplicate-request cache size (paper §4).
//
// "Every broker keeps track of the last 1000 broker discovery requests so
// that additional CPU/network cycles are not expended on previously
// processed requests." We shrink the cache under a redundant-path
// topology (full mesh + dual injection) and count wasted re-processing
// and duplicate responses.
//
// Size 0 (caching disabled) is measured separately on a LINE topology:
// on any cyclic overlay a disabled event cache lets every flood echo
// multiply until TTL exhaustion — with TTL 32 and four peers that is
// ~4^32 forwards, i.e. a meltdown. That blow-up is the ablation's real
// result, so we demonstrate the mechanism where it terminates quickly.
#include <chrono>
#include <deque>
#include <unordered_set>

#include "broker/dedup_cache.hpp"
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

namespace {

// The pre-ring implementation (unordered_set + deque FIFO), kept inline so
// the micro section below can report the structural delta of the
// open-addressed ring that replaced it.
class LegacyDedupCache {
public:
    explicit LegacyDedupCache(std::size_t capacity) : capacity_(capacity) {}
    bool insert(const Uuid& id) {
        if (seen_.contains(id)) return false;
        seen_.insert(id);
        order_.push_back(id);
        while (order_.size() > capacity_) {
            seen_.erase(order_.front());
            order_.pop_front();
        }
        return true;
    }

private:
    std::size_t capacity_;
    std::unordered_set<Uuid> seen_;
    std::deque<Uuid> order_;
};

// Steady-state insert throughput: cache pre-filled to capacity, then a
// stream of 75% fresh / 25% duplicate ids (every fresh insert evicts).
// The id stream is pre-generated so the timed loop measures only cache
// operations, not the UUID generator.
template <typename Cache>
double steady_state_mops(Cache& cache, std::size_t capacity, std::size_t ops) {
    Rng rng(0xDEDu);
    std::vector<Uuid> recent(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
        recent[i] = Uuid::random(rng);
        cache.insert(recent[i]);
    }
    std::vector<Uuid> stream(ops);
    for (std::size_t i = 0; i < ops; ++i) {
        if (i % 4 == 3) {
            stream[i] = recent[i % capacity];  // duplicate hit
        } else {
            stream[i] = Uuid::random(rng);
            recent[i % capacity] = stream[i];
        }
    }
    std::uint64_t fresh = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        fresh += cache.insert(stream[i]) ? 1 : 0;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
    if (fresh == 0) std::printf("(unexpected: no fresh inserts)\n");
    return static_cast<double>(ops) / secs / 1e6;
}

void micro_delta(std::size_t capacity, std::size_t ops) {
    broker::DedupCache ring(capacity);
    LegacyDedupCache legacy(capacity);
    const double ring_mops = steady_state_mops(ring, capacity, ops);
    const double legacy_mops = steady_state_mops(legacy, capacity, ops);
    // Resident bytes per entry: the ring's storage is exact (slots + ring
    // index); the legacy estimate counts the libstdc++ set node (uuid + hash
    // + next pointer), bucket pointer, and the deque copy of the uuid.
    const double ring_bytes = (sizeof(Uuid) + 8.0) * 2.0 + 4.0;
    const double legacy_bytes = (sizeof(Uuid) + 16.0) + 8.0 + sizeof(Uuid);
    std::printf("%10zu %14.2f %14.2f %9.2fx %10.0f %10.0f\n", capacity, ring_mops,
                legacy_mops, ring_mops / legacy_mops, ring_bytes, legacy_bytes);
    print_json_record("dedup_cache_micro", {{"capacity", static_cast<double>(capacity)},
                                            {"ring_mops", ring_mops},
                                            {"legacy_mops", legacy_mops},
                                            {"speedup", ring_mops / legacy_mops}});
}

}  // namespace

int main(int argc, char** argv) {
    const int kRequests = parse_runs(argc, argv, 30);
    std::printf("Dedup-cache ablation, full mesh of five brokers, 30 sequential\n");
    std::printf("discoveries per cache size (client in Bloomington)\n\n");
    std::printf("%12s %22s %22s\n", "cache size", "duplicate suppressions",
                "responses per request");

    for (const std::uint32_t cache : {1u, 2u, 4u, 16u, 1000u}) {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        opts.broker.dedup_cache_size = cache;
        opts.seed = 4242;
        scenario::Scenario s(opts);

        std::uint64_t responses = 0;
        for (int i = 0; i < kRequests; ++i) {
            const auto report = s.run_discovery();
            responses += report.candidates.size();
        }
        std::uint64_t suppressed = 0;
        std::uint64_t sent = 0;
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            suppressed += s.plugin_at(i).stats().duplicates_suppressed;
            sent += s.plugin_at(i).stats().responses_sent;
        }
        std::printf("%12u %22llu %22.2f\n", cache,
                    static_cast<unsigned long long>(suppressed),
                    static_cast<double>(sent) / kRequests);
    }

    // Cache size 0 on an acyclic chain: every duplicate arrival is
    // re-processed and re-answered; the event flood still terminates
    // because a line has no cycles.
    {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kLinear;
        opts.register_with_bdn = SIZE_MAX;  // both-ends injection -> duplicates
        opts.broker.dedup_cache_size = 0;
        opts.seed = 777;
        scenario::Scenario s(opts);
        const auto report = s.run_discovery();
        std::uint64_t reprocessed = 0;
        std::uint64_t sent = 0;
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            reprocessed += s.plugin_at(i).stats().requests_seen;
            sent += s.plugin_at(i).stats().responses_sent;
        }
        print_heading("Cache disabled (size 0), acyclic chain, one request");
        std::printf("request processings across 5 brokers: %llu (5 would suffice)\n",
                    static_cast<unsigned long long>(reprocessed));
        std::printf("responses sent: %llu; client still deduplicates to %zu candidates\n",
                    static_cast<unsigned long long>(sent), report.candidates.size());
        std::printf(
            "\nNote: on any CYCLIC overlay, cache size 0 also disables event\n"
            "dedup, so floods echo until TTL exhaustion (~fanout^TTL forwards) —\n"
            "the paper's last-1000 cache is what makes flooding safe at all.\n");
    }

    // Structural micro-delta: the open-addressed ring vs the former
    // unordered_set + deque pair, steady state (cache full, 25% duplicates).
    print_heading("DedupCache implementation delta (insert+evict steady state)");
    std::printf("%10s %14s %14s %9s %10s %10s\n", "capacity", "ring Mops/s",
                "legacy Mops/s", "speedup", "ring B/e", "legacy B/e");
    const std::size_t micro_ops = kRequests >= 30 ? 2'000'000 : 200'000;
    for (const std::size_t capacity : {16u, 1000u, 65536u}) {
        micro_delta(capacity, micro_ops);
    }
    return 0;
}
