// Ablation A5 — duplicate-request cache size (paper §4).
//
// "Every broker keeps track of the last 1000 broker discovery requests so
// that additional CPU/network cycles are not expended on previously
// processed requests." We shrink the cache under a redundant-path
// topology (full mesh + dual injection) and count wasted re-processing
// and duplicate responses.
//
// Size 0 (caching disabled) is measured separately on a LINE topology:
// on any cyclic overlay a disabled event cache lets every flood echo
// multiply until TTL exhaustion — with TTL 32 and four peers that is
// ~4^32 forwards, i.e. a meltdown. That blow-up is the ablation's real
// result, so we demonstrate the mechanism where it terminates quickly.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRequests = parse_runs(argc, argv, 30);
    std::printf("Dedup-cache ablation, full mesh of five brokers, 30 sequential\n");
    std::printf("discoveries per cache size (client in Bloomington)\n\n");
    std::printf("%12s %22s %22s\n", "cache size", "duplicate suppressions",
                "responses per request");

    for (const std::uint32_t cache : {1u, 2u, 4u, 16u, 1000u}) {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        opts.broker.dedup_cache_size = cache;
        opts.seed = 4242;
        scenario::Scenario s(opts);

        std::uint64_t responses = 0;
        for (int i = 0; i < kRequests; ++i) {
            const auto report = s.run_discovery();
            responses += report.candidates.size();
        }
        std::uint64_t suppressed = 0;
        std::uint64_t sent = 0;
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            suppressed += s.plugin_at(i).stats().duplicates_suppressed;
            sent += s.plugin_at(i).stats().responses_sent;
        }
        std::printf("%12u %22llu %22.2f\n", cache,
                    static_cast<unsigned long long>(suppressed),
                    static_cast<double>(sent) / kRequests);
    }

    // Cache size 0 on an acyclic chain: every duplicate arrival is
    // re-processed and re-answered; the event flood still terminates
    // because a line has no cycles.
    {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kLinear;
        opts.register_with_bdn = SIZE_MAX;  // both-ends injection -> duplicates
        opts.broker.dedup_cache_size = 0;
        opts.seed = 777;
        scenario::Scenario s(opts);
        const auto report = s.run_discovery();
        std::uint64_t reprocessed = 0;
        std::uint64_t sent = 0;
        for (std::size_t i = 0; i < s.broker_count(); ++i) {
            reprocessed += s.plugin_at(i).stats().requests_seen;
            sent += s.plugin_at(i).stats().responses_sent;
        }
        print_heading("Cache disabled (size 0), acyclic chain, one request");
        std::printf("request processings across 5 brokers: %llu (5 would suffice)\n",
                    static_cast<unsigned long long>(reprocessed));
        std::printf("responses sent: %llu; client still deduplicates to %zu candidates\n",
                    static_cast<unsigned long long>(sent), report.candidates.size());
        std::printf(
            "\nNote: on any CYCLIC overlay, cache size 0 also disables event\n"
            "dedup, so floods echo until TTL exhaustion (~fanout^TTL forwards) —\n"
            "the paper's last-1000 cache is what makes flooding safe at all.\n");
    }
    return 0;
}
