// Real-socket discovery latency: the identical protocol stack measured
// over actual loopback UDP/TCP (PosixTransport) with wall-clock timers —
// the "it's not just a simulator" data point. Loopback has no WAN latency,
// so this measures pure protocol + OS networking overhead.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>

#include "broker/broker.hpp"
#include "common/stats.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"
#include "harness.hpp"
#include "transport/posix_transport.hpp"

using namespace narada;

int main(int argc, char** argv) {
    const int kRuns = bench::parse_runs(argc, argv, 60);

    transport::PosixTransport transport;
    obs::MetricsRegistry registry;
    // Traffic totals over the real sockets; must be wired before any bind.
    transport.set_observability(&registry, "loopback");
    WallClock wall;
    timesvc::FixedUtcSource utc(wall);

    std::uint16_t port = transport::PosixTransport::find_free_port(48000);
    auto next_port = [&port] {
        const Endpoint ep{0, port};
        port = transport::PosixTransport::find_free_port(static_cast<std::uint16_t>(port + 1));
        return ep;
    };

    discovery::Bdn bdn(transport, transport, next_port(), wall, {}, "bench-bdn");

    config::BrokerConfig broker_cfg;
    broker_cfg.advertise_bdns = {bdn.endpoint()};
    broker_cfg.processing_delay = from_ms(0.2);
    constexpr std::size_t kBrokers = 5;
    std::vector<std::unique_ptr<broker::Broker>> brokers;
    std::vector<std::unique_ptr<discovery::BrokerDiscoveryPlugin>> plugins;
    for (std::size_t i = 0; i < kBrokers; ++i) {
        auto node = std::make_unique<broker::Broker>(transport, transport, next_port(), wall,
                                                     utc, broker_cfg,
                                                     "loop-" + std::to_string(i));
        discovery::BrokerIdentity identity;
        identity.hostname = "127.0.0.1";
        identity.realm = "loopback";
        auto plugin = std::make_unique<discovery::BrokerDiscoveryPlugin>(identity);
        node->add_plugin(plugin.get());
        plugins.push_back(std::move(plugin));
        brokers.push_back(std::move(node));
    }
    for (std::size_t i = 1; i < kBrokers; ++i) {
        brokers[i]->connect_to_peer(brokers[0]->endpoint());
    }
    for (auto& b : brokers) b->start();
    bdn.start();

    // Let real UDP advertisements land.
    for (int i = 0; i < 100 && bdn.registered_count() < kBrokers; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::printf("real-socket testbed: %zu brokers (star), %zu registered at the BDN\n",
                kBrokers, bdn.registered_count());

    config::DiscoveryConfig client_cfg;
    client_cfg.bdns = {bdn.endpoint()};
    client_cfg.response_window = from_ms(150);
    client_cfg.ping_window = from_ms(80);
    client_cfg.max_responses = static_cast<std::uint32_t>(kBrokers);
    client_cfg.retransmit_interval = from_ms(100);
    discovery::DiscoveryClient client(transport, transport, next_port(), wall, utc,
                                      client_cfg, "bench-client", "loopback");

    SampleSet totals, collects, pings;
    int failures = 0;
    for (int run = 0; run < kRuns; ++run) {
        std::mutex m;
        std::condition_variable cv;
        std::optional<discovery::DiscoveryReport> result;
        client.discover([&](const discovery::DiscoveryReport& report) {
            std::scoped_lock lock(m);
            result = report;
            cv.notify_all();
        });
        std::unique_lock lock(m);
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return result.has_value(); });
        if (!result || !result->success) {
            ++failures;
            continue;
        }
        totals.add(to_ms(result->total_duration));
        collects.add(to_ms(result->collection_duration));
        pings.add(to_ms(result->ping_duration));
    }

    std::printf("\n== Discovery over real loopback sockets (%d runs, %d failures) ==\n",
                kRuns, failures);
    std::fputs(totals.trim_outliers(bench::default_keep(kRuns)).metric_table().c_str(),
               stdout);
    std::printf("\nphase means: collect %.3f ms, ping %.3f ms\n", collects.mean(),
                pings.mean());
    std::printf(
        "\nNote: loopback removes WAN latency; totals reflect protocol and OS\n"
        "overhead only. The WAN figures (3-7) come from the calibrated\n"
        "simulation in bench_discovery_sites.\n");
    bench::print_metrics_snapshot(registry);
    return failures < kRuns / 2 ? 0 : 1;
}
