// Shared experiment harness for the paper-reproduction benchmarks.
//
// Reproduces the paper's measurement protocol (§9): each configuration is
// run `runs` times (default 120) on freshly built scenarios with distinct
// seeds, outliers are removed keeping the `keep` samples closest to the
// median total time (default 100 — "The discovery process was carried out
// 120 times and the first 100 results were selected after removing
// outliers"), and results are reported as the paper's five-metric table
// {Mean, Standard deviation, Maximum, Minimum, Error}.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "obs/json.hpp"
#include "scenario/scenario.hpp"

namespace narada::bench {

struct RunRecord {
    double total_ms = 0;
    double collect_ms = 0;
    double ping_ms = 0;
    double first_resp_ms = -1;
    scenario::PhaseBreakdown breakdown;
};

struct SeriesResult {
    SampleSet total_ms;       ///< end-to-end discovery time (trimmed)
    SampleSet collect_ms;     ///< request -> collection end
    SampleSet ping_ms;        ///< ping phase
    SampleSet first_resp_ms;  ///< request -> first response
    /// Mean percentage split across the paper's sub-activities, computed
    /// over the same kept runs as the timing samples.
    scenario::PhaseBreakdown mean_breakdown;
    std::size_t failures = 0;
    std::size_t runs = 0;
};

/// Parse `--runs N` (or `--runs=N`) from the command line; the CI smoke
/// job passes `--runs 3` so every bench sweeps its full configuration grid
/// at a fraction of the measurement cost. Returns `fallback` when the flag
/// is absent or malformed; the result is always >= 1.
inline int parse_runs(int argc, char** argv, int fallback) {
    int runs = fallback;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
            runs = std::atoi(argv[i + 1]);
        } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
            runs = std::atoi(argv[i] + 7);
        }
    }
    return runs >= 1 ? runs : fallback;
}

/// The paper's outlier-trim ratio: 120 runs keep 100, so `runs` keep
/// `runs - runs/6` (at least 1).
inline int default_keep(int runs) { return std::max(1, runs - runs / 6); }

/// Run `runs` independent discoveries (fresh scenario per run, seed =
/// base_seed + run * 7919); keep the `keep` runs closest to the median
/// total time (keep < 0 applies the paper's 120->100 trim ratio);
/// aggregate everything from the kept runs.
inline SeriesResult run_series(const scenario::ScenarioOptions& base, int runs = 120,
                               int keep = -1) {
    if (keep < 0) keep = default_keep(runs);
    SeriesResult result;
    std::vector<RunRecord> records;
    records.reserve(static_cast<std::size_t>(runs));
    for (int run = 0; run < runs; ++run) {
        scenario::ScenarioOptions opts = base;
        opts.seed = base.seed + static_cast<std::uint64_t>(run) * 7919;
        scenario::Scenario s(opts);
        const auto report = s.run_discovery();
        ++result.runs;
        if (!report.success) {
            ++result.failures;
            continue;
        }
        RunRecord record;
        record.total_ms = to_ms(report.total_duration);
        record.collect_ms = to_ms(report.collection_duration);
        record.ping_ms = to_ms(report.ping_duration);
        if (report.time_to_first_response >= 0) {
            record.first_resp_ms = to_ms(report.time_to_first_response);
        }
        record.breakdown = scenario::phase_breakdown(report);
        records.push_back(record);
    }

    // Outlier removal exactly as the paper: keep the runs whose total time
    // sits closest to the median.
    if (records.size() > static_cast<std::size_t>(keep)) {
        std::vector<double> totals;
        totals.reserve(records.size());
        for (const RunRecord& r : records) totals.push_back(r.total_ms);
        std::nth_element(totals.begin(), totals.begin() + totals.size() / 2, totals.end());
        const double median = totals[totals.size() / 2];
        std::stable_sort(records.begin(), records.end(),
                         [median](const RunRecord& a, const RunRecord& b) {
                             return std::abs(a.total_ms - median) <
                                    std::abs(b.total_ms - median);
                         });
        records.resize(static_cast<std::size_t>(keep));
    }

    double acc_req = 0, acc_wait = 0, acc_short = 0, acc_ping = 0;
    for (const RunRecord& r : records) {
        result.total_ms.add(r.total_ms);
        result.collect_ms.add(r.collect_ms);
        result.ping_ms.add(r.ping_ms);
        if (r.first_resp_ms >= 0) result.first_resp_ms.add(r.first_resp_ms);
        acc_req += r.breakdown.request_and_ack_pct;
        acc_wait += r.breakdown.wait_responses_pct;
        acc_short += r.breakdown.shortlist_pct;
        acc_ping += r.breakdown.ping_select_pct;
    }
    if (!records.empty()) {
        const auto n = static_cast<double>(records.size());
        result.mean_breakdown.request_and_ack_pct = acc_req / n;
        result.mean_breakdown.wait_responses_pct = acc_wait / n;
        result.mean_breakdown.shortlist_pct = acc_short / n;
        result.mean_breakdown.ping_select_pct = acc_ping / n;
    }
    return result;
}

inline void print_heading(const std::string& title) {
    std::printf("\n== %s ==\n", title.c_str());
}

inline void print_metric_table(const std::string& title, const SampleSet& samples) {
    print_heading(title);
    std::fputs(samples.metric_table().c_str(), stdout);
}

/// One machine-readable result record per line. Consumers grep stdout for
/// the "NARADA_JSON " prefix and parse the remainder as a JSON object, so
/// benches can keep their human-readable tables alongside. Emission goes
/// through the obs JSON writer, so names and keys are escaped correctly
/// (the old snprintf emitter produced invalid JSON on quotes/backslashes).
inline void print_json_record(const std::string& bench,
                              const std::vector<std::pair<std::string, double>>& fields) {
    obs::JsonWriter w;
    w.begin_object().field("bench", bench);
    for (const auto& [key, value] : fields) w.field(key, value, 4);
    w.end_object();
    std::printf("NARADA_JSON %s\n", w.str().c_str());
}

/// One metrics-registry snapshot per line ("NARADA_METRICS " prefix; the
/// CI bench-smoke job collects these as artifacts).
inline void print_metrics_snapshot(obs::MetricsRegistry& registry) {
    std::printf("NARADA_METRICS %s\n", registry.to_json().c_str());
}

/// The standard percentile fields for a latency distribution.
inline std::vector<std::pair<std::string, double>> percentile_fields(const SampleSet& s) {
    return {{"n", static_cast<double>(s.size())}, {"mean_ms", s.mean()},
            {"p50_ms", s.percentile(50)},         {"p90_ms", s.percentile(90)},
            {"p99_ms", s.percentile(99)},         {"max_ms", s.max()}};
}

inline void print_breakdown(const std::string& title, const scenario::PhaseBreakdown& b) {
    print_heading(title);
    std::printf("%-40s %6.1f %%\n", "Request transmission & BDN ack", b.request_and_ack_pct);
    std::printf("%-40s %6.1f %%\n", "Waiting for initial responses", b.wait_responses_pct);
    std::printf("%-40s %6.1f %%\n", "Response processing & shortlisting", b.shortlist_pct);
    std::printf("%-40s %6.1f %%\n", "Ping measurement & selection", b.ping_select_pct);
}

/// The paper's unconnected-topology configuration (Figure 1): no broker
/// links, every broker registered, BDN distributes O(N) itself.
inline scenario::ScenarioOptions unconnected_options() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kUnconnected;
    opts.bdn.injection = config::InjectionStrategy::kAll;
    return opts;
}

/// Star topology (Figure 8).
inline scenario::ScenarioOptions star_options() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kStar;
    return opts;
}

/// Linear topology (Figure 10): only the chain head registers.
inline scenario::ScenarioOptions linear_options() {
    scenario::ScenarioOptions opts;
    opts.topology = scenario::Topology::kLinear;
    opts.register_with_bdn = 1;
    return opts;
}

}  // namespace narada::bench
