// Micro-benchmarks (google-benchmark) for the hot paths under the
// discovery protocol: topic matching, the subscription trie, the wire
// codec, the dedup cache, the event kernel, scoring, and the crypto
// primitives behind Figures 13/14.
#include <benchmark/benchmark.h>

#include "broker/dedup_cache.hpp"
#include "broker/subscription_table.hpp"
#include "broker/topic.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"
#include "discovery/messages.hpp"
#include "discovery/scoring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "services/compression.hpp"
#include "services/fragmentation.hpp"
#include "sim/kernel.hpp"

namespace narada {
namespace {

void BM_TopicMatchExact(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(broker::topic_matches(
            "Services/BrokerDiscoveryNodes/BrokerAdvertisement",
            "Services/BrokerDiscoveryNodes/BrokerAdvertisement"));
    }
}
BENCHMARK(BM_TopicMatchExact);

void BM_TopicMatchWildcards(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            broker::topic_matches("Services/*/#", "Services/BrokerDiscoveryNodes/X/Y/Z"));
    }
}
BENCHMARK(BM_TopicMatchWildcards);

void BM_SubscriptionTrieMatch(benchmark::State& state) {
    broker::SubscriptionTable table;
    Rng rng(1);
    // Populate with `range(0)` filters across a topic tree.
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
        table.subscribe("a/" + std::to_string(i % 64) + "/" + std::to_string(i) + "/#",
                        i + 1);
    }
    std::size_t hit = 0;
    for (auto _ : state) {
        hit += table.match("a/7/23/leaf").size();
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_SubscriptionTrieMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DiscoveryResponseCodec(benchmark::State& state) {
    Rng rng(2);
    discovery::DiscoveryResponse response;
    response.request_id = Uuid::random(rng);
    response.broker_id = Uuid::random(rng);
    response.broker_name = "tungsten.ncsa.uiuc.edu/broker2";
    response.hostname = "tungsten.ncsa.uiuc.edu";
    response.endpoint = {5, 7000};
    response.protocols = {"tcp", "udp", "multicast"};
    for (auto _ : state) {
        wire::ByteWriter writer;
        response.encode(writer);
        wire::ByteReader reader(writer.bytes());
        benchmark::DoNotOptimize(discovery::DiscoveryResponse::decode(reader));
    }
}
BENCHMARK(BM_DiscoveryResponseCodec);

void BM_DedupCacheInsert(benchmark::State& state) {
    broker::DedupCache cache(1000);  // the paper's default
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert(Uuid::random(rng)));
    }
}
BENCHMARK(BM_DedupCacheInsert);

void BM_KernelScheduleRun(benchmark::State& state) {
    for (auto _ : state) {
        sim::Kernel kernel;
        for (int i = 0; i < 1000; ++i) {
            kernel.schedule_at(i, [] {});
        }
        benchmark::DoNotOptimize(kernel.run());
    }
}
BENCHMARK(BM_KernelScheduleRun);

void BM_ScoreAndShortlist(benchmark::State& state) {
    Rng rng(4);
    std::vector<discovery::Candidate> base(static_cast<std::size_t>(state.range(0)));
    for (auto& c : base) {
        c.response.metrics.cpu_load = rng.uniform();
        c.response.metrics.connections = static_cast<std::uint32_t>(rng.bounded(100));
        c.response.metrics.total_memory = 512ull << 20;
        c.response.metrics.free_memory = rng.bounded(512ull << 20);
        c.estimated_delay = rng.uniform_int(1000, 100000);
    }
    const config::MetricWeights weights;
    for (auto _ : state) {
        auto candidates = base;
        benchmark::DoNotOptimize(discovery::shortlist(candidates, weights, 10));
    }
}
BENCHMARK(BM_ScoreAndShortlist)->Arg(10)->Arg(100)->Arg(1000);

void BM_Sha256(benchmark::State& state) {
    Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_AesCbcEncrypt(benchmark::State& state) {
    crypto::Aes128::Key key{};
    crypto::Aes128::Block iv{};
    const crypto::Aes128 aes(key);
    Bytes data(static_cast<std::size_t>(state.range(0)), 0x37);
    for (auto _ : state) {
        benchmark::DoNotOptimize(aes.encrypt_cbc(data, iv));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(256)->Arg(4096);

void BM_LzssCompress(benchmark::State& state) {
    // Compressible text-like data (the common pub/sub payload case).
    Bytes data;
    for (int i = 0; data.size() < static_cast<std::size_t>(state.range(0)); ++i) {
        const std::string row = "key=" + std::to_string(i % 97) + ",value=42;";
        data.insert(data.end(), row.begin(), row.end());
    }
    data.resize(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(services::compress(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LzssCompress)->Arg(1024)->Arg(65536);

void BM_LzssDecompress(benchmark::State& state) {
    Bytes data;
    for (int i = 0; data.size() < static_cast<std::size_t>(state.range(0)); ++i) {
        const std::string row = "key=" + std::to_string(i % 97) + ",value=42;";
        data.insert(data.end(), row.begin(), row.end());
    }
    data.resize(static_cast<std::size_t>(state.range(0)));
    const Bytes compressed = services::compress(data);
    for (auto _ : state) {
        benchmark::DoNotOptimize(services::decompress(compressed));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_LzssDecompress)->Arg(65536);

void BM_FragmentAndCoalesce(benchmark::State& state) {
    Rng rng(9);
    Bytes payload(static_cast<std::size_t>(state.range(0)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
    for (auto _ : state) {
        const auto fragments =
            services::fragment_payload(payload, 8192, Uuid::random(rng));
        services::Coalescer coalescer;
        std::optional<Bytes> out;
        for (const auto& f : fragments) {
            if (auto r = coalescer.accept(f)) out = std::move(r);
        }
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FragmentAndCoalesce)->Arg(1 << 20);

void BM_MetricsCounterInc(benchmark::State& state) {
    // The cost the broker request path pays per ++stats_ mirror: one
    // relaxed fetch_add through a pre-resolved handle.
    obs::MetricsRegistry registry;
    obs::Counter& counter = registry.counter("bench_counter", "node");
    for (auto _ : state) {
        counter.inc();
        benchmark::DoNotOptimize(counter);
    }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
    obs::MetricsRegistry registry;
    obs::Histogram& histogram =
        registry.histogram("bench_latency_ms", "node", obs::latency_buckets_ms());
    Rng rng(7);
    double v = 0.1;
    for (auto _ : state) {
        histogram.observe(v);
        v = v > 4000 ? 0.1 : v * 1.7;  // sweep the bucket ladder
        benchmark::DoNotOptimize(histogram);
    }
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_SpanBeginEnd(benchmark::State& state) {
    obs::SpanRecorder recorder(1 << 20);
    Rng rng(8);
    const Uuid trace = Uuid::random(rng);
    TimeUs now = 0;
    for (auto _ : state) {
        const std::uint64_t span = recorder.begin(trace, 0, "bench.span", "node", now);
        recorder.end(span, now + 10);
        now += 20;
        if (recorder.size() + 2 >= (1 << 20)) recorder.clear();
    }
}
BENCHMARK(BM_SpanBeginEnd);

void BM_RsaSign(benchmark::State& state) {
    Rng rng(5);
    static const crypto::RsaKeyPair keys = crypto::rsa_generate(rng, 1024);
    const Bytes message(200, 0x11);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::rsa_sign(keys.private_key, message));
    }
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
    Rng rng(6);
    static const crypto::RsaKeyPair keys = crypto::rsa_generate(rng, 1024);
    const Bytes message(200, 0x22);
    const Bytes signature = crypto::rsa_sign(keys.private_key, message);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::rsa_verify(keys.public_key, message, signature));
    }
}
BENCHMARK(BM_RsaVerify);

}  // namespace
}  // namespace narada

BENCHMARK_MAIN();
