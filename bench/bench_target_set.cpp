// Ablation A3 — target-set size (paper §6, §10).
//
// "This targeted set of broker typically comprises of around 10 brokers"
// and "the broker target set is limited to a very small number, between 5
// and 20". A larger target set pings more brokers (more UDP traffic, a
// better chance of finding the true nearest); a smaller one finishes the
// ping phase sooner but may rely on the NTP-based estimate alone.
#include "harness.hpp"

using namespace narada;
using namespace narada::bench;

int main(int argc, char** argv) {
    const int kRuns = parse_runs(argc, argv, 40);
    std::printf("Target-set-size ablation, full mesh of 10 brokers (two per site),\n");
    std::printf("client in Bloomington (40 runs per size)\n\n");
    std::printf("%8s %16s %20s %24s\n", "size T", "mean total (ms)", "mean ping phase (ms)",
                "chose true nearest (%)");

    for (const std::uint32_t size : {1u, 2u, 3u, 5u, 8u, 10u}) {
        scenario::ScenarioOptions opts;
        opts.topology = scenario::Topology::kFull;
        opts.broker_sites = {
            sim::Site::kBloomington, sim::Site::kIndianapolis, sim::Site::kNcsa,
            sim::Site::kUmn,         sim::Site::kFsu,          sim::Site::kCardiff,
            sim::Site::kIndianapolis, sim::Site::kNcsa,        sim::Site::kUmn,
            sim::Site::kFsu,
        };
        opts.discovery.max_responses = 10;
        opts.discovery.target_set_size = size;

        SampleSet totals, pings;
        int nearest_hits = 0;
        int successes = 0;
        for (int run = 0; run < kRuns; ++run) {
            opts.seed = 900 + static_cast<std::uint64_t>(run) * 7919;
            scenario::Scenario s(opts);
            const auto report = s.run_discovery();
            if (!report.success) continue;
            ++successes;
            totals.add(to_ms(report.total_duration));
            pings.add(to_ms(report.ping_duration));
            // Ground truth: the Bloomington broker is the true nearest.
            const auto* chosen = report.selected_candidate();
            if (chosen != nullptr &&
                s.network().host(chosen->response.endpoint.host).site == "Bloomington") {
                ++nearest_hits;
            }
        }
        std::printf("%8u %16.2f %20.2f %24.1f\n", size, totals.mean(), pings.mean(),
                    successes ? 100.0 * nearest_hits / successes : 0.0);
    }

    std::printf(
        "\nShape check: tiny target sets risk missing the true nearest broker\n"
        "when NTP error (1-20 ms) mis-ranks candidates; the paper's 5-20 range\n"
        "recovers it via pings at modest extra ping-phase cost.\n");
    return 0;
}
