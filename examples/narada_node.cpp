// narada_node — run a broker, BDN or discovery client over real loopback
// sockets, configured entirely from an INI file (the paper's "node
// configuration file", §3). This is the deployable face of the library:
// start a few nodes in separate terminals and watch discovery happen over
// actual UDP/TCP.
//
//   $ ./examples/narada_node examples/config/bdn.ini &
//   $ ./examples/narada_node examples/config/broker1.ini &
//   $ ./examples/narada_node examples/config/broker2.ini &
//   $ ./examples/narada_node examples/config/client.ini
//
// Config format (see examples/config/*.ini):
//   [node]
//   role = broker | bdn | client
//   port = 47001            ; UDP+TCP port on 127.0.0.1
//   name = my-broker
//   realm = lab
//   run_for_ms = 0          ; 0 = run until SIGINT (brokers/BDNs)
// plus the standard [broker] / [bdn] / [discovery] / [weights] sections.
// An [obs] section (enabled, trace_sample_rate, span_capacity) wires the
// observability plane: every node prints a NARADA_METRICS snapshot on
// shutdown, and a traced client prints its span timeline.
//
// A [transport] section (shards, pin_cpus, handoff_depth, udp_batch,
// pool_buffers, udp_sockbuf, udp_gso) selects the thread-per-core sharded
// datapath: shards = N runs N SO_REUSEPORT epoll reactors and the kernel
// spreads inbound flows across them. The protocol object stays homed on
// shard 0 (single-threaded as always); off-home arrivals hop once over a
// lock-free ring. shards = 1 (the default) is the classic single loop.
//
// A [security] section turns on the secured discovery datapath:
//   [security]
//   mode = seal             ; off | sign | seal
//   demo_ca_seed = 42       ; REQUIRED when mode != off (see below)
//   peers = bdn@47000       ; identities this node seals to (identity@port)
//   authenticate_ads = true ; BDN: reject plain / foreign-subject ads
// Real deployments load CA roots and per-node keys from files; this demo
// binary instead derives the whole PKI deterministically from
// demo_ca_seed — every node sharing the seed derives the same demo CA
// (and each other's keypairs), so independently started processes can
// verify each other with zero key distribution. That makes the seed a
// pre-shared secret: demo-grade trust, not production key management.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>

#include "broker/broker.hpp"
#include "crypto/certificate.hpp"
#include "crypto/rsa.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"
#include "discovery/security.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "transport/shard_runtime.hpp"

using namespace narada;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop = true; }

/// Observability plane for one process, built from the [obs] section.
/// Null members mean the plane is off and every wiring call is skipped.
struct ObsPlane {
    std::optional<obs::MetricsRegistry> metrics;
    std::optional<obs::SpanRecorder> spans;

    explicit ObsPlane(const config::ObsConfig& cfg) {
        if (!cfg.enabled) return;
        metrics.emplace();
        spans.emplace(cfg.span_capacity);
    }

    [[nodiscard]] obs::MetricsRegistry* registry() {
        return metrics ? &*metrics : nullptr;
    }
    [[nodiscard]] obs::SpanRecorder* recorder() { return spans ? &*spans : nullptr; }

    void print_metrics() const {
        if (metrics) std::printf("NARADA_METRICS %s\n", metrics->to_json().c_str());
    }
};

/// Secured-datapath plane for one process, built from the [security]
/// section. A disengaged context means security is off and set_security
/// receives nullptr (the components' plain path).
///
/// Key material is derived deterministically from `demo_ca_seed`: the CA
/// keypair comes straight from the seed, each identity's keypair from
/// seed ⊕ fnv1a(identity). Nodes sharing the seed therefore agree on the
/// CA *and* can compute any peer's public key locally — a pre-shared-
/// secret bootstrap that stands in for real key distribution so the
/// multi-process demo works with nothing but matching INI files.
struct SecurityPlane {
    WallClock clock;
    Rng rng;
    std::optional<discovery::SecurityContext> context;

    SecurityPlane(const config::Ini& ini, const std::string& name)
        : rng(static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count())) {
        const config::SecurityConfig cfg = config::SecurityConfig::from_ini(ini);
        if (!cfg.enabled()) return;
        const std::int64_t seed = ini.get_int("security", "demo_ca_seed", -1);
        if (seed < 0) {
            throw config::IniError(
                "security.demo_ca_seed is required when security.mode != off "
                "(all cooperating nodes must share it)");
        }
        const TimeUs now = clock.now();
        const TimeUs valid_from = now - 60 * kSecond;
        const TimeUs valid_to = now + 24 * 60 * 60 * kSecond;

        Rng ca_rng(static_cast<std::uint64_t>(seed));
        const crypto::RsaKeyPair ca = crypto::rsa_generate(ca_rng, 1024);
        const crypto::Certificate root =
            crypto::make_self_signed("demo-ca", ca, valid_from, valid_to, 1);
        const auto identity_keys = [&](const std::string& identity) {
            Rng id_rng(static_cast<std::uint64_t>(seed) ^ fnv1a(identity));
            return crypto::rsa_generate(id_rng, 1024);
        };

        const crypto::RsaKeyPair own = identity_keys(name);
        const crypto::Certificate leaf = crypto::issue_certificate(
            name, own.public_key, "demo-ca", ca.private_key, valid_from, valid_to, 2);
        context.emplace(name, own, std::vector<crypto::Certificate>{leaf, root},
                        std::vector<crypto::Certificate>{root}, cfg, clock, rng);

        // peers = identity@port, ...: the identities this node seals to.
        // Senders resolve the seal target by endpoint (identity_at), so each
        // entry provisions both the key and the endpoint -> identity map.
        for (const auto& entry : ini.get_list("security", "peers")) {
            const auto at = entry.rfind('@');
            if (at == std::string::npos || at == 0 || at + 1 == entry.size()) {
                throw config::IniError("bad security.peers entry (want identity@port): " +
                                       entry);
            }
            const std::string peer = entry.substr(0, at);
            const auto port =
                static_cast<std::uint16_t>(std::stoul(entry.substr(at + 1)));
            context->add_peer_key(peer, identity_keys(peer).public_key);
            context->map_endpoint({0, port}, peer);
        }
        std::printf("[%s] security: mode=%s, demo CA seed %lld, %zu provisioned peer(s)\n",
                    name.c_str(), config::to_string(cfg.mode).c_str(),
                    static_cast<long long>(seed),
                    ini.get_list("security", "peers").size());
    }

    [[nodiscard]] discovery::SecurityContext* get() {
        return context ? &*context : nullptr;
    }

private:
    static std::uint64_t fnv1a(const std::string& s) {
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (const char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ull;
        return h;
    }
};

void wait_until_stopped(std::int64_t run_for_ms) {
    const auto start = std::chrono::steady_clock::now();
    while (!g_stop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (run_for_ms > 0 &&
            std::chrono::steady_clock::now() - start >
                std::chrono::milliseconds(run_for_ms)) {
            break;
        }
    }
}

int run_broker(const config::Ini& ini, transport::ShardRuntime& transport,
               const Endpoint& endpoint, const std::string& name, const std::string& realm,
               std::int64_t run_for_ms, ObsPlane& obs, SecurityPlane& sec) {
    WallClock wall;
    timesvc::FixedUtcSource utc(wall);
    const config::BrokerConfig cfg = config::BrokerConfig::from_ini(ini);
    broker::Broker node(transport, transport, endpoint, wall, utc, cfg, name);
    discovery::BrokerIdentity identity;
    identity.hostname = "127.0.0.1:" + std::to_string(endpoint.port);
    identity.realm = realm;
    discovery::BrokerDiscoveryPlugin plugin(identity);
    node.add_plugin(&plugin);
    plugin.set_security(sec.get());
    node.set_observability(obs.registry());
    plugin.set_observability(obs.registry(), obs.recorder());
    for (const auto& peer : ini.get_list("node", "peers")) {
        node.connect_to_peer(config::parse_endpoint(peer));
    }
    node.start();
    std::printf("[%s] broker up on 127.0.0.1:%u (%zu BDNs configured, %s routing)\n",
                name.c_str(), endpoint.port, cfg.advertise_bdns.size(),
                config::to_string(cfg.routing_mode).c_str());
    wait_until_stopped(run_for_ms);
    std::printf("[%s] shutting down; stats: %llu events, %llu responses sent\n", name.c_str(),
                static_cast<unsigned long long>(node.stats().events_ingested),
                static_cast<unsigned long long>(plugin.stats().responses_sent));
    obs.print_metrics();
    return 0;
}

int run_bdn(const config::Ini& ini, transport::ShardRuntime& transport,
            const Endpoint& endpoint, const std::string& name, std::int64_t run_for_ms,
            ObsPlane& obs, SecurityPlane& sec) {
    WallClock wall;
    timesvc::FixedUtcSource utc(wall);
    discovery::Bdn bdn(transport, transport, endpoint, wall, config::BdnConfig::from_ini(ini),
                       name);
    bdn.set_security(sec.get());
    bdn.set_observability(obs.registry(), obs.recorder(), &utc);
    bdn.start();
    std::printf("[%s] BDN up on 127.0.0.1:%u\n", name.c_str(), endpoint.port);
    wait_until_stopped(run_for_ms);
    std::printf("[%s] shutting down; %zu brokers registered, %llu requests served\n",
                name.c_str(), bdn.registered_count(),
                static_cast<unsigned long long>(bdn.stats().requests_received));
    obs.print_metrics();
    return 0;
}

int run_client(const config::Ini& ini, transport::ShardRuntime& transport,
               const Endpoint& endpoint, const std::string& name, const std::string& realm,
               const config::ObsConfig& obs_cfg, ObsPlane& obs, SecurityPlane& sec) {
    WallClock wall;
    timesvc::FixedUtcSource utc(wall);
    discovery::DiscoveryClient client(transport, transport, endpoint, wall, utc,
                                      config::DiscoveryConfig::from_ini(ini), name, realm);
    client.set_security(sec.get());
    client.set_observability(obs.registry(), obs.recorder(), obs_cfg.trace_sample_rate);
    if (sec.get() != nullptr && obs.registry() != nullptr) {
        sec.get()->set_observability(obs.registry(), name);
    }
    std::printf("[%s] discovering...\n", name.c_str());
    std::mutex m;
    std::condition_variable cv;
    std::optional<discovery::DiscoveryReport> result;
    client.discover([&](const discovery::DiscoveryReport& report) {
        std::scoped_lock lock(m);
        result = report;
        cv.notify_all();
    });
    {
        std::unique_lock lock(m);
        cv.wait_for(lock, std::chrono::seconds(30), [&] { return result.has_value(); });
    }
    if (!result) {
        std::printf("[%s] discovery timed out\n", name.c_str());
        return 1;
    }
    if (!result->success) {
        std::printf("[%s] discovery failed (%u retransmits, multicast=%d)\n", name.c_str(),
                    result->retransmits, result->used_multicast);
        return 1;
    }
    const auto* chosen = result->selected_candidate();
    std::printf("[%s] %zu candidates in %.2f ms\n", name.c_str(), result->candidates.size(),
                to_ms(result->total_duration));
    for (const auto& candidate : result->candidates) {
        std::printf("    %-28s est %7.3f ms  ping %7.3f ms  score %8.2f\n",
                    candidate.response.broker_name.c_str(), to_ms(candidate.estimated_delay),
                    candidate.ping_rtt < 0 ? -1.0 : to_ms(candidate.ping_rtt),
                    candidate.score);
    }
    std::printf("[%s] selected %s at 127.0.0.1:%u\n", name.c_str(),
                chosen->response.broker_name.c_str(), chosen->response.endpoint.port);
    if (obs.recorder() != nullptr && client.trace_context().sampled()) {
        std::printf("NARADA_TRACE %s\n",
                    obs.recorder()->to_json(client.trace_context().trace_id).c_str());
    }
    obs.print_metrics();
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::printf("usage: %s <config.ini>\n", argv[0]);
        return 2;
    }
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    try {
        const config::Ini ini = config::Ini::parse_file(argv[1]);
        const std::string role = ini.get_or("node", "role", "");
        const auto port = static_cast<std::uint16_t>(ini.get_int("node", "port", 0));
        const std::string name = ini.get_or("node", "name", role + "@" + std::to_string(port));
        const std::string realm = ini.get_or("node", "realm", "loopback");
        const std::int64_t run_for_ms = ini.get_int("node", "run_for_ms", 0);
        if (port == 0) {
            std::printf("config error: [node] port is required\n");
            return 2;
        }
        const config::ObsConfig obs_cfg = config::ObsConfig::from_ini(ini);
        ObsPlane obs(obs_cfg);
        const config::TransportConfig tcfg = config::TransportConfig::from_ini(ini);
        transport::ShardRuntimeOptions topt;
        topt.shards = tcfg.shards;
        topt.pin_cpus = tcfg.pin_cpus;
        topt.handoff_depth = tcfg.handoff_depth;
        topt.transport.udp_batch = tcfg.udp_batch;
        topt.transport.pool_buffers = tcfg.pool_buffers;
        topt.transport.udp_sockbuf = tcfg.udp_sockbuf;
        topt.transport.udp_gso = tcfg.udp_gso;
        transport::ShardRuntime transport(topt);
        // Before any bind: the reactor threads read the instrument
        // pointers unsynchronized once sockets are live.
        transport.set_observability(obs.registry(), name);
        if (transport.shards() > 1) {
            std::printf("[%s] sharded datapath: %zu reactors\n", name.c_str(),
                        transport.shards());
        }
        const Endpoint endpoint{0, port};  // host label 0: cross-process convention
        SecurityPlane sec(ini, name);
        if (role == "broker") {
            return run_broker(ini, transport, endpoint, name, realm, run_for_ms, obs, sec);
        }
        if (role == "bdn") {
            return run_bdn(ini, transport, endpoint, name, run_for_ms, obs, sec);
        }
        if (role == "client") {
            return run_client(ini, transport, endpoint, name, realm, obs_cfg, obs, sec);
        }
        std::printf("config error: [node] role must be broker, bdn or client\n");
        return 2;
    } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
        return 1;
    }
}
