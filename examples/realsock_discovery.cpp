// The same protocol stack over REAL loopback sockets: UDP datagrams, TCP
// broker links and wall-clock timers — now via the thread-per-core
// ShardRuntime. Demonstrates that nothing in the brokers, BDN or client
// depends on the simulator, and that the node population of one process
// spreads across reactor shards: each protocol object is homed on
// port(i % shards) and runs single-threaded on that shard's reactor while
// the group as a whole uses every core.
//
//   $ ./examples/realsock_discovery
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <thread>

#include "broker/broker.hpp"
#include "discovery/bdn.hpp"
#include "discovery/broker_plugin.hpp"
#include "discovery/client.hpp"
#include "transport/shard_runtime.hpp"

using namespace narada;

int main() {
    // Two reactor shards: enough to exercise SO_REUSEPORT spreading and the
    // cross-shard handoff rings without oversubscribing small machines.
    transport::ShardRuntimeOptions topt;
    topt.shards = 2;
    transport::ShardRuntime rt(topt);
    WallClock wall;
    timesvc::FixedUtcSource utc(wall);
    // Round-robin home shards: a protocol object bound through port(i) has
    // every callback and timer serialized on shard i's thread.
    std::size_t next_home = 0;
    auto home_port = [&]() -> transport::ShardPort& {
        transport::ShardPort& p = rt.port(next_home);
        next_home = (next_home + 1) % rt.shards();
        return p;
    };

    std::uint16_t port = transport::PosixTransport::find_free_port(46000);
    auto next_port = [&port] {
        const Endpoint ep{1, port};
        port = transport::PosixTransport::find_free_port(static_cast<std::uint16_t>(port + 1));
        return ep;
    };

    // One BDN, homed on its own shard.
    config::BdnConfig bdn_cfg;
    bdn_cfg.ping_refresh_interval = from_ms(250);
    transport::ShardPort& bdn_home = home_port();
    discovery::Bdn bdn(bdn_home, bdn_home, next_port(), wall, bdn_cfg,
                       "gridservicelocator.org");

    // Four brokers in a star around broker 0, each advertising to the BDN.
    config::BrokerConfig broker_cfg;
    broker_cfg.advertise_bdns = {bdn.endpoint()};
    broker_cfg.processing_delay = from_ms(1);
    std::vector<std::unique_ptr<broker::Broker>> brokers;
    std::vector<std::unique_ptr<discovery::BrokerDiscoveryPlugin>> plugins;
    for (int i = 0; i < 4; ++i) {
        transport::ShardPort& home = home_port();
        auto node = std::make_unique<broker::Broker>(home, home, next_port(), wall,
                                                     utc, broker_cfg,
                                                     "loop-broker-" + std::to_string(i));
        discovery::BrokerIdentity identity;
        identity.hostname = "127.0.0.1";
        identity.realm = "loopback";
        auto plugin = std::make_unique<discovery::BrokerDiscoveryPlugin>(identity);
        node->add_plugin(plugin.get());
        plugins.push_back(std::move(plugin));
        brokers.push_back(std::move(node));
    }
    for (int i = 1; i < 4; ++i) brokers[i]->connect_to_peer(brokers[0]->endpoint());
    for (auto& b : brokers) b->start();
    bdn.start();

    // Wait for real UDP advertisements to land.
    for (int i = 0; i < 100 && bdn.registered_count() < 4; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::printf("BDN registered %zu brokers over real UDP\n", bdn.registered_count());

    // Discovery client with tight real-time windows.
    config::DiscoveryConfig client_cfg;
    client_cfg.bdns = {bdn.endpoint()};
    client_cfg.response_window = from_ms(400);
    client_cfg.ping_window = from_ms(200);
    client_cfg.max_responses = 4;
    transport::ShardPort& client_home = home_port();
    discovery::DiscoveryClient client(client_home, client_home, next_port(), wall, utc,
                                      client_cfg, "realsock-client", "loopback");

    std::mutex m;
    std::condition_variable cv;
    std::optional<discovery::DiscoveryReport> result;
    client.discover([&](const discovery::DiscoveryReport& report) {
        std::scoped_lock lock(m);
        result = report;
        cv.notify_all();
    });
    {
        std::unique_lock lock(m);
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return result.has_value(); });
    }
    if (!result || !result->success) {
        std::printf("discovery over real sockets failed\n");
        return 1;
    }
    const auto* chosen = result->selected_candidate();
    std::printf("discovered %zu brokers in %.2f ms (wall clock)\n", result->candidates.size(),
                to_ms(result->total_duration));
    std::printf("selected %s, measured loopback ping rtt %.3f ms\n",
                chosen->response.broker_name.c_str(), to_ms(chosen->ping_rtt));
    std::printf("realsock_discovery OK\n");
    return 0;
}
