// WAN discovery walkthrough: reproduce one full discovery conversation on
// the paper's five-site testbed and narrate every phase — request, BDN
// ack, response collection with NTP-based delay estimates, weighted
// shortlisting, UDP ping refinement, and final selection.
//
//   $ ./examples/wan_discovery [unconnected|star|linear]
#include <cstdio>
#include <cstring>

#include "scenario/scenario.hpp"

using namespace narada;

int main(int argc, char** argv) {
    scenario::ScenarioOptions options;
    options.topology = scenario::Topology::kStar;
    if (argc > 1) {
        if (std::strcmp(argv[1], "unconnected") == 0) {
            options.topology = scenario::Topology::kUnconnected;
            options.bdn.injection = config::InjectionStrategy::kAll;
        } else if (std::strcmp(argv[1], "linear") == 0) {
            options.topology = scenario::Topology::kLinear;
            options.register_with_bdn = 1;
        } else if (std::strcmp(argv[1], "star") != 0) {
            std::printf("usage: %s [unconnected|star|linear]\n", argv[0]);
            return 2;
        }
    }

    scenario::Scenario testbed(options);
    std::printf("topology: %s, client in Bloomington, BDN gridservicelocator.org\n",
                scenario::to_string(options.topology).c_str());

    const auto report = testbed.run_discovery();
    if (!report.success) {
        std::printf("discovery failed\n");
        return 1;
    }

    std::printf("\nrequest %s\n", report.request_id.str().c_str());
    std::printf("  BDN ack after           %8.2f ms\n", to_ms(report.time_to_ack));
    std::printf("  first response after    %8.2f ms\n", to_ms(report.time_to_first_response));
    std::printf("  collection closed after %8.2f ms (%zu responses)\n",
                to_ms(report.collection_duration), report.candidates.size());

    std::printf("\ncandidates (NTP-estimated one-way delay, usage metrics, weight):\n");
    for (const auto& candidate : report.candidates) {
        std::printf("  %-34s est %6.2f ms  conns %2u  cpu %4.2f  score %8.2f\n",
                    candidate.response.broker_name.c_str(), to_ms(candidate.estimated_delay),
                    candidate.response.metrics.connections, candidate.response.metrics.cpu_load,
                    candidate.score);
    }

    std::printf("\ntarget set (size %zu), measured ping RTTs:\n", report.target_set.size());
    for (std::size_t index : report.target_set) {
        const auto& candidate = report.candidates[index];
        if (candidate.ping_rtt >= 0) {
            std::printf("  %-34s rtt %6.2f ms\n", candidate.response.broker_name.c_str(),
                        to_ms(candidate.ping_rtt));
        } else {
            std::printf("  %-34s (pong lost — filtered, §5.2)\n",
                        candidate.response.broker_name.c_str());
        }
    }

    const auto* chosen = report.selected_candidate();
    std::printf("\nselected: %s after %.2f ms total\n", chosen->response.broker_name.c_str(),
                to_ms(report.total_duration));
    const auto breakdown = scenario::phase_breakdown(report);
    std::printf("phase split: ack %.1f%%, wait %.1f%%, shortlist %.1f%%, ping %.1f%%\n",
                breakdown.request_and_ack_pct, breakdown.wait_responses_pct,
                breakdown.shortlist_pct, breakdown.ping_select_pct);
    return 0;
}
