// Large-dataset delivery, NaradaBrokering-style (paper §1): a publisher
// streams a large payload as compressed fragments with reliable delivery
// over the broker overlay; the subscriber disconnects mid-stream, comes
// back, recovers the gap via replays, coalesces the fragments and
// decompresses the original dataset.
//
//   $ ./examples/reliable_streaming
#include <cstdio>

#include "broker/client.hpp"
#include "scenario/scenario.hpp"
#include "services/compression.hpp"
#include "services/fragmentation.hpp"
#include "services/reliable_delivery.hpp"

using namespace narada;

int main() {
    scenario::ScenarioOptions options;
    options.topology = scenario::Topology::kStar;
    scenario::Scenario testbed(options);
    testbed.warm_up();
    auto& kernel = testbed.kernel();
    auto& net = testbed.network();

    // Publisher in Cardiff, subscriber in Bloomington — opposite ends.
    broker::PubSubClient pub_client(kernel, net,
                                    Endpoint{testbed.broker_host(4), 9000});
    broker::PubSubClient sub_client(kernel, net, Endpoint{testbed.client_host(), 9000});
    services::ReliablePublisher publisher(pub_client, "datasets/climate", 256);
    services::ReliableConsumer consumer(sub_client, "datasets/climate");

    // A compressible 1 MiB "dataset".
    Bytes dataset;
    dataset.reserve(1 << 20);
    for (std::size_t i = 0; dataset.size() < (1 << 20); ++i) {
        const std::string row = "station=" + std::to_string(i % 997) +
                                ",temp=21.5,humidity=0.53,pressure=1013;";
        dataset.insert(dataset.end(), row.begin(), row.end());
    }
    const Bytes compressed = services::compress(dataset);
    std::printf("dataset %zu bytes -> compressed %zu bytes (%.1f%%)\n", dataset.size(),
                compressed.size(), 100.0 * compressed.size() / dataset.size());

    Rng rng(2026);
    const auto fragments =
        services::fragment_payload(compressed, /*chunk_size=*/8192, Uuid::random(rng));
    std::printf("fragmented into %zu chunks of <= 8 KiB\n", fragments.size());

    // Receiving side: reliable stream -> coalescer -> decompress.
    services::Coalescer coalescer;
    std::optional<Bytes> recovered;
    publisher.start();
    consumer.start([&](std::uint64_t, const Bytes& payload) {
        wire::ByteReader reader(payload);
        const auto fragment = services::Fragment::decode(reader);
        if (auto complete = coalescer.accept(fragment)) {
            recovered = services::decompress(*complete);
        }
    });
    pub_client.connect(testbed.broker_at(4).endpoint());
    sub_client.connect(testbed.broker_at(0).endpoint());  // the hub
    kernel.run_until(kernel.now() + kSecond);

    // Stream the first half, kill the subscriber, keep streaming, then let
    // it return and recover.
    std::size_t sent = 0;
    auto send_fragment = [&](const services::Fragment& f) {
        wire::ByteWriter writer;
        f.encode(writer);
        publisher.publish(writer.take());
        ++sent;
    };
    for (std::size_t i = 0; i < fragments.size() / 2; ++i) send_fragment(fragments[i]);
    kernel.run_until(kernel.now() + kSecond);

    std::printf("subscriber disconnects after %zu fragments...\n", sent);
    sub_client.disconnect();
    kernel.run_until(kernel.now() + kSecond);
    for (std::size_t i = fragments.size() / 2; i + 1 < fragments.size(); ++i) {
        send_fragment(fragments[i]);
    }
    kernel.run_until(kernel.now() + kSecond);

    std::printf("subscriber returns; final fragment exposes the gap...\n");
    sub_client.connect(testbed.broker_at(0).endpoint());
    kernel.run_until(kernel.now() + kSecond);
    send_fragment(fragments.back());
    kernel.run_until(kernel.now() + 5 * kSecond);

    std::printf("replays: %llu, gaps detected: %llu, fragments delivered: %llu\n",
                static_cast<unsigned long long>(publisher.stats().replayed),
                static_cast<unsigned long long>(consumer.stats().gaps_detected),
                static_cast<unsigned long long>(consumer.stats().delivered));

    if (recovered && *recovered == dataset) {
        std::printf("dataset recovered intact after the outage — reliable_streaming OK\n");
        return 0;
    }
    std::printf("dataset NOT recovered\n");
    return 1;
}
