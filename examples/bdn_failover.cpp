// Fault-tolerance walkthrough (paper §7): a client discovers normally,
// then every BDN dies. The next discovery falls back to (a) multicast —
// which only reaches lab-realm brokers — and (b) the cached target set
// from the previous run, and still ends connected to a live broker.
//
//   $ ./examples/bdn_failover
#include <cstdio>

#include "scenario/scenario.hpp"

using namespace narada;

int main() {
    scenario::ScenarioOptions options;
    options.topology = scenario::Topology::kStar;
    // No broker shares the client's realm: multicast alone would find
    // nothing, forcing the cached-target-set path.
    options.broker_sites = {sim::Site::kIndianapolis, sim::Site::kNcsa, sim::Site::kUmn,
                            sim::Site::kFsu, sim::Site::kCardiff};
    options.discovery.retransmit_interval = from_ms(400);
    options.discovery.response_window = from_ms(1500);
    scenario::Scenario testbed(options);

    std::printf("--- run 1: healthy system ---\n");
    const auto first = testbed.run_discovery();
    if (!first.success) {
        std::printf("unexpected: first discovery failed\n");
        return 1;
    }
    std::printf("selected %s; cached target set of %zu brokers\n",
                first.selected_candidate()->response.broker_name.c_str(),
                testbed.client().cached_target_set().size());

    std::printf("\n--- BDN dies ---\n");
    testbed.network().set_host_down(testbed.bdn().endpoint().host, true);

    std::printf("\n--- run 2: no BDN reachable ---\n");
    const auto second = testbed.run_discovery();
    if (!second.success) {
        std::printf("recovery failed\n");
        return 1;
    }
    std::printf("retransmits: %u\n", second.retransmits);
    std::printf("fell back to multicast: %s\n", second.used_multicast ? "yes" : "yes (tried)");
    std::printf("used cached target set: %s\n", second.used_cached_targets ? "yes" : "no");
    std::printf("selected %s in %.2f ms — the scheme 'could work even if none of the\n",
                second.selected_candidate()->response.broker_name.c_str(),
                to_ms(second.total_duration));
    std::printf("BDNs within the system are functioning' (paper §7)\n");
    return 0;
}
