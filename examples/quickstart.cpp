// Quickstart: bring up a small broker network with a discovery node, let a
// client discover the nearest broker, connect to it, and exchange a
// pub/sub message — all on the deterministic simulated WAN.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "broker/client.hpp"
#include "scenario/scenario.hpp"

using namespace narada;

int main() {
    // 1. A ready-made testbed: five brokers (one per paper site) in a star
    //    overlay, one BDN, one requesting node in Bloomington, NTP running.
    scenario::ScenarioOptions options;
    options.topology = scenario::Topology::kStar;
    scenario::Scenario testbed(options);

    // 2. Discover: request -> BDN -> broker network -> UDP responses ->
    //    weighted shortlist -> UDP pings -> nearest broker.
    const discovery::DiscoveryReport report = testbed.run_discovery();
    if (!report.success) {
        std::printf("discovery failed\n");
        return 1;
    }
    const auto* chosen = report.selected_candidate();
    std::printf("discovered %zu brokers in %.2f ms; selected %s (ping rtt %.2f ms)\n",
                report.candidates.size(), to_ms(report.total_duration),
                chosen->response.broker_name.c_str(), to_ms(chosen->ping_rtt));

    // 3. Use the selected broker: connect a subscriber and a publisher and
    //    route one event across the overlay.
    auto& kernel = testbed.kernel();
    auto& net = testbed.network();
    const HostId client_host = testbed.client_host();
    broker::PubSubClient subscriber(kernel, net, Endpoint{client_host, 9001});
    broker::PubSubClient publisher(kernel, net, Endpoint{client_host, 9002});

    int received = 0;
    subscriber.on_event([&](const broker::Event& event) {
        ++received;
        std::printf("received event on '%s': %zu bytes\n", event.topic.c_str(),
                    event.payload.size());
    });
    subscriber.subscribe("demo/#");
    subscriber.connect(chosen->response.endpoint);
    // The publisher connects to a *different* broker; the overlay routes.
    publisher.connect(testbed.broker_at(0).endpoint());
    kernel.run_until(kernel.now() + kSecond);

    publisher.publish("demo/hello", Bytes{'h', 'i'});
    kernel.run_until(kernel.now() + kSecond);

    std::printf("%s\n", received == 1 ? "quickstart OK" : "quickstart FAILED");
    return received == 1 ? 0 : 1;
}
