// Security walkthrough (paper §5, §9.1): response policies with
// credentials and realms, plus the signed-and-encrypted discovery request
// envelope with X.509-style certificate validation.
//
//   $ ./examples/secure_discovery
#include <cstdio>

#include "crypto/certificate.hpp"
#include "crypto/envelope.hpp"
#include "scenario/scenario.hpp"

using namespace narada;

int main() {
    // --- Part 1: response policies ------------------------------------------
    std::printf("--- part 1: broker response policies (§5) ---\n");
    scenario::ScenarioOptions options;
    options.topology = scenario::Topology::kStar;
    options.broker.required_credential = "grid-community-key";
    options.discovery.response_window = from_ms(1500);
    {
        scenario::Scenario testbed(options);
        const auto denied = testbed.run_discovery();
        std::printf("without credential: %s (%zu responses)\n",
                    denied.success ? "UNEXPECTEDLY SUCCEEDED" : "correctly denied",
                    denied.candidates.size());
    }
    {
        scenario::ScenarioOptions with_cred = options;
        with_cred.discovery.credential = "grid-community-key";
        scenario::Scenario testbed(with_cred);
        const auto granted = testbed.run_discovery();
        std::printf("with credential:    %s (%zu responses)\n",
                    granted.success ? "admitted" : "UNEXPECTEDLY DENIED",
                    granted.candidates.size());
        if (!granted.success) return 1;
    }

    // --- Part 2: PKI for the discovery conversation (§9.1) -------------------
    std::printf("\n--- part 2: certificates and the secured request (§9.1) ---\n");
    Rng rng(0xCAFE);
    std::printf("generating 1024-bit RSA keys (CA, client, broker)...\n");
    const auto ca = crypto::rsa_generate(rng, 1024);
    const auto client_keys = crypto::rsa_generate(rng, 1024);
    const auto broker_keys = crypto::rsa_generate(rng, 1024);

    const auto root = crypto::make_self_signed("narada-root-ca", ca, 0, 1ll << 60, 1);
    const auto client_cert =
        crypto::issue_certificate("client.gf1.ucs.indiana.edu", client_keys.public_key,
                                  "narada-root-ca", ca.private_key, 0, 1ll << 60, 2);
    const auto status = crypto::verify_chain({client_cert, root}, {root}, /*now=*/1000);
    std::printf("client certificate chain: %s\n", crypto::to_string(status));
    if (status != crypto::CertStatus::kOk) return 1;

    // Sign + encrypt a real BrokerDiscoveryRequest, then decrypt + verify.
    discovery::DiscoveryRequest request;
    request.request_id = Uuid::random(rng);
    request.requester_hostname = "client.gf1.ucs.indiana.edu";
    request.reply_to = {2, 7200};
    request.credential = "x509:client.gf1";
    request.realm = "iu-lab";
    wire::ByteWriter writer;
    request.encode(writer);
    const Bytes payload = writer.take();

    const auto envelope = crypto::seal(payload, "client.gf1", client_keys.private_key,
                                       broker_keys.public_key, "broker-7", rng);
    if (!envelope) {
        std::printf("seal failed\n");
        return 1;
    }
    std::printf("sealed request: %zu plaintext bytes -> %zu ciphertext + %zu key bytes\n",
                payload.size(), envelope->ciphertext.size(),
                envelope->encrypted_session.size());

    const auto opened =
        crypto::open(*envelope, broker_keys.private_key, client_keys.public_key);
    if (!opened || !opened->signature_valid) {
        std::printf("open/verify failed\n");
        return 1;
    }
    wire::ByteReader reader(opened->payload);
    const auto recovered = discovery::DiscoveryRequest::decode(reader);
    std::printf("broker recovered request %s from %s (signature valid)\n",
                recovered.request_id.str().c_str(), opened->signer_name.c_str());
    std::printf("secure_discovery OK\n");
    return 0;
}
